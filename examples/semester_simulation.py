"""Run a whole SoftEng 751 semester and print the paper's artefacts.

The course machinery end-to-end: schedule (Figure 2), nexus placement
(Figure 1), doodle-poll allocation, group repositories graded from their
subversion histories, and the Likert evaluation with the paper's
95/95/92 agreement figures.

Run:  python examples/semester_simulation.py
"""

from repro.course import SemesterConfig, TOPICS, run_semester
from repro.course.nexus import quadrant_coverage
from repro.course.schedule import schedule_rows
from repro.util.tables import Table
from repro.vcs import contribution_shares


def main():
    print("== Figure 2: course structure ==")
    fig2 = Table(["week", "use", "notes"])
    fig2.extend(schedule_rows())
    print(fig2.render())

    print("\n== Figure 1: nexus coverage ==")
    for quadrant, activities in quadrant_coverage().items():
        print(f"  {quadrant:18s} {', '.join(activities) or '(deliberately empty)'}")

    print("\n== running the semester (60 students, seed 2013) ==")
    result = run_semester(SemesterConfig(n_students=60, seed=2013))

    alloc = Table(["topic", "groups"], title="doodle-poll allocation (2 per topic)")
    for topic in TOPICS:
        alloc.add_row([topic.title[:45], ", ".join(result.allocation.groups_on_topic(topic.number))])
    print(alloc.render())

    print("\n== instructor's view of one group's repository ==")
    group = result.groups[0]
    repo = result.repos[group.group_id]
    print(f"group {group.group_id} ({[m.name for m in group.members]})")
    print(f"  revisions: {repo.head}, hygiene: {result.hygiene[group.group_id]}")
    for author, share in sorted(contribution_shares(repo).items()):
        print(f"  {author}: {share:.0%} of churn")
    print("  last commits:")
    for rev in repo.log()[:3]:
        print(f"    {rev}")

    grades = result.grade_distribution()
    print("\n== grades ==")
    print(f"  median {grades[len(grades) // 2]:.1f}, range {grades[0]:.1f}..{grades[-1]:.1f}")
    print(f"  masters students continuing with PARC next semester: {len(result.masters_continuing())}")

    print("\n== Section V-A: student evaluation ==")
    for summary in result.survey:
        print(f"  {summary}")
    print("  selected open comments:")
    for comment in [c for c in result.comments if c.verbatim][:3]:
        print(f'    [{comment.theme}] "{comment.text}"')


if __name__ == "__main__":
    main()
