"""Project 10 demo: how many connections should be opened?

Sweeps connection counts over two simulated sites — one dominated by
round-trip latency, one by the shared downlink — and shows that the
answer depends entirely on which resource binds.

Run:  python examples/web_connections.py
"""

from repro.apps import make_website
from repro.apps.webfetch import optimal_connections, sweep_connections
from repro.util.tables import Table


def sweep(site, label):
    counts = [1, 2, 4, 8, 16, 32, 64, 128]
    reports = sweep_connections(site, counts)
    table = Table(
        ["connections", "makespan (s)", "throughput (MB/s)"],
        title=f"{label}: {len(site.pages)} pages, "
        f"{site.total_bytes / 1e6:.1f} MB, downlink {site.bandwidth_bytes_per_s / 1e6:.1f} MB/s",
        precision=2,
    )
    for r in reports:
        table.add_row([r.connections, r.makespan, r.throughput_bytes_per_s / 1e6])
    print(table.render())
    best = optimal_connections(reports)
    base = reports[0].makespan
    best_time = min(r.makespan for r in reports)
    print(f"-> optimum: {best} connections ({base / best_time:.1f}x faster than one)\n")


if __name__ == "__main__":
    sweep(
        make_website(96, seed=1, latency_range=(0.3, 0.9), size_range=(2_000, 30_000)),
        "latency-bound site (far-away server, small pages)",
    )
    sweep(
        make_website(
            96,
            seed=2,
            latency_range=(0.005, 0.02),
            size_range=(300_000, 900_000),
            bandwidth_bytes_per_s=2_500_000,
        ),
        "bandwidth-bound site (nearby server, big pages)",
    )
