"""Generate the interactive race-condition web pages (paper §V-B).

One of the course's reported research outcomes was "pedagogical
contributions in the form of interactive webpages that helped explain
typical race conditions and other parallel programming pitfalls".  This
script regenerates that artefact: a self-contained static site (no
network, vanilla JS) where each pitfall snippet can be stepped through
interleaving by interleaving under three memory models.

Run:  python examples/race_condition_webpages.py
Then open webdemo_site/index.html in any browser.
"""

from pathlib import Path

from repro.memmodel import SNIPPETS, write_demo_site


def main():
    out_dir = Path(__file__).parent / "webdemo_site"
    paths = write_demo_site(out_dir)
    print(f"wrote {len(paths)} pages to {out_dir}/")
    for name, snippet in SNIPPETS.items():
        tag = "BUGGY" if snippet.buggy else "fixed"
        print(f"  {name + '.html':38s} [{tag:5s}] {snippet.lesson}")
    print(f"\nopen {out_dir / 'index.html'} in a browser to explore")


if __name__ == "__main__":
    main()
