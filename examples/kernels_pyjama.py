"""Project 3 + 5 demo: computational kernels and object reductions.

Runs each kernel sequentially and under Pyjama, verifies the answers
agree, shows the virtual-time speedup on a 16-core machine, and finishes
with the object reductions that motivated project 5.

Run:  python examples/kernels_pyjama.py
"""

import numpy as np

from repro.apps.kernels import (
    LJSystem,
    bfs_levels,
    bfs_levels_parallel,
    fft,
    fft_parallel,
    jacobi,
    jacobi_parallel,
    matmul_blocked,
    matmul_parallel,
    md_step,
    md_step_parallel,
)
from repro.apps.kernels.graphs import random_graph
from repro.apps.kernels.linalg import diagonally_dominant_system
from repro.executor import create
from repro.machine import PARC16
from repro.pyjama import Pyjama
from repro.util.rng import derive
from repro.util.tables import Table


def kernels():
    rng = derive(0, "example-kernels")
    table = Table(["kernel", "matches sequential", "S(16) virtual"], title="Pyjama kernels", precision=2)

    def timed(fn):
        omp1 = Pyjama(create("sim", cores=1, machine=PARC16), num_threads=1)
        out1 = fn(omp1)
        omp16 = Pyjama(create("sim", cores=16, machine=PARC16), num_threads=16)
        out16 = fn(omp16)
        return out1, out16, omp1.executor.elapsed() / omp16.executor.elapsed()

    x = rng.random(256)
    o1, o16, s = timed(lambda omp: fft_parallel(x, omp))
    table.add_row(["FFT-256", bool(np.allclose(o16, np.fft.fft(x))), s])

    a, b = rng.random((64, 64)), rng.random((64, 64))
    o1, o16, s = timed(lambda omp: matmul_parallel(a, b, omp, block=8))
    table.add_row(["matmul-64", bool(np.allclose(o16, a @ b)), s])

    e_seq = md_step(LJSystem.random(64, seed=1))
    o1, o16, s = timed(lambda omp: md_step_parallel(LJSystem.random(64, seed=1), omp))
    table.add_row(["MD-64 (energy)", bool(abs(o16 - e_seq) < 1e-9), s])

    adj = random_graph(300, avg_degree=6, seed=2)
    ref = bfs_levels(adj, 0)
    o1, o16, s = timed(lambda omp: bfs_levels_parallel(adj, 0, omp))
    table.add_row(["BFS-300", o16 == ref, s])

    ja, jb = diagonally_dominant_system(96, seed=3)
    x_ref, _ = jacobi(ja, jb)
    o1, o16, s = timed(lambda omp: jacobi_parallel(ja, jb, omp, block=8)[0])
    table.add_row(["Jacobi-96", bool(np.allclose(o16, x_ref)), s])

    print(table.render())


def reductions():
    omp = Pyjama(create("sim", machine=PARC16), num_threads=8)
    words = "the quick brown fox jumps over the lazy dog the end".split()

    print("\nobject reductions (project 5):")
    print("  counter:", omp.parallel_for(words, lambda w: w, reduction="counter"))
    print("  set:    ", sorted(omp.parallel_for(words, lambda w: w[0], reduction="set")))
    print("  list:   ", omp.parallel_for(range(8), lambda i: i * i, reduction="list"))
    print(
        "  merge_sorted:",
        omp.parallel_for([9, 1, 7, 3, 8, 2], lambda v: [v], reduction="merge_sorted"),
    )

    from repro.pyjama import register_reduction

    register_reduction(
        "longest-word", lambda a, b: a if len(a) >= len(b) else b, lambda: "", overwrite=True
    )
    print("  user-registered:", omp.parallel_for(words, lambda w: w, reduction="longest-word"))


if __name__ == "__main__":
    kernels()
    reductions()
