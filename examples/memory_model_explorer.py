"""Project 8 demo: exploring the memory-model snippets.

Walks every teaching snippet: prints the program, enumerates its
outcomes under sequential consistency, TSO and the relaxed model, shows
observed frequencies from random scheduling, and runs the vector-clock
race detector — buggy snippet and fix side by side.

Run:  python examples/memory_model_explorer.py
"""

from repro.memmodel import SNIPPETS, detect_races, explore, random_runs


def show(name):
    snippet = SNIPPETS[name]
    print("=" * 72)
    print(snippet.program)
    print(f"lesson: {snippet.lesson}")
    print(f"buggy: {snippet.buggy}   racy: {snippet.racy}")

    for model in ("sc", "tso", "relaxed"):
        result = explore(snippet.program, model)
        outcomes = sorted(str(o) for o in result.outcomes)
        print(f"  {model:8s} {len(outcomes)} outcomes ({result.states_explored} states):")
        for o in outcomes[:6]:
            print(f"           {o}")
        if len(outcomes) > 6:
            print(f"           ... and {len(outcomes) - 6} more")

    counts, traces = random_runs(snippet.program, "sc", runs=300, seed=1, collect_traces=True)
    total = sum(counts.values())
    print("  observed frequencies under random SC scheduling:")
    for outcome, n in sorted(counts.items(), key=lambda kv: -kv[1])[:4]:
        print(f"           {n / total:6.1%}  {outcome}")

    races = detect_races(traces)
    if races:
        print(f"  RACES: {'; '.join(str(r) for r in races)}")
    else:
        print("  race-free by happens-before")
    print()


if __name__ == "__main__":
    for pair in (
        ("lost_update", "lost_update_locked"),
        ("store_buffering", "store_buffering_volatile"),
        ("message_passing", "message_passing_volatile"),
        ("deadlock_abba", "deadlock_ordered"),
    ):
        for name in pair:
            show(name)
