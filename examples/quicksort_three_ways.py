"""Project 2 demo: parallel quicksort in three styles, with speedup table.

Sorts the same array with the Parallel Task, Pyjama and raw-threads
variants, checks all agree with the sequential reference, then sweeps
the PARC machine catalogue in virtual time to show where each variant's
speedup lands — including the cutoff (granularity) effect.

Run:  python examples/quicksort_three_ways.py
"""

from repro.apps.sorting import VARIANTS, quicksort, random_array
from repro.executor import create
from repro.machine import PARC8, PARC16, PARC64
from repro.util.tables import Table


def correctness_on_real_threads():
    data = random_array(5_000, seed=1)
    expected = sorted(data)
    with create("threads", cores=4) as pool:
        for variant in VARIANTS:
            out = quicksort(pool, data, variant=variant, cutoff=256)
            status = "ok" if out == expected else "WRONG"
            print(f"{variant:12s} on real threads: {status}")


def speedups_on_parc_machines():
    data = random_array(12_000, seed=2)
    machines = [PARC8, PARC16, PARC64]
    table = Table(
        ["variant", "T1 (virtual s)"] + [m.name for m in machines],
        title="quicksort speedup on the PARC lab machines (virtual time)",
        precision=2,
    )
    for variant in ("ptask", "pyjama", "threads"):
        ex1 = create("sim", cores=1, machine=PARC64)
        quicksort(ex1, data, variant=variant, cutoff=128)
        t1 = ex1.elapsed()
        row = [variant, t1]
        for machine in machines:
            ex = create("sim", machine=machine)
            quicksort(ex, data, variant=variant, cutoff=128)
            row.append(t1 / ex.elapsed())
        table.add_row(row)
    print()
    print(table.render())
    print("(sublinear by design: the top-level partition is sequential - Amdahl)")


def cutoff_sweep():
    data = random_array(12_000, seed=3)
    table = Table(
        ["cutoff", "tasks spawned", "time on parc16 (virtual s)"],
        title="the granularity knob",
        precision=4,
    )
    for cutoff in (16, 64, 256, 1024, 4096):
        ex = create("sim", machine=PARC16)
        quicksort(ex, data, variant="ptask", cutoff=cutoff)
        table.add_row([cutoff, ex._task_counter, ex.elapsed()])
    print()
    print(table.render())


if __name__ == "__main__":
    correctness_on_real_threads()
    speedups_on_parc_machines()
    cutoff_sweep()
