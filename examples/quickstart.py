"""Quickstart: Parallel Task and Pyjama in five minutes.

Runs the same little program on the sequential reference executor, on a
real thread pool, and in virtual time on the paper's 64-core PARC
server — demonstrating that the APIs are backend-independent and that
the simulated machine reports meaningful speedups.

Run:  python examples/quickstart.py
"""

from repro.executor import create
from repro.machine import PARC64
from repro.ptask import ParallelTaskRuntime, parallel_map
from repro.pyjama import Pyjama
from repro.util.tables import Table


def count_primes_below(n: int) -> int:
    """A deliberately chunky function so tasks have real work."""
    sieve = bytearray([1]) * n
    count = 0
    for i in range(2, n):
        if sieve[i]:
            count += 1
            for j in range(i * i, n, i):
                sieve[j] = 0
    return count


def with_parallel_task(executor, label):
    rt = ParallelTaskRuntime(executor)

    # 1. spawn/result: invoke a function as an asynchronous task
    future = rt.spawn(count_primes_below, 2_000, cost=1e-3)
    print(f"[{label}] primes below 2000: {future.result()}")

    # 2. dependences: a task that starts only after two others
    a = rt.spawn(count_primes_below, 1_000, cost=1e-3, name="a")
    b = rt.spawn(count_primes_below, 3_000, cost=1e-3, name="b")
    total = rt.spawn(lambda: a.result() + b.result(), depends_on=[a, b], cost=1e-5)
    print(f"[{label}] dependent task total: {total.result()}")

    # 3. multi-task: one logical task over a collection
    multi = rt.spawn_multi(count_primes_below, [500, 1_000, 1_500], cost_fn=lambda n: n * 1e-6)
    print(f"[{label}] multi-task results: {multi.results()}")

    # 4. a pattern: parallel map with a granularity knob
    squares = parallel_map(rt, lambda x: x * x, list(range(10)), grain=3)
    print(f"[{label}] parallel_map: {squares}")


def with_pyjama(executor, label):
    omp = Pyjama(executor, num_threads=4)

    # parallel region with a team of 4
    region = omp.parallel(lambda ctx: f"hello from thread {ctx.tid}/{ctx.num_threads}")
    print(f"[{label}] region returns: {region.returns}")

    # parallel for with an object reduction (project 5's speciality)
    histogram = omp.parallel_for(
        list("parallelprogramming"), lambda ch: ch, reduction="counter", schedule="dynamic"
    )
    print(f"[{label}] letter histogram: {dict(sorted(histogram.items()))}")


def virtual_time_speedup():
    """Record once per core count and report the speedup curve."""
    table = Table(["cores", "virtual time (s)", "speedup"], title="64 unit tasks on simulated PARC64")
    t1 = None
    for cores in (1, 4, 16, 64):
        ex = create("sim", cores=cores, machine=PARC64)
        rt = ParallelTaskRuntime(ex)
        futures = [rt.spawn(lambda: None, cost=1.0) for _ in range(64)]
        rt.barrier_sync(futures)
        t = ex.elapsed()
        t1 = t1 or t
        table.add_row([cores, t, t1 / t])
    print()
    print(table.render())


def main():
    print("== inline (sequential reference) ==")
    inline = create("inline")
    with_parallel_task(inline, "inline")
    with_pyjama(inline, "inline")

    print("\n== real threads (work-stealing pool) ==")
    with create("threads", cores=4) as pool:
        with_parallel_task(pool, "threads")
        with_pyjama(pool, "threads")

    print("\n== virtual time (simulated PARC64) ==")
    sim = create("sim", machine=PARC64)
    with_parallel_task(sim, "sim")
    with_pyjama(sim, "sim")
    print(f"[sim] virtual elapsed so far: {sim.elapsed():.4f}s on {sim.machine}")

    virtual_time_speedup()


if __name__ == "__main__":
    main()
