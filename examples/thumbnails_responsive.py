"""Project 1 demo: responsive thumbnail rendering on real threads.

A real event-dispatch thread owns the widgets; a work-stealing pool
scales the images (compute realised as sleeps so the demo takes visible
wall time on any machine).  Thumbnails stream into the ListView while a
"user" keeps clicking — and every click is serviced promptly, because
the EDT never runs the scaling work.  Compare the naive design at the
end, where the same clicks wait for seconds.

Run:  python examples/thumbnails_responsive.py
"""

import time

from repro.apps import make_image_folder
from repro.apps.images import ThumbnailRenderer
from repro.executor import create
from repro.gui import EventDispatchThread, Window


def responsive_design():
    print("== Parallel Task design: scaling on the pool, updates via the EDT ==")
    images = make_image_folder(12, seed=7, min_side=48, max_side=96)
    with EventDispatchThread("demo-edt") as edt, create(
        "threads", cores=4, compute_mode="sleep", time_scale=3e5
    ) as pool:
        window = Window(edt, "Thumbnails")
        listview = window.list_view("thumbs")
        progress = window.progress_bar(len(images))

        def show(thumb):
            listview.add_item(thumb.name)
            progress.increment()

        renderer = ThumbnailRenderer(pool, target_side=16, on_thumbnail=show, edt=edt)

        click_latencies = []
        start = time.monotonic()
        mt = renderer.runtime.spawn_multi(renderer._scale_one, list(images))
        while not mt.done():
            t0 = time.monotonic()
            edt.invoke_and_wait(lambda: None)  # a user click needing the EDT
            click_latencies.append(time.monotonic() - t0)
            time.sleep(0.02)
        mt.results()
        edt.drain()
        wall = time.monotonic() - start

        print(f"rendered {len(listview.items)} thumbnails in {wall:.2f}s wall time")
        print(f"progress bar complete: {progress.complete}")
        print(f"user clicks serviced: {len(click_latencies)}")
        print(f"worst click latency: {max(click_latencies) * 1000:.1f} ms  <- stays small")


def naive_design():
    print("\n== naive design: scaling ON the EDT (what not to do) ==")
    images = make_image_folder(6, seed=7, min_side=48, max_side=96)
    with EventDispatchThread("naive-edt") as edt:
        window = Window(edt, "Thumbnails")
        listview = window.list_view("thumbs")

        from repro.apps.images import scale_image

        def scale_on_edt(img):
            time.sleep(0.15)  # the scaling work, hogging the UI thread
            listview.add_item(scale_image(img, 16).name)

        for img in images:
            edt.invoke_later(scale_on_edt, img)

        t0 = time.monotonic()
        edt.invoke_and_wait(lambda: None)  # one user click...
        latency = time.monotonic() - t0
        print(f"one click waited {latency * 1000:.0f} ms behind the queued scaling jobs")
        print(f"(max EDT queue latency: {edt.stats.max_queue_latency * 1000:.0f} ms)")


if __name__ == "__main__":
    responsive_design()
    naive_design()
