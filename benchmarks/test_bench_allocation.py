"""Bench: regenerate the §III-D doodle-poll allocation."""

from conftest import run_once, series

from repro.bench import get_experiment


def test_bench_allocation(benchmark, report):
    result = report(run_once(benchmark, get_experiment("tab_alloc")))
    per_topic, fairness = result.tables

    # 10 topics x exactly 2 groups (the paper's setup)
    assert len(per_topic) == 10
    for row in per_topic.to_dicts():
        assert len(row["groups assigned"].split(", ")) == 2

    metrics = series(fairness, "metric", "value")
    assert metrics["groups allocated"] == 20
    assert metrics["groups unallocated"] == 0
    # FIFS worked "extremely well": most groups near the top of their list
    assert metrics["mean achieved preference rank (0 = first choice)"] < 2.0
    assert metrics["fraction getting first choice"] > 0.4
