"""Bench: regenerate Figure 2 (course structure)."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_fig2(benchmark, report):
    result = report(run_once(benchmark, get_experiment("fig2")))
    (table,) = result.tables
    rows = table.to_dicts()

    assert len(rows) == 14  # 12 teaching weeks + 2-week study break
    uses = [r["use"] for r in rows]
    assert uses[:5] == ["IT"] * 5  # weeks 1-5 instructor-led
    assert uses[5] == "A"  # week 6: test 1
    assert uses[6] == uses[7] == "-"  # study break
    assert uses[8:12] == ["ST+P"] * 4  # weeks 7-10: presentations + project
    assert uses[12] == "A+P"  # week 11: test 2
    assert uses[13] == "P"  # week 12: submission
