"""Bench: ablations — loop schedules, scheduler policy, Amdahl overlay."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_schedule_ablation(benchmark, report):
    result = report(run_once(benchmark, get_experiment("abl_sched")))
    (table,) = result.tables
    rows = {r["iteration cost profile"]: r for r in table.to_dicts()}

    # uniform: static is at least as good as anything (no balancing needed)
    uniform = rows["uniform"]
    assert uniform["static"] <= min(uniform["dynamic"], uniform["guided"]) * 1.01
    # skew: dynamic/guided beat plain static
    tri = rows["triangular (cost ~ i)"]
    assert tri["dynamic"] < tri["static"]
    assert tri["guided"] < tri["static"]
    # one giant iteration: everyone is bounded below by the giant itself;
    # dynamic stays within dispatch-overhead noise of static
    giant = rows["one giant iteration"]
    assert giant["dynamic"] <= giant["static"] * 1.10


def test_bench_policy_ablation(benchmark, report):
    result = report(run_once(benchmark, get_experiment("abl_policy")))
    (table,) = result.tables
    rows = {(r["workload"], r["cross-core penalty"]): r for r in table.to_dicts()}

    # free communication: policies within noise of each other everywhere
    for (workload, penalty), row in rows.items():
        if penalty == 0.0:
            a, b = row["earliest policy (s)"], row["affinity policy (s)"]
            assert abs(a - b) <= 0.2 * max(a, b), workload

    # priced communication: affinity wins the chain workload decisively
    chains = rows[("16 dependent chains", 2e-3)]
    assert chains["affinity policy (s)"] < chains["earliest policy (s)"] * 0.8
    # and does no harm on independent tasks
    soup = rows[("64 independent tasks", 2e-3)]
    assert soup["affinity policy (s)"] <= soup["earliest policy (s)"] * 1.05


def test_bench_amdahl_overlay(benchmark, report):
    result = report(run_once(benchmark, get_experiment("abl_amdahl")))
    (table,) = result.tables
    rows = {r["cores"]: r for r in table.to_dicts()}

    for cores, row in rows.items():
        if cores == 1:
            continue
        measured = row["measured speedup"]
        amdahl_col = next(k for k in row if k.startswith("Amdahl"))
        gustafson_col = next(k for k in row if k.startswith("Gustafson"))
        # measured tracks Amdahl (within 40%) and stays below Gustafson
        assert measured <= row[gustafson_col] * 1.05
        assert abs(measured - row[amdahl_col]) <= 0.4 * row[amdahl_col]
