"""Bench: project 5 — object reductions in Pyjama."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_proj05(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj5")))
    matrix, contention = result.tables

    rows = {r["reduction"]: r for r in matrix.to_dicts()}
    expected_reductions = {"+", "*", "min", "max", "list", "set", "counter", "dict", "str", "merge_sorted"}
    assert set(rows) == expected_reductions
    # every reduction, scalar and object, matches its sequential fold
    for name, row in rows.items():
        assert row["parallel == sequential fold"] is True, name

    c = {(r["approach"], r["cores"]): r["time (virtual s)"] for r in contention.to_dicts()}
    # the efficiency claim: the reduction scales, the critical section does not
    assert c[("reduction", 8)] < c[("reduction", 1)] / 4
    assert c[("critical section", 8)] > c[("critical section", 1)] * 0.9
    assert c[("reduction", 8)] < c[("critical section", 8)] / 4
