"""Bench: regenerate the §V-A Likert agreement figures (95/95/92)."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_likert(benchmark, report):
    result = report(run_once(benchmark, get_experiment("tab_likert")))
    table, themes = result.tables
    rows = table.to_dicts()

    assert len(rows) == 3
    for row in rows:
        # the measured (regenerated-from-responses) percentage equals the
        # figure the paper reports for that question
        assert row["agree+strongly agree %"] == row["paper reports %"]
        assert row["n"] == 60
        assert row["mean score /5"] > 4.0
    assert [r["paper reports %"] for r in rows] == [95, 95, 92]

    theme_rows = {r["theme"]: r for r in themes.to_dicts()}
    # every quoted theme appears and carries its verbatim quote
    for theme in ("presentations", "discussions", "project", "more-research-time"):
        assert theme in theme_rows
        assert theme_rows[theme]["includes paper quote"] is True
