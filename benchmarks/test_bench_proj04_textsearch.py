"""Bench: project 4 — parallel folder search with streaming results."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_proj04(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj4")))
    perf, resp = result.tables
    rows = {r["cores"]: r for r in perf.to_dicts()}

    # same matches at every core count, all streamed as interim results
    match_counts = {r["matches found"] for r in rows.values()}
    assert len(match_counts) == 1
    n_matches = match_counts.pop()
    assert n_matches > 0
    assert all(r["streamed interim results"] == n_matches for r in rows.values())

    # near-linear early speedup, flattening at high core counts
    assert rows[8]["speedup"] > 4.0
    assert rows[64]["speedup"] >= rows[8]["speedup"] * 0.9

    latency = {r["design"]: r for r in resp.to_dicts()}
    assert latency["pool"]["event latency mean (s)"] < latency["edt"]["event latency mean (s)"]
