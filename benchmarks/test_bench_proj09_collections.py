"""Bench: project 9 — collections x synchronisation x read/write mix."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_proj09(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj9")))
    (table,) = result.tables
    rows = {r["collection/sync model"]: r for r in table.to_dicts()}

    # write-heavy: striping beats the global lock; more stripes, more win
    assert rows["striped-16"]["0% reads"] < rows["synchronized"]["0% reads"]
    assert rows["striped-16"]["0% reads"] <= rows["striped-4"]["0% reads"] * 1.01
    # read-mostly: lock-free-read designs beat the global lock
    assert rows["cow"]["100% reads"] < rows["synchronized"]["100% reads"]
    assert rows["rwlock"]["100% reads"] < rows["synchronized"]["100% reads"]
    # the CoW trade-off: worst at write-heavy among the concurrent designs
    assert rows["cow"]["0% reads"] > rows["striped-16"]["0% reads"]
    # among the non-copying designs, the global lock is worst at every mix
    # (CoW is legitimately even worse than it at write-heavy - the copies)
    non_copy = ("striped-4", "striped-16", "rwlock", "atomic")
    for mix in ("100% reads", "90% reads", "50% reads", "0% reads"):
        for name in non_copy:
            assert rows["synchronized"][mix] >= rows[name][mix] * 0.99, (mix, name)
