"""Bench: project 6 — task-safe classes vs thread-safe classes."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_proj06(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj6")))
    (table,) = result.tables
    rows = {r["scenario"]: r for r in table.to_dicts()}

    lock_row = rows["nested task vs parent's lock"]
    # the trap: an RLock silently admits the nested task
    assert "ADMITTED" in lock_row["thread-keyed class"]
    # the fix: the task-safe lock detects the certain deadlock and raises
    assert "DETECTED" in lock_row["task-safe class"]

    leak_row = rows["second task on the same worker sees"]
    assert "dirty" in leak_row["thread-keyed class"]  # thread-local leaked
    assert "fresh" in leak_row["task-safe class"]  # task-local isolated
