"""Bench: regenerate the §III-C assessment-scheme table."""

from conftest import run_once, series

from repro.bench import get_experiment


def test_bench_assessment(benchmark, report):
    result = report(run_once(benchmark, get_experiment("tab_assess")))
    weights_table, properties = result.tables
    weights = series(weights_table, "component", "weight %")

    # the paper's exact weights
    assert weights["test1"] == 25.0
    assert weights["seminar"] == 20.0
    assert weights["test2"] == 10.0
    assert weights["implementation"] == 25.0
    assert weights["report"] == 20.0
    assert weights["TOTAL"] == 100.0

    props = series(properties, "property", "value %")
    # "only 25% of the grade targeted individual understanding of the
    # lecture-style material"
    assert props["individual lecture-material weight"] == 25.0
    assert props["group-work weight"] == 65.0
