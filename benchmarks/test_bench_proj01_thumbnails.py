"""Bench: project 1 — thumbnail strategies, scaling and responsiveness."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_proj01(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj1")))
    perf, speedups, resp, sizes, devices = result.tables

    times = {r["strategy"]: r for r in perf.to_dicts()}
    # every parallel strategy beats sequential on 4+ cores
    for strategy in ("ptask", "farm", "pyjama"):
        assert times[strategy]["4 cores"] < times["sequential"]["4 cores"]
        # and scales further with more cores
        assert times[strategy]["16 cores"] <= times[strategy]["4 cores"]
    # sequential does not scale
    assert times["sequential"]["64 cores"] >= times["sequential"]["1 cores"] * 0.99

    s = {r["strategy"]: r for r in speedups.to_dicts()}
    assert s["ptask"]["S(8)"] > 3.0  # real speedup at 8 cores

    latency = {r["design"]: r for r in resp.to_dicts()}
    # the responsiveness claim: the pool design keeps the UI live
    assert latency["pool"]["event latency mean (s)"] < latency["edt"]["event latency mean (s)"] / 10

    size_rows = sizes.to_dicts()
    # light dispatch: every size class parallelises well
    for r in size_rows:
        assert r["S(8), 1 us dispatch"] > 4.0, r["image size class"]
    # heavy dispatch: small images lose most of their speedup, large
    # images amortise it — the input-size finding of the project
    heavy = {r["image size class"]: r["S(8), 500 us dispatch"] for r in size_rows}
    assert heavy["small (16-32 px)"] < 2.0
    assert heavy["large (128-256 px)"] > heavy["small (16-32 px)"] * 2

    dev = {r["device"]: r for r in devices.to_dicts()}
    # the Android option: parallelism still pays on every quad-core device,
    # but the phones'/tablets' heavier task dispatch erodes the speedup
    assert dev["lab-quad"]["speedup"] > 2.0
    for name in ("android-tablet", "android-phone"):
        assert 1.2 < dev[name]["speedup"] < dev["lab-quad"]["speedup"]
    # a tablet is slower than the lab machine in absolute terms
    assert dev["android-tablet"]["ptask (virtual s)"] > dev["lab-quad"]["ptask (virtual s)"]
