"""Bench: project 8 — memory-model snippets across models + race detection."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_proj08(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj8")))
    outcomes, races = result.tables
    o = {r["snippet"]: r for r in outcomes.to_dicts()}
    r = {row["snippet"]: row for row in races.to_dicts()}

    # lost update: bad outcome even under SC; the lock removes it
    assert o["lost_update"]["bad outcome under sc"] is True
    assert o["lost_update_locked"]["bad outcome under sc"] is False

    # store buffering: impossible under SC, appears under TSO; fence/volatile fix it
    assert o["store_buffering"]["bad outcome under sc"] is False
    assert o["store_buffering"]["under tso"] is True
    assert o["store_buffering_fenced"]["under tso"] is False
    assert o["store_buffering_volatile"]["under relaxed"] is False

    # message passing: safe under TSO (FIFO buffers), breaks under relaxed
    assert o["message_passing"]["under tso"] is False
    assert o["message_passing"]["under relaxed"] is True
    assert o["message_passing_volatile"]["under relaxed"] is False

    # publication
    assert o["dirty_publication"]["under relaxed"] is True
    assert o["dirty_publication_volatile"]["under relaxed"] is False

    # deadlocks
    assert o["deadlock_abba"]["deadlock?"] is True
    assert o["deadlock_ordered"]["deadlock?"] is False

    # detector agrees with the racy column for every snippet
    for name, row in o.items():
        detected = r[name]["races detected (vector clocks)"] > 0
        assert detected == row["racy?"], name
