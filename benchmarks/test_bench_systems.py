"""Bench: regenerate the §III-B parallel-systems table."""

from conftest import run_once, series

from repro.bench import get_experiment


def test_bench_systems(benchmark, report):
    result = report(run_once(benchmark, get_experiment("tab_systems")))
    (table,) = result.tables
    cores = series(table, "machine", "cores")

    # the paper's systems, verbatim core counts
    assert cores["parc64"] == 64
    assert cores["parc16"] == 16
    assert cores["parc8"] == 8
    assert cores["lab-quad"] == 4
    assert cores["android-tablet"] == 4
    descriptions = series(table, "machine", "description")
    assert "Opteron 6272" in descriptions["parc64"]
    assert "E7340" in descriptions["parc16"]
    assert "E5320" in descriptions["parc8"]
