"""Bench: project 2 — quicksort three ways, core sweep + cutoff sweep."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_proj02(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj2")))
    perf, cutoffs = result.tables

    times = {r["variant"]: r for r in perf.to_dicts()}
    # all three parallel variants beat sequential at 8 cores
    for variant in ("ptask", "pyjama", "threads"):
        assert times[variant]["8 cores"] < times["sequential"]["8 cores"]
    # speedup grows with cores but is sublinear (Amdahl on the partition prefix)
    ptask = times["ptask"]
    assert ptask["4 cores"] < ptask["1 cores"]
    assert ptask["16 cores"] < ptask["4 cores"]
    s64 = ptask["1 cores"] / ptask["64 cores"]
    assert 2.0 < s64 < 64.0

    cut = {r["cutoff"]: r for r in cutoffs.to_dicts()}
    # granularity: smaller cutoff spawns more tasks...
    assert cut[8]["tasks spawned"] > cut[2048]["tasks spawned"]
    # ...and a mid cutoff beats the extremes on time
    best = min(r["time on 8 cores (virtual s)"] for r in cutoffs.to_dicts())
    assert cut[128]["time on 8 cores (virtual s)"] <= best * 1.5
