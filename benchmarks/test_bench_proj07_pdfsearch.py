"""Bench: project 7 — PDF search granularity sweep."""

from conftest import run_once, series

from repro.bench import get_experiment


def test_bench_proj07(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj7")))
    perf, agreement = result.tables
    rows = {r["granularity"]: r for r in perf.to_dicts()}

    # all granularities find the same hits
    hits = series(agreement, "granularity", "page hits found")
    assert len(set(hits.values())) == 1

    # the skew finding: per_page keeps scaling where per_file caps out
    assert rows["per_page"]["32 cores"] < rows["per_file"]["32 cores"]
    assert rows["per_chunk"]["32 cores"] <= rows["per_file"]["32 cores"]
    # per_file stops improving once cores exceed document count
    per_file_16 = rows["per_file"]["16 cores"]
    per_file_32 = rows["per_file"]["32 cores"]
    assert per_file_32 >= per_file_16 * 0.95
    # per_page speedup from 1 to 32 cores is substantial
    assert rows["per_page"]["1 cores"] / rows["per_page"]["32 cores"] > 8.0
