"""Bench: regenerate Figure 1 (research-teaching nexus coverage)."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_fig1(benchmark, report):
    result = report(run_once(benchmark, get_experiment("fig1")))
    quadrants, activities = result.tables

    rows = {r["quadrant"]: r["SoftEng751 activities"] for r in quadrants.to_dicts()}
    # the course occupies exactly three quadrants; research-oriented empty by design
    assert "(none" in rows["research-oriented"]
    assert "lectures" in rows["research-led"]
    assert "project" in rows["research-based"]
    assert "seminar" in rows["research-tutored"] or "discussion" in rows["research-tutored"]

    quads = {r["quadrant"] for r in activities.to_dicts()}
    assert quads == {"research-led", "research-based", "research-tutored"}
