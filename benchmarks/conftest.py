"""Shared bench fixtures: run-once experiment results + report files.

Every bench target regenerates one paper artefact (DESIGN.md §4): it
runs the registered experiment, writes the rendered tables under
``benchmarks/reports/<exp_id>.txt``, prints them (visible with ``-s`` or
in failure output) and asserts the paper's *shape* claims.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.bench  # noqa: F401 - registers all experiments

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture
def report():
    """Persist and print an ExperimentResult; returns it for chaining."""

    def _report(result):
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / f"{result.exp_id}.txt").write_text(result.render() + "\n")
        print("\n" + result.render())
        return result

    return _report


def run_once(benchmark, experiment):
    """Benchmark an experiment exactly once (they are deterministic, and
    some simulate whole semesters — timing loops add nothing)."""
    return benchmark.pedantic(experiment, rounds=1, iterations=1)


def series(table, key_col, value_col):
    """Extract {key: value} from a Table for shape assertions."""
    return {row[key_col]: row[value_col] for row in table.to_dicts()}
