"""Bench: project 3 — the Pyjama kernels (FFT, matmul, MD, BFS, Jacobi)."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_proj03(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj3")))
    (table,) = result.tables
    rows = {r["kernel"]: r for r in table.to_dicts()}

    assert set(rows) == {"fft-512", "matmul-96", "md-128", "bfs-600", "jacobi-192"}
    for name, row in rows.items():
        # every kernel speeds up monotonically-ish and genuinely by 16 cores
        assert row["16 cores"] < row["1 cores"], name
        assert row["S(16)"] > 2.0, name
    # the wide independent loops scale best
    assert rows["matmul-96"]["S(16)"] > rows["bfs-600"]["S(16)"]
    assert rows["md-128"]["S(16)"] > rows["bfs-600"]["S(16)"]
