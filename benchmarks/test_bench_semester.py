"""Bench: regenerate the §V-B semester outcomes end-to-end."""

from conftest import run_once, series

from repro.bench import get_experiment


def test_bench_semester(benchmark, report):
    result = report(run_once(benchmark, get_experiment("sem")))
    outcomes, contribution = result.tables
    o = series(outcomes, "outcome", "value")

    assert o["students"] == 60
    assert o["groups"] == 20
    assert o["groups allocated"] == 20
    assert o["repositories passing PARC hygiene"] == 20
    assert o["total commits across groups"] > 100
    assert o["masters students continuing with PARC"] > 0
    assert o["survey agreement %"] == "95/95/92"

    for row in contribution.to_dicts():
        assert row["commits"] >= 1
        assert 0.0 <= row["smallest member share"] <= row["largest member share"] <= 1.0
