"""Bench: project 10 — concurrent connections sweep on two site profiles."""

from conftest import run_once

from repro.bench import get_experiment


def test_bench_proj10(benchmark, report):
    result = report(run_once(benchmark, get_experiment("proj10")))
    latency_table, bandwidth_table, optimum = result.tables

    lat = {r["connections"]: r["makespan (s)"] for r in latency_table.to_dicts()}
    bw = {r["connections"]: r["makespan (s)"] for r in bandwidth_table.to_dicts()}

    # latency-bound: concurrency keeps paying
    assert lat[8] < lat[1] / 4
    assert lat[32] <= lat[8]
    # bandwidth-bound: a plateau almost immediately
    assert bw[32] > bw[1] * 0.8

    opt = {r["site profile"]: r for r in optimum.to_dicts()}
    assert opt["latency-bound"]["optimal connections"] >= 16
    assert opt["latency-bound"]["speedup vs 1 connection"] > 5.0
    assert opt["bandwidth-bound"]["speedup vs 1 connection"] < 2.0
