"""Lifecycle tests against the real thread pool: cancellation, deadlines,
shutdown drain semantics, and the timeout-budget regressions."""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import ExecutorShutdown, WorkStealingPool
from repro.executor.future import CancelledError, Future
from repro.ptask import ParallelTaskRuntime, TaskGroup
from repro.resilience import CancelToken, DeadlineExceeded
from repro.resilience.cancel import current_token


def make_pool(workers: int = 2) -> WorkStealingPool:
    return WorkStealingPool(workers=workers, compute_mode="sleep", time_scale=1.0)


class TestShutdownDrain:
    def test_drain_false_fails_stranded_futures(self):
        """Regression: queued tasks used to be dropped on shutdown with
        their futures left pending forever."""
        pool = make_pool(workers=1)
        release = threading.Event()
        started = threading.Event()

        def block():
            started.set()
            release.wait(5.0)

        blocker = pool.submit(block, name="blocker")
        stranded = [pool.submit(lambda: "never", name=f"q{i}") for i in range(4)]
        assert started.wait(5.0)
        release.set()  # let the running task finish; queued ones are stranded
        pool.shutdown(drain=False)
        assert blocker.done()
        for fut in stranded:
            assert fut.done(), "non-draining shutdown left a future pending"
            exc = fut.exception()
            if exc is not None:
                assert isinstance(exc, ExecutorShutdown)
                assert "stranded" in str(exc)

    def test_drain_true_finishes_queued_work(self):
        pool = make_pool(workers=1)
        futs = [pool.submit(lambda i=i: i * i, name=f"sq{i}") for i in range(6)]
        pool.shutdown(drain=True)
        assert [f.result(timeout=0) for f in futs] == [0, 1, 4, 9, 16, 25]

    def test_submit_after_shutdown_raises(self):
        pool = make_pool()
        pool.shutdown()
        with pytest.raises(ExecutorShutdown):
            pool.submit(lambda: 1)


class TestTimeoutBudget:
    def test_result_timeout_is_spent_once(self):
        """Regression: ``result(timeout=t)`` used to wait up to ``t`` in
        the help loop and then up to ``t`` again in the base wait —
        doubling the caller's deadline."""
        pool = make_pool(workers=1)
        try:
            never = Future("external")  # not pool-managed: helping can't finish it
            gated = pool.submit(lambda: 1, after=[never], name="gated")
            start = time.monotonic()
            with pytest.raises(TimeoutError):
                gated.result(timeout=0.3)
            elapsed = time.monotonic() - start
            assert elapsed < 0.9, f"timeout double-spent: waited {elapsed:.2f}s"
        finally:
            never.set_result(None)
            pool.shutdown()


class TestCancellation:
    def test_cancelled_before_start_never_runs(self):
        pool = make_pool(workers=1)
        try:
            release = threading.Event()
            ran = []
            pool.submit(release.wait, 5.0, name="blocker")
            fut = pool.submit(lambda: ran.append(1), name="victim")
            assert fut.cancel("changed my mind")
            release.set()
            with pytest.raises(CancelledError):
                fut.result(timeout=5.0)
        finally:
            pool.shutdown()
        assert ran == [], "cancelled task body was executed"

    def test_token_cancels_queued_tasks(self):
        pool = make_pool(workers=1)
        try:
            release = threading.Event()
            token = CancelToken("batch")
            pool.submit(release.wait, 5.0, name="blocker")
            futs = [pool.submit(lambda: 1, cancel=token, name=f"t{i}") for i in range(3)]
            token.cancel("user aborted")
            release.set()
            for fut in futs:
                with pytest.raises(CancelledError, match="batch"):
                    fut.result(timeout=5.0)
        finally:
            pool.shutdown()

    def test_running_task_sees_its_token(self):
        pool = make_pool(workers=1)
        try:
            token = CancelToken("coop")
            observed = []
            fut = pool.submit(lambda: observed.append(current_token()), cancel=token)
            fut.result(timeout=5.0)
            assert observed == [token]
        finally:
            pool.shutdown()

    def test_cancel_cascades_to_dependants(self):
        pool = make_pool()
        try:
            gate = Future("gate")
            root = pool.submit(lambda: 1, after=[gate], name="root")
            child = pool.submit(lambda: 2, after=[root], name="child")
            grandchild = pool.submit(lambda: 3, after=[child], name="grandchild")
            sibling = pool.submit(lambda: 4, after=[gate], name="sibling")
            root.cancel("pruned")
            gate.set_result(None)
            for fut in (child, grandchild):
                with pytest.raises(CancelledError, match="cancelled"):
                    fut.result(timeout=5.0)
                assert fut.cancelled()
            assert sibling.result(timeout=5.0) == 4  # untouched branch runs
        finally:
            pool.shutdown()

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_cancel_closure_property(self, data):
        """Cancelling one DAG node cancels exactly its downstream closure;
        every other node still runs."""
        n = data.draw(st.integers(min_value=3, max_value=8), label="n")
        edges = {
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if data.draw(st.booleans(), label=f"edge{i}->{j}")
        }
        victim = data.draw(st.integers(min_value=0, max_value=n - 1), label="victim")

        closure = {victim}
        for i in range(n):  # edges only go forward, one pass suffices
            if any((p, i) in edges for p in closure):
                closure.add(i)

        pool = make_pool()
        try:
            gate = Future("gate")
            futs: list[Future] = []
            for i in range(n):
                deps = [futs[p] for p in range(i) if (p, i) in edges]
                futs.append(pool.submit(lambda i=i: i, after=[gate, *deps], name=f"n{i}"))
            assert futs[victim].cancel("victim")
            gate.set_result(None)
            for i, fut in enumerate(futs):
                if i in closure:
                    with pytest.raises(CancelledError):
                        fut.result(timeout=5.0)
                    assert fut.cancelled()
                else:
                    assert fut.result(timeout=5.0) == i
        finally:
            pool.shutdown()


class TestDeadlines:
    def test_reaper_cancels_overdue_queued_task(self):
        pool = make_pool(workers=1)
        try:
            release = threading.Event()
            pool.submit(release.wait, 5.0, name="blocker")
            late = pool.submit(lambda: "too late", deadline=0.05, name="late")
            with pytest.raises(DeadlineExceeded, match="deadline"):
                late.result(timeout=5.0)
            release.set()
        finally:
            pool.shutdown()

    def test_generous_deadline_lets_task_run(self):
        pool = make_pool()
        try:
            assert pool.submit(lambda: "ok", deadline=30.0).result(timeout=5.0) == "ok"
        finally:
            pool.shutdown()

    def test_negative_deadline_rejected(self):
        pool = make_pool()
        try:
            with pytest.raises(ValueError):
                pool.submit(lambda: 1, deadline=-1.0)
        finally:
            pool.shutdown()


class TestTaskGroup:
    def test_join_timeout_is_one_budget(self):
        """Regression-adjacent: joining N unfinished futures with a timeout
        must spend one shared budget, not timeout-per-future."""
        group = TaskGroup("g")
        for i in range(3):
            group.add(Future(f"never{i}"))
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            group.join(timeout=0.3)
        assert time.monotonic() - start < 0.9

    def test_cancel_all_counts(self):
        group = TaskGroup("g")
        done = Future("done")
        done.set_result(1)
        group.add(done)
        pending = [group.add(Future(f"p{i}")) for i in range(3)]
        assert group.cancel_all("abort") == 3
        for fut in pending:
            assert fut.cancelled()
        assert done.result() == 1

    def test_join_cancel_on_timeout(self):
        group = TaskGroup("g")
        hung = group.add(Future("hung"))
        with pytest.raises(TimeoutError):
            group.join(timeout=0.05, cancel_on_timeout=True)
        assert hung.cancelled()

    def test_runtime_spawn_into_group(self):
        pool = make_pool()
        try:
            runtime = ParallelTaskRuntime(pool)
            group = TaskGroup("work")
            for i in range(4):
                group.add(runtime.spawn(lambda i=i: i + 10, name=f"w{i}"))
            assert sorted(group.join(timeout=5.0)) == [10, 11, 12, 13]
        finally:
            pool.shutdown()
