"""Tests for CancelToken trees and the ambient-token plumbing."""

import pytest

from repro.resilience import CancelledError, CancelToken, DeadlineExceeded
from repro.resilience.cancel import current_token, scoped_token


class TestCancelToken:
    def test_starts_live(self):
        token = CancelToken("t")
        assert not token.cancelled
        assert token.reason == ""
        token.raise_if_cancelled()  # no-op while live

    def test_cancel_flips_once(self):
        token = CancelToken()
        assert token.cancel("user quit")
        assert not token.cancel("again")
        assert token.cancelled
        assert token.reason == "user quit"

    def test_raise_if_cancelled(self):
        token = CancelToken("query")
        token.cancel("window closed")
        with pytest.raises(CancelledError, match="window closed"):
            token.raise_if_cancelled()

    def test_callbacks_run_once_on_cancel(self):
        token = CancelToken()
        seen = []
        token.on_cancel(lambda: seen.append("a"))
        token.cancel()
        token.cancel()
        assert seen == ["a"]

    def test_callback_after_cancel_runs_immediately(self):
        token = CancelToken()
        token.cancel()
        seen = []
        token.on_cancel(lambda: seen.append("late"))
        assert seen == ["late"]

    def test_child_cancelled_with_parent(self):
        parent = CancelToken("p")
        child = parent.child("c")
        assert not child.cancelled
        parent.cancel()
        assert child.cancelled
        assert "parent" in child.reason

    def test_child_cancel_leaves_parent_alone(self):
        parent = CancelToken("p")
        child = parent.child()
        child.cancel()
        assert child.cancelled
        assert not parent.cancelled

    def test_child_of_cancelled_parent_is_born_cancelled(self):
        parent = CancelToken()
        parent.cancel()
        assert parent.child().cancelled

    def test_deadline_exceeded_is_a_cancellation(self):
        assert issubclass(DeadlineExceeded, CancelledError)


class TestAmbientToken:
    def test_no_token_by_default(self):
        assert current_token() is None

    def test_scoped_token_installs_and_restores(self):
        token = CancelToken()
        with scoped_token(token):
            assert current_token() is token
        assert current_token() is None

    def test_none_scope_masks_outer_token(self):
        """A task spawned without a token must not inherit its spawner's."""
        outer = CancelToken()
        with scoped_token(outer):
            with scoped_token(None):
                assert current_token() is None
            assert current_token() is outer
