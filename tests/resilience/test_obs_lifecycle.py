"""Lifecycle events (cancel/retry/fault/drain) through analyze and report."""

from repro.obs import TraceEvent, analyze_trace
from repro.obs.report import render_text


def _event(kind, name="t", **attrs):
    return TraceEvent(
        kind=kind, name=name, phase="i", ts=0.0, dur=0.0,
        task_id=0, worker=None, group=0, attrs=attrs,
    )


def _span(task_id, start, end):
    return TraceEvent(
        kind="task", name="t", phase="X", ts=start, dur=end - start,
        task_id=task_id, worker=0, group=0, attrs={},
    )


class TestAnalyzeCounts:
    def test_lifecycle_kinds_are_counted(self):
        analysis = analyze_trace([
            _span(1, 0.0, 1.0),
            _event("cancel"), _event("cancel"),
            _event("retry", attempt=1), _event("retry"), _event("retry"),
            _event("fault"),
            _event("drain"),
        ])
        assert analysis.cancelled == 2
        assert analysis.retries == 3
        assert analysis.faults == 1
        assert analysis.drained == 1

    def test_clean_trace_counts_zero(self):
        analysis = analyze_trace([_span(1, 0.0, 1.0)])
        assert (analysis.cancelled, analysis.retries, analysis.faults, analysis.drained) == (0, 0, 0, 0)


class TestBaselineKeys:
    def test_keys_only_present_when_nonzero(self):
        """Clean baselines must stay byte-identical: zero-valued lifecycle
        metrics are omitted, nonzero ones appear."""
        clean = analyze_trace([_span(1, 0.0, 1.0)]).baseline_metrics()
        assert not any(k.startswith("resilience.") for k in clean)

        active = analyze_trace([_span(1, 0.0, 1.0), _event("retry"), _event("fault")])
        keys = active.baseline_metrics()
        assert keys["resilience.retried"] == 1
        assert keys["resilience.faulted"] == 1
        assert "resilience.cancelled" not in keys


class TestReportLine:
    def test_resilience_line_when_active(self):
        analysis = analyze_trace([
            _span(1, 0.0, 1.0), _event("cancel"), _event("retry"), _event("fault"),
        ])
        text = render_text(analysis)
        assert "resilience:" in text
        assert "cancelled 1" in text
        assert "retries 1" in text
        assert "faults injected 1" in text

    def test_no_resilience_line_on_clean_run(self):
        text = render_text(analyze_trace([_span(1, 0.0, 1.0)]))
        assert "resilience:" not in text
