"""Tests for RetryPolicy: decisions, seeded jitter, execution."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import TraceRecorder
from repro.resilience import RetryPolicy


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_shrinking_multiplier(self):
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)

    def test_rejects_full_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-0.1)


class TestDecisions:
    def test_retry_on_tuple(self):
        policy = RetryPolicy(max_attempts=3, retry_on=(KeyError,))
        assert policy.should_retry(KeyError("k"), 1)
        assert not policy.should_retry(ValueError("v"), 1)

    def test_retry_on_predicate(self):
        policy = RetryPolicy(
            max_attempts=3, retry_on=lambda exc: "transient" in str(exc)
        )
        assert policy.should_retry(RuntimeError("transient glitch"), 1)
        assert not policy.should_retry(RuntimeError("permanent"), 1)

    def test_budget_exhausted(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(ValueError(), 1)
        assert not policy.should_retry(ValueError(), 2)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_max_delay_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=10.0, max_delay=5.0, jitter=0.0
        )
        assert max(policy.delays()) == 5.0

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.25)
        for key in range(50):
            d = policy.delay(1, key)
            assert 0.75 <= d <= 1.25

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        key=st.text(max_size=12),
        attempt=st.integers(min_value=1, max_value=8),
    )
    def test_delay_is_pure_function_of_seed_key_attempt(self, seed, key, attempt):
        """The determinism contract: the realised backoff depends only on
        (seed, key, attempt) — never on call order or prior draws."""
        a = RetryPolicy(max_attempts=9, seed=seed)
        b = RetryPolicy(max_attempts=9, seed=seed)
        a.delay(1, "other-key")  # perturb one policy's call history
        a.delay(attempt, key)
        assert a.delay(attempt, key) == b.delay(attempt, key)

    def test_different_keys_draw_different_jitter(self):
        policy = RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.25)
        assert len({policy.delay(1, k) for k in range(20)}) > 1


class TestRun:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("transient")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        assert policy.run(flaky, sleep=slept.append) == "ok"
        assert len(calls) == 3
        assert slept == pytest.approx([0.1, 0.2])

    def test_raises_after_budget(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(ValueError, match="always"):
            policy.run(lambda: (_ for _ in ()).throw(ValueError("always")), sleep=lambda _d: None)

    def test_nonretryable_propagates_immediately(self):
        calls = []

        def fail():
            calls.append(1)
            raise KeyError("nope")

        policy = RetryPolicy(max_attempts=5, retry_on=(ValueError,))
        with pytest.raises(KeyError):
            policy.run(fail, sleep=lambda _d: None)
        assert len(calls) == 1

    def test_emits_retry_events_and_counter(self):
        recorder = TraceRecorder()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("transient")
            return 42

        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        assert policy.run(flaky, sleep=lambda _d: None, key="page-7", trace=recorder) == 42
        events = [e for e in recorder.events() if e.kind == "retry"]
        assert len(events) == 1
        assert events[0].name == "page-7"
        assert events[0].attrs["exception"] == "ValueError"
        assert recorder.metrics.snapshot()["resilience.retries"] == 1

    def test_on_retry_hook(self):
        seen = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("x")
            return None

        policy = RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0)
        policy.run(flaky, sleep=lambda _d: None, on_retry=lambda a, e, d: seen.append((a, type(e), d)))
        assert seen == [(1, ValueError, 0.5)]
