"""webfetch under fault injection: retries converge, budgets raise,
and the report stays deterministic."""

import pytest

from repro.apps import make_website
from repro.apps.webfetch import FetchError, fetch_all
from repro.obs import TraceRecorder, use
from repro.resilience import FaultPlan, RetryPolicy, use_faults

PLAN = FaultPlan(seed=11, failure_rate=0.2)


class TestFaultyFetch:
    def test_converges_with_retries(self):
        site = make_website(20, seed=1)
        report = fetch_all(site, 4, faults=PLAN)
        assert report.n_pages == 20
        assert report.faults > 0, "plan at 20% never tripped across 20 pages"
        assert report.retries >= report.faults  # every recovered fault was retried
        assert report.total_bytes == site.total_bytes

    def test_report_is_deterministic_under_faults(self):
        site = make_website(16, seed=2)
        a = fetch_all(site, 3, faults=PLAN)
        b = fetch_all(site, 3, faults=PLAN)
        assert (a.makespan, a.retries, a.faults) == (b.makespan, b.retries, b.faults)

    def test_no_retry_budget_raises_cleanly(self):
        site = make_website(20, seed=3)
        with pytest.raises(FetchError, match="injected failure"):
            fetch_all(site, 4, faults=PLAN, retry=RetryPolicy(max_attempts=1))

    def test_retries_cost_makespan(self):
        site = make_website(20, seed=4)
        clean = fetch_all(site, 4)
        faulty = fetch_all(site, 4, faults=PLAN)
        assert faulty.makespan > clean.makespan

    def test_ambient_plan_via_use_faults(self):
        site = make_website(12, seed=5)
        with use_faults(FaultPlan(seed=9, failure_rate=0.3)):
            report = fetch_all(site, 4)
        assert report.faults > 0

    def test_clean_run_reports_zero_lifecycle_activity(self):
        site = make_website(10, seed=6)
        report = fetch_all(site, 4)
        assert report.retries == 0
        assert report.faults == 0

    def test_fault_and_retry_events_traced(self):
        site = make_website(20, seed=7)
        recorder = TraceRecorder()
        with use(recorder):
            fetch_all(site, 4, faults=PLAN)
        kinds = {e.kind for e in recorder.events()}
        assert {"fault", "retry"} <= kinds
        counters = recorder.metrics.snapshot()
        assert counters["webfetch.faults_injected"] > 0
        assert counters["resilience.retries"] > 0


class TestExports:
    def test_all_exports_importable(self):
        """Regression: ``optimal_connections`` was missing from __all__."""
        import repro.apps.webfetch as mod

        assert "optimal_connections" in mod.__all__
        for name in mod.__all__:
            assert hasattr(mod, name), f"__all__ lists missing attribute {name}"
