"""Tests for FaultPlan: validation, seeded determinism, ambient install."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.resilience import FaultPlan, current_faults, resolve_faults, use_faults


class TestValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="failure_rate"):
            FaultPlan(failure_rate=1.5)

    def test_rejects_sub_one_factor(self):
        with pytest.raises(ValueError, match="factors"):
            FaultPlan(latency_spike_factor=0.5)

    def test_inactive_by_default(self):
        assert not FaultPlan().active
        assert FaultPlan(failure_rate=0.1).active


class TestDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        key=st.text(max_size=16),
        attempt=st.integers(min_value=1, max_value=5),
    )
    def test_decisions_are_pure_functions_of_seed_and_key(self, seed, key, attempt):
        a = FaultPlan(seed=seed, failure_rate=0.5, latency_spike_rate=0.5)
        b = FaultPlan(seed=seed, failure_rate=0.5, latency_spike_rate=0.5)
        a.should_fail("warmup", 0)  # call history must not matter
        assert a.should_fail(key, attempt) == b.should_fail(key, attempt)
        assert a.latency_multiplier(key, attempt) == b.latency_multiplier(key, attempt)

    def test_rates_are_honoured_roughly(self):
        plan = FaultPlan(seed=7, failure_rate=0.3)
        trips = sum(plan.should_fail("url", i) for i in range(2000))
        assert 0.2 < trips / 2000 < 0.4

    def test_zero_rate_never_trips(self):
        plan = FaultPlan(seed=1)
        assert not any(plan.should_fail("k", i) for i in range(100))
        assert all(plan.latency_multiplier("k", i) == 1.0 for i in range(100))
        assert all(plan.worker_factor("pool", w) == 1.0 for w in range(100))

    def test_fail_points_are_independent_streams(self):
        """Call-level and task-level fail points must not alias: equal keys
        under different query kinds draw from different streams."""
        plan = FaultPlan(seed=3, failure_rate=0.5, task_failure_rate=0.5)
        calls = [plan.should_fail("k", i) for i in range(64)]
        tasks = [plan.should_fail_task("k", i) for i in range(64)]
        assert calls != tasks


class TestAmbient:
    def test_none_by_default(self):
        assert current_faults() is None
        assert resolve_faults(None) is None

    def test_use_faults_installs_and_restores(self):
        plan = FaultPlan(failure_rate=0.1)
        with use_faults(plan):
            assert current_faults() is plan
            assert resolve_faults(None) is plan
        assert current_faults() is None

    def test_explicit_plan_wins_over_ambient(self):
        ambient = FaultPlan(failure_rate=0.1)
        explicit = FaultPlan(failure_rate=0.9)
        with use_faults(ambient):
            assert resolve_faults(explicit) is explicit
