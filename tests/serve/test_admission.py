"""Token bucket and queue-depth backpressure."""

import pytest

from repro.serve.admission import AdmissionController, AdmissionPolicy, TokenBucket


class TestTokenBucket:
    def test_burst_then_empty(self):
        b = TokenBucket(rate=10.0, burst=3.0)
        assert [b.try_take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        b = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            b.try_take(0.0)
        assert not b.try_take(0.05)  # 0.5 tokens refilled
        assert b.try_take(0.1)  # 1.0 tokens

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=100.0, burst=2.0)
        assert b.peek(1000.0) == 2.0

    def test_time_never_goes_backwards(self):
        b = TokenBucket(rate=10.0, burst=5.0)
        b.try_take(1.0)
        assert b.peek(0.5) == pytest.approx(4.0)  # stale now: no refill, no crash

    def test_deterministic_sequence(self):
        def run():
            b = TokenBucket(rate=7.0, burst=2.0)
            return [b.try_take(i * 0.06) for i in range(50)]

        assert run() == run()


class TestAdmissionController:
    def test_depth_cap_sheds_queue(self):
        c = AdmissionController(AdmissionPolicy(max_queue=2))
        assert c.decide(0.0, 1) is None
        assert c.decide(0.0, 2) == "queue"

    def test_rate_limit_sheds_rate(self):
        c = AdmissionController(AdmissionPolicy(rate=10.0, burst=1.0, max_queue=None))
        assert c.decide(0.0, 0) is None
        assert c.decide(0.0, 0) == "rate"
        assert c.decide(0.2, 0) is None  # refilled

    def test_depth_checked_before_bucket(self):
        c = AdmissionController(AdmissionPolicy(rate=10.0, burst=1.0, max_queue=1))
        assert c.decide(0.0, 1) == "queue"
        # the queue rejection must not have drained the bucket
        assert c.decide(0.0, 0) is None

    def test_permissive_defaults_still_bound_queue(self):
        c = AdmissionController()
        assert c.decide(0.0, 0) is None
        assert c.decide(0.0, 10**6) == "queue"

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(rate=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(burst=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue=0)
