"""Micro-batch policy: close-on-size, close-on-age, per-item isolation."""

from dataclasses import dataclass

import pytest

from repro.serve.batching import BatchPolicy, MicroBatcher, run_batch


@dataclass
class Req:
    task: str


class TestMicroBatcher:
    def test_closes_at_max_size(self):
        b = MicroBatcher(BatchPolicy(max_size=3, max_delay=1.0))
        assert b.add(Req("panel"), 0.0) is None
        assert b.add(Req("panel"), 0.0) is None
        batch = b.add(Req("panel"), 0.0)
        assert batch is not None and batch.size == 3
        assert b.pending() == 0

    def test_kinds_batch_separately(self):
        b = MicroBatcher(BatchPolicy(max_size=2, max_delay=1.0))
        assert b.add(Req("panel"), 0.0) is None
        assert b.add(Req("thumb"), 0.0) is None
        assert b.add(Req("panel"), 0.0).kind == "panel"
        assert b.pending() == 1  # the thumb still waits

    def test_due_after_max_delay(self):
        b = MicroBatcher(BatchPolicy(max_size=10, max_delay=0.5))
        b.add(Req("panel"), 0.0)
        assert b.due(0.4) == []
        due = b.due(0.5)
        assert len(due) == 1 and due[0].opened_at == 0.0

    def test_age_measured_from_oldest_request(self):
        b = MicroBatcher(BatchPolicy(max_size=10, max_delay=0.5))
        b.add(Req("panel"), 0.0)
        b.add(Req("panel"), 0.45)  # joining late must not reset the clock
        assert len(b.due(0.5)) == 1

    def test_next_deadline_tracks_earliest_open_batch(self):
        b = MicroBatcher(BatchPolicy(max_size=10, max_delay=0.5))
        assert b.next_deadline() is None
        b.add(Req("thumb"), 0.2)
        b.add(Req("panel"), 0.1)
        assert b.next_deadline() == pytest.approx(0.6)

    def test_flush_closes_everything(self):
        b = MicroBatcher(BatchPolicy(max_size=10, max_delay=0.5))
        b.add(Req("panel"), 0.0)
        b.add(Req("thumb"), 0.0)
        assert sorted(x.kind for x in b.flush()) == ["panel", "thumb"]
        assert b.pending() == 0

    def test_max_size_one_closes_immediately(self):
        b = MicroBatcher(BatchPolicy(max_size=1, max_delay=1.0))
        assert b.add(Req("panel"), 0.0).size == 1


class TestRunBatch:
    def test_results_align_with_calls(self):
        out = run_batch([(int, ("7",), {}), (str.upper, ("ab",), {})])
        assert out == [("ok", 7), ("ok", "AB")]

    def test_one_bad_item_does_not_poison_batchmates(self):
        def boom():
            raise ValueError("nope")

        out = run_batch([(boom, (), {}), (int, ("3",), {})])
        assert out[0][0] == "err" and isinstance(out[0][1], ValueError)
        assert out[1] == ("ok", 3)
