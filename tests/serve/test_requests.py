"""Typed responses and canonical cache keys."""

import numpy as np
import pytest

from repro.serve.requests import (
    Completed,
    Failed,
    Rejected,
    Ticket,
    Uncacheable,
    canonical_key,
)


class TestResponses:
    def test_ok_discriminates(self):
        assert Completed(1).ok
        assert not Rejected("queue").ok
        assert not Failed(ValueError("x")).ok

    def test_rejected_validates_reason(self):
        with pytest.raises(ValueError):
            Rejected("because")

    def test_all_documented_reasons_accepted(self):
        for reason in ("rate", "queue", "shutdown", "deadline", "cancelled"):
            assert Rejected(reason).reason == reason


class TestTicket:
    def test_resolves_once(self):
        t = Ticket(1, "panel")
        assert t._resolve(Completed(7))
        assert not t._resolve(Rejected("queue"))
        assert t.response().value == 7

    def test_timeout_raises(self):
        t = Ticket(1, "panel")
        with pytest.raises(TimeoutError):
            t.response(timeout=0.01)


class TestCanonicalKey:
    def test_stable_across_calls(self):
        a = canonical_key("panel", (1, 2.5, "x"), {"k": [1, 2]})
        b = canonical_key("panel", (1, 2.5, "x"), {"k": [1, 2]})
        assert a == b

    def test_task_identity_matters(self):
        assert canonical_key("panel", (1,)) != canonical_key("thumb", (1,))

    def test_type_tags_distinguish_lookalikes(self):
        keys = {
            canonical_key("t", (1,)),
            canonical_key("t", (1.0,)),
            canonical_key("t", ("1",)),
            canonical_key("t", (True,)),
        }
        assert len(keys) == 4

    def test_container_boundaries(self):
        assert canonical_key("t", (("ab",),)) != canonical_key("t", (("a", "b"),))

    def test_dict_order_irrelevant(self):
        assert canonical_key("t", (), {"a": 1, "b": 2}) == canonical_key(
            "t", (), {"b": 2, "a": 1}
        )

    def test_set_order_irrelevant(self):
        assert canonical_key("t", ({3, 1, 2},)) == canonical_key("t", ({2, 3, 1},))

    def test_ndarray_content_keyed(self):
        x = np.arange(6, dtype=np.float64)
        assert canonical_key("t", (x,)) == canonical_key("t", (x.copy(),))
        assert canonical_key("t", (x,)) != canonical_key("t", (x + 1,))
        # same bytes, different shape must differ
        assert canonical_key("t", (x.reshape(2, 3),)) != canonical_key(
            "t", (x.reshape(3, 2),)
        )

    def test_callable_task_uses_name(self):
        def panel(x):
            return x

        assert canonical_key(panel, (1,)).startswith("TestCanonicalKey")

    def test_uncacheable_objects_raise(self):
        class Opaque:
            pass

        with pytest.raises(Uncacheable):
            canonical_key("t", (Opaque(),))
