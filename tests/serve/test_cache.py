"""Memoizing cache correctness: LRU order, TTL expiry, single-flight."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor.factory import create
from repro.serve.batching import BatchPolicy
from repro.serve.cache import LRUTTLCache, ModeledCache
from repro.serve.gateway import Gateway
from repro.serve.requests import Completed


class TestLRUEvictionOrder:
    def test_evicts_least_recently_used_first(self):
        c = LRUTTLCache(capacity=3)
        for i, k in enumerate(("a", "b", "c")):
            c.begin(k, float(i))
            c.complete(k, k.upper(), float(i))
        # touch "a" so "b" becomes the LRU victim
        assert c.begin("a", 3.0).status == "hit"
        c.begin("d", 4.0)
        c.complete("d", "D", 4.0)
        assert c.keys() == ["c", "a", "d"]
        assert c.stats.evictions == 1
        assert c.begin("b", 5.0).status == "lead"  # evicted -> miss

    def test_store_order_is_recency_not_insertion(self):
        c = LRUTTLCache(capacity=8)
        for k in ("x", "y", "z"):
            c.begin(k, 0.0)
            c.complete(k, k, 0.0)
        c.begin("x", 1.0)  # hit moves x to MRU
        assert c.keys() == ["y", "z", "x"]

    def test_capacity_one(self):
        c = LRUTTLCache(capacity=1)
        c.begin("a", 0.0)
        c.complete("a", 1, 0.0)
        c.begin("b", 1.0)
        c.complete("b", 2, 1.0)
        assert c.keys() == ["b"]
        assert c.stats.evictions == 1


class TestTTLExpiry:
    def test_entry_expires_after_ttl(self):
        c = LRUTTLCache(capacity=8, ttl=10.0)
        c.begin("k", 0.0)
        c.complete("k", 42, 0.0)
        assert c.begin("k", 9.99).status == "hit"
        decision = c.begin("k", 10.0)  # ttl is inclusive at the boundary
        assert decision.status == "lead"
        assert c.stats.expirations == 1

    def test_completion_refreshes_stored_at(self):
        c = LRUTTLCache(capacity=8, ttl=10.0)
        c.begin("k", 0.0)
        c.complete("k", 1, 0.0)
        c.begin("k", 10.0)  # expired -> lead again
        c.complete("k", 2, 10.0)
        hit = c.begin("k", 19.0)
        assert hit.status == "hit" and hit.value == 2

    def test_get_respects_ttl(self):
        c = LRUTTLCache(capacity=8, ttl=5.0)
        c.begin("k", 0.0)
        c.complete("k", 7, 0.0)
        assert c.get("k", 4.0) == 7
        assert c.get("k", 6.0) is None

    def test_no_ttl_never_expires(self):
        c = LRUTTLCache(capacity=8)
        c.begin("k", 0.0)
        c.complete("k", 7, 0.0)
        assert c.begin("k", 1e9).status == "hit"


class TestSingleFlightPrimitive:
    def test_second_request_waits_on_leader(self):
        c = LRUTTLCache(capacity=8)
        assert c.begin("k", 0.0).status == "lead"
        waiter = c.begin("k", 0.0)
        assert waiter.status == "wait"
        c.complete("k", 99, 0.0)
        assert waiter.leader.result(timeout=1.0) == 99
        assert c.stats.coalesced == 1

    def test_leader_failure_releases_waiters_uncached(self):
        c = LRUTTLCache(capacity=8)
        c.begin("k", 0.0)
        waiter = c.begin("k", 0.0)
        c.fail("k", ValueError("boom"))
        with pytest.raises(ValueError):
            waiter.leader.result(timeout=1.0)
        # nothing cached: the next request leads a fresh attempt
        assert c.begin("k", 1.0).status == "lead"


class TestSingleFlightProperty:
    """A memoized body runs at most once per key under the threads backend."""

    @settings(max_examples=15, deadline=None)
    @given(keys=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=30))
    def test_body_runs_at_most_once_per_key(self, keys):
        runs: dict[int, int] = {}
        lock = threading.Lock()

        def body(k: int) -> int:
            with lock:
                runs[k] = runs.get(k, 0) + 1
            return k * 11

        executor = create("threads", cores=2)
        gateway = Gateway(
            executor,
            cache=LRUTTLCache(capacity=64),
            batching=BatchPolicy(max_size=4, max_delay=0.001),
        )
        try:
            tickets = [gateway.submit(body, k, task="memo") for k in keys]
            gateway.drain()
            responses = [t.response(timeout=10.0) for t in tickets]
        finally:
            gateway.shutdown(drain=False)
            executor.shutdown()
        assert all(isinstance(r, Completed) for r in responses)
        for t, k in zip(tickets, keys):
            assert t.response().value == k * 11
        for k, n in runs.items():
            assert n == 1, f"body for key {k} ran {n} times"
        assert set(runs) == set(keys)


class TestModeledCache:
    def test_warm_set_is_seeded_and_stable(self):
        a = ModeledCache(hit_rate=0.5, seed=7)
        b = ModeledCache(hit_rate=0.5, seed=7)
        keys = [f"k{i}" for i in range(200)]
        assert [a.warm(k) for k in keys] == [b.warm(k) for k in keys]

    def test_hit_rate_shapes_warm_fraction(self):
        keys = [f"k{i}" for i in range(2000)]
        frac = sum(ModeledCache(hit_rate=0.7, seed=0).warm(k) for k in keys) / len(keys)
        assert 0.65 < frac < 0.75
        assert not any(ModeledCache(hit_rate=0.0, seed=0).warm(k) for k in keys)
        assert all(ModeledCache(hit_rate=1.0, seed=0).warm(k) for k in keys)

    def test_warm_key_counts_hit_even_on_first_access(self):
        c = ModeledCache(hit_rate=1.0, seed=0)
        d = c.begin("k", 0.0)
        assert d.status == "lead" and not d.charge
        assert c.stats.hits == 1 and c.stats.misses == 0
        c.complete("k", 5, 0.0)
        assert c.begin("k", 1.0).status == "hit"

    def test_cold_key_always_misses(self):
        c = ModeledCache(hit_rate=0.0, seed=0)
        for t in range(3):
            d = c.begin("k", float(t))
            assert d.status == "lead" and d.charge
            c.complete("k", 5, float(t))
        assert c.stats.misses == 3
