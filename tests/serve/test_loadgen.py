"""Seeded arrival traces and the end-to-end replay harness."""

import pytest

from repro.serve.loadgen import (
    KINDS,
    PATTERNS,
    LoadSpec,
    build_trace,
    run_serve,
)


class TestBuildTrace:
    def test_deterministic_for_seed(self):
        spec = LoadSpec("bursty", requests=500, seed=11)
        assert build_trace(spec) == build_trace(spec)

    def test_seed_changes_trace(self):
        a = build_trace(LoadSpec("bursty", requests=500, seed=11))
        b = build_trace(LoadSpec("bursty", requests=500, seed=12))
        assert a != b

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_every_pattern_produces_valid_arrivals(self, pattern):
        trace = build_trace(LoadSpec(pattern, requests=300, seed=3))
        assert len(trace) == 300
        times = [a.t for a in trace]
        assert times == sorted(times) and times[0] >= 0.0
        assert {a.kind for a in trace} <= set(KINDS)
        assert all(0 <= a.key < 512 for a in trace)

    def test_key_skew_favours_low_keys(self):
        trace = build_trace(LoadSpec("steady", requests=5000, seed=0, keyspace=100))
        low = sum(1 for a in trace if a.key < 20)
        assert low / len(trace) > 0.4  # skew=3.0 concentrates mass at the bottom

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            build_trace(LoadSpec("tsunami", requests=10))


class TestRunServeSim:
    def test_report_is_reproducible(self):
        a = run_serve("bursty", backend="sim", requests=2000, seed=5)
        b = run_serve("bursty", backend="sim", requests=2000, seed=5)
        assert a.metrics() == b.metrics()
        assert a.table().render() == b.table().render()

    def test_steady_pattern_mostly_admits(self):
        report = run_serve("steady", backend="sim", requests=2000, seed=5)
        assert report.completed + report.failed + report.shed_total == 2000
        assert report.shed_rate < 0.05
        assert report.hit_rate > 0.3  # modeled cache seeded at 0.6

    def test_overload_pattern_sheds(self):
        # The overload ramp takes ~30 virtual seconds to bite at the default
        # rate; a hotter base_rate reaches saturation within a small trace.
        report = run_serve(
            "overload", backend="sim", requests=5000, seed=5, base_rate=12000.0
        )
        assert report.shed_total > 0
        assert 0.0 < report.shed_rate < 1.0
        assert report.percentile(50) <= report.percentile(99) <= report.percentile(99.9)

    def test_metrics_keys_complete(self):
        report = run_serve("steady", backend="sim", requests=500, seed=1)
        assert set(report.metrics()) == {
            "serve.throughput_rps",
            "serve.latency_p50_seconds",
            "serve.latency_p99_seconds",
            "serve.latency_p999_seconds",
            "serve.hit_rate",
            "serve.shed_rate",
            "serve.completed",
            "serve.failed",
        }


class TestRunServeThreads:
    def test_short_threads_run_completes_without_hang(self):
        report = run_serve(
            "steady", backend="threads", cores=2, requests=400, seed=5, time_scale=0.0
        )
        assert report.completed + report.failed + report.shed_total == 400
        assert report.completed > 0

    def test_overload_firehose_sheds_on_threads(self):
        report = run_serve(
            "overload", backend="threads", cores=2, requests=2000, seed=5, time_scale=0.0
        )
        assert report.completed + report.failed + report.shed_total == 2000
        assert report.shed_total > 0
