"""Request-scoped tracing: stage telescoping, golden stability, shards.

The load-bearing invariant is *telescoping*: every finished request's
per-stage durations sum to exactly (``==``, not ``isclose``) its
end-to-end latency, on every backend.  The hypothesis property pins the
mechanism (mark-chain arithmetic plus the final-segment residual
absorption); the cross-backend tests pin the wiring.
"""

import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import TraceRecorder
from repro.obs.rtrace import (
    STAGES,
    RequestTrace,
    RequestTraceCollector,
)
from repro.serve.loadgen import run_serve


# -- the telescoping property ------------------------------------------------

_deltas = st.lists(
    st.tuples(
        st.sampled_from(STAGES),
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    ),
    min_size=0,
    max_size=12,
)


class TestStageSumProperty:
    @given(arrival=st.floats(min_value=0.0, max_value=1e6), chain=_deltas)
    @settings(max_examples=200)
    def test_stage_durations_sum_exactly_to_total(self, arrival, chain):
        rt = RequestTrace(1, "panel", arrival)
        ts = arrival
        for stage, delta in chain:
            ts += delta
            rt.mark(stage, ts)
        assert sum(rt.stages().values()) == rt.total()

    @given(
        arrival=st.floats(min_value=0.0, max_value=1e6),
        chain=st.lists(
            st.tuples(
                st.sampled_from(STAGES),
                # absolute timestamps, deliberately allowed to go backwards
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            ),
            max_size=12,
        ),
    )
    @settings(max_examples=200)
    def test_clamping_forbids_negative_segments(self, arrival, chain):
        rt = RequestTrace(1, "thumb", arrival)
        for stage, ts in chain:
            rt.mark(stage, ts)
        durs = rt.stages()
        # the first segment may start before arrival only via clamping,
        # which zero-widths it; every recorded duration is non-negative
        # up to the residual absorbed into the last segment
        assert all(d >= 0.0 or math.isclose(d, 0.0, abs_tol=1e-9) for d in durs.values())
        assert sum(durs.values()) == rt.total()

    @pytest.mark.parametrize("backend", ["sim", "inline", "threads"])
    def test_exemplars_telescope_on_every_backend(self, backend):
        report = run_serve(
            "bursty",
            backend=backend,
            cores=2,
            requests=400,
            seed=7,
            time_scale=0.0,
            rtrace=True,
        )
        assert report.stages is not None
        assert report.stages.exemplars
        for rt in report.stages.exemplars:
            assert sum(rt.stages().values()) == rt.total()
        # aggregate view: stage totals telescope to the latency total
        # (re-association across requests allows float-epsilon slack)
        stage_total = sum(sum(v) for v in report.stages.stage_samples.values())
        assert math.isclose(
            stage_total, sum(report.stages.latencies), rel_tol=1e-9, abs_tol=1e-9
        )


# -- golden stability under sim ---------------------------------------------


class TestSimGolden:
    def test_traced_overload_report_is_byte_identical_across_runs(self):
        kw = dict(backend="sim", requests=8000, seed=2014, rtrace=True)
        a = run_serve("overload", **kw)
        b = run_serve("overload", **kw)
        assert a.table().render() == b.table().render()
        assert a.stage_table().render() == b.stage_table().render()
        assert a.slo is not None and b.slo is not None
        assert a.slo.table().render() == b.slo.table().render()
        assert a.metrics() == b.metrics()

    def test_tracing_does_not_perturb_the_untraced_golden(self):
        kw = dict(backend="sim", requests=8000, seed=2014)
        traced = run_serve("overload", rtrace=True, **kw)
        plain = run_serve("overload", **kw)
        # same virtual schedule, byte for byte — tracing observes, never steers
        assert traced.table().render() == plain.table().render()

    def test_stage_table_end_to_end_row_telescopes(self):
        report = run_serve("overload", backend="sim", requests=8000, rtrace=True)
        rendered = report.stage_table().render()
        rows = [r.split("|") for r in rendered.splitlines()[3:]]
        totals = {r[0].strip(): float(r[2]) for r in rows}
        stage_sum = sum(v for k, v in totals.items() if k != "end_to_end")
        assert totals["end_to_end"] == pytest.approx(stage_sum, abs=2e-6)

    def test_traced_metrics_are_a_superset_of_the_pinned_keys(self):
        plain = run_serve("steady", backend="sim", requests=500, seed=1)
        traced = run_serve("steady", backend="sim", requests=500, seed=1, rtrace=True)
        assert set(plain.metrics()) < set(traced.metrics())
        for key in plain.metrics():
            assert traced.metrics()[key] == plain.metrics()[key]


# -- collector bookkeeping ---------------------------------------------------


class TestCollector:
    def test_exemplar_heap_keeps_the_n_slowest(self):
        coll = RequestTraceCollector(exemplars=3)

        class _Done:  # completed-shaped response
            cached = False
            attempts = 1

        for i, total in enumerate([5.0, 1.0, 9.0, 3.0, 7.0]):
            rt = coll.begin(i, "panel", 0.0)
            rt.mark("resolve", total)
            coll.finish(rt, _Done())
        summary = coll.summary()
        assert [rt.total() for rt in summary.exemplars] == [9.0, 7.0, 5.0]
        assert summary.requests == 5 and summary.completed == 5

    def test_statuses_partition_the_finished_traces(self):
        report = run_serve(
            "overload",
            backend="sim",
            requests=5000,
            seed=5,
            base_rate=12000.0,
            rtrace=True,
        )
        s = report.stages
        assert s.requests == s.completed + s.failed + s.rejected
        assert len(s.latencies) == len(s.resolves) == len(s.statuses) == s.requests
        # the hot overload run sheds at admission; sheds are counted
        # separately from finished traces
        assert report.shed_total == len(s.sheds) + s.rejected


# -- cross-process execute attribution ---------------------------------------


class TestProcessesBackend:
    def test_execute_spans_carry_worker_pids_after_shard_merge(self):
        recorder = TraceRecorder()
        report = run_serve(
            "steady",
            backend="processes",
            cores=2,
            requests=200,
            seed=3,
            time_scale=0.0,
            trace=recorder,
            rtrace=True,
        )
        assert report.completed > 0
        # worker shards were merged back at executor shutdown (inside
        # run_serve); per-request execute spans are pid-attributed to
        # the worker process that actually ran the batch
        rexec = [e for e in recorder.events() if e.kind == "rexec"]
        assert rexec, "no per-request execute spans came back from the workers"
        pids = {e.attrs.get("pid") for e in rexec}
        assert pids and None not in pids
        assert os.getpid() not in pids
        assert all(e.name.startswith("req:") for e in rexec)
        # the finished traces agree: executed requests carry a worker pid
        traced_pids = {
            rt.pid for rt in report.stages.exemplars if rt.pid is not None
        }
        assert traced_pids <= pids
