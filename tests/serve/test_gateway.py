"""Gateway behaviour across backends: same API, typed responses, no hangs.

Process workers unpickle task bodies by import, so every body submitted
to the processes backend is a module-level function from the ``repro``
package (``repro.serve.loadgen.panel_body``) — the same spawn-safety
discipline the backend asks of applications.
"""

import threading

import pytest

from repro.executor.factory import create
from repro.obs import TraceRecorder
from repro.resilience import CancelToken, FaultPlan, InjectedFault, RetryPolicy
from repro.serve.admission import AdmissionPolicy
from repro.serve.batching import BatchPolicy
from repro.serve.cache import LRUTTLCache, ModeledCache
from repro.serve.gateway import Gateway
from repro.serve.loadgen import panel_body
from repro.serve.requests import Completed, Failed, Rejected


def small_batches() -> BatchPolicy:
    return BatchPolicy(max_size=4, max_delay=0.001)


class TestSameSemanticsEveryBackend:
    @pytest.mark.parametrize("backend", ["inline", "sim", "threads"])
    def test_values_identical(self, backend):
        with create(backend) as executor:
            gateway = Gateway(executor, batching=small_batches())
            tickets = [
                gateway.submit(panel_body, k, task="panel", cost=0.001)
                for k in range(10)
            ]
            gateway.drain()
            values = [gateway.result(t, timeout=10.0).value for t in tickets]
            gateway.shutdown()
        assert values == [panel_body(k) for k in range(10)]

    def test_values_identical_processes(self):
        with create("processes", cores=2) as executor:
            gateway = Gateway(executor, batching=small_batches())
            tickets = [
                gateway.submit(panel_body, k, task="panel") for k in range(8)
            ]
            gateway.drain()
            values = [gateway.result(t, timeout=30.0).value for t in tickets]
            gateway.shutdown()
        assert values == [panel_body(k) for k in range(8)]

    @pytest.mark.parametrize("backend", ["sim", "threads"])
    def test_batch_size_reported(self, backend):
        with create(backend) as executor:
            gateway = Gateway(
                executor, batching=BatchPolicy(max_size=4, max_delay=5.0)
            )
            tickets = [
                gateway.submit(panel_body, k, task="panel") for k in range(4)
            ]
            resp = gateway.result(tickets[0], timeout=10.0)
            gateway.shutdown()
        assert isinstance(resp, Completed) and resp.batch_size == 4


class TestAdmission:
    def test_queue_depth_sheds_typed(self):
        with create("sim") as executor:
            gateway = Gateway(
                executor,
                admission=AdmissionPolicy(max_queue=3),
                batching=BatchPolicy(max_size=100, max_delay=10.0),
            )
            tickets = [gateway.submit(panel_body, k, key=None) for k in range(5)]
            responses = [t.response(0.1) if t.done() else None for t in tickets]
            shed = [r for r in responses if isinstance(r, Rejected)]
            assert len(shed) == 2 and all(r.reason == "queue" for r in shed)
            gateway.shutdown()

    def test_rate_limit_sheds_typed(self):
        with create("inline") as executor:
            gateway = Gateway(
                executor,
                admission=AdmissionPolicy(rate=1.0, burst=2.0, max_queue=None),
                batching=small_batches(),
            )
            tickets = [gateway.submit(panel_body, k, key=None) for k in range(4)]
            shed = [
                t.response(0.1)
                for t in tickets
                if t.done() and isinstance(t.response(0.1), Rejected)
            ]
            assert len(shed) == 2 and all(r.reason == "rate" for r in shed)
            gateway.shutdown()

    def test_submit_never_blocks_under_overload(self):
        with create("sim") as executor:
            gateway = Gateway(
                executor,
                admission=AdmissionPolicy(max_queue=1),
                batching=BatchPolicy(max_size=1000, max_delay=100.0),
            )
            for k in range(200):
                gateway.submit(panel_body, k, key=None)  # must return instantly
            assert gateway.queue_depth <= 1
            gateway.shutdown()


class TestLifecycle:
    def test_cancel_token_rejects_at_dispatch(self):
        token = CancelToken(name="client-gone")
        with create("sim") as executor:
            gateway = Gateway(executor, batching=BatchPolicy(max_size=10, max_delay=0.5))
            ticket = gateway.submit(panel_body, 1, key=None, cancel=token)
            token.cancel()
            gateway.drain()
            resp = ticket.response(1.0)
            gateway.shutdown()
        assert isinstance(resp, Rejected) and resp.reason == "cancelled"

    def test_deadline_rejects_when_dispatch_is_late(self):
        with create("sim") as executor:
            gateway = Gateway(executor, batching=BatchPolicy(max_size=10, max_delay=1.0))
            ticket = gateway.submit(panel_body, 1, key=None, deadline=0.5)
            gateway.pump(now=2.0)  # batch ages out at t=1.0 > deadline
            resp = ticket.response(1.0)
            gateway.shutdown()
        assert isinstance(resp, Rejected) and resp.reason == "deadline"

    def test_deadline_met_when_dispatch_is_prompt(self):
        with create("sim") as executor:
            gateway = Gateway(executor, batching=BatchPolicy(max_size=1, max_delay=0.0))
            ticket = gateway.submit(panel_body, 1, key=None, deadline=0.5)
            gateway.drain()
            resp = ticket.response(1.0)
            gateway.shutdown()
        assert isinstance(resp, Completed)

    def test_shutdown_drain_false_rejects_queued_requests(self):
        """The stranded-request mirror of ExecutorShutdown: queued but
        undispatched work resolves with Rejected, nobody waits forever."""
        with create("sim") as executor:
            gateway = Gateway(
                executor, batching=BatchPolicy(max_size=1000, max_delay=100.0)
            )
            tickets = [gateway.submit(panel_body, k, key=None) for k in range(7)]
            gateway.shutdown(drain=False)
            responses = [t.response(1.0) for t in tickets]
        assert all(isinstance(r, Rejected) and r.reason == "shutdown" for r in responses)

    def test_shutdown_drain_false_threads_no_hang(self):
        with create("threads", cores=2) as executor:
            gateway = Gateway(
                executor, batching=BatchPolicy(max_size=1000, max_delay=100.0)
            )
            tickets = [gateway.submit(panel_body, k, key=None) for k in range(20)]
            gateway.shutdown(drain=False)
            responses = [t.response(5.0) for t in tickets]  # must all resolve
        assert all(isinstance(r, (Rejected, Completed, Failed)) for r in responses)
        assert any(isinstance(r, Rejected) and r.reason == "shutdown" for r in responses)

    def test_submit_after_shutdown_is_rejected_not_raised(self):
        with create("inline") as executor:
            gateway = Gateway(executor)
            gateway.shutdown()
            resp = gateway.submit(panel_body, 1).response(1.0)
        assert isinstance(resp, Rejected) and resp.reason == "shutdown"

    def test_shutdown_idempotent(self):
        with create("inline") as executor:
            gateway = Gateway(executor)
            gateway.shutdown()
            gateway.shutdown(drain=False)


class TestCacheIntegration:
    def test_modeled_warm_key_serves_cached_zero_latency(self):
        with create("sim") as executor:
            gateway = Gateway(
                executor,
                cache=ModeledCache(hit_rate=1.0, seed=0),
                batching=small_batches(),
            )
            ticket = gateway.submit(panel_body, 3, task="panel", cost=0.01)
            resp = gateway.result(ticket)
            gateway.shutdown()
        assert isinstance(resp, Completed)
        assert resp.cached and resp.latency == 0.0 and resp.value == panel_body(3)

    def test_lru_repeat_request_is_a_hit(self):
        with create("threads", cores=2) as executor:
            gateway = Gateway(
                executor, cache=LRUTTLCache(capacity=16), batching=small_batches()
            )
            first = gateway.submit(panel_body, 5, task="panel")
            gateway.drain()
            assert isinstance(first.response(5.0), Completed)
            second = gateway.submit(panel_body, 5, task="panel")
            resp = second.response(5.0)
            gateway.shutdown()
        assert isinstance(resp, Completed) and resp.cached

    def test_uncacheable_arguments_still_served(self):
        class Opaque:
            pass

        captured = []

        def probe(x):
            captured.append(x)
            return "ok"

        with create("inline") as executor:
            gateway = Gateway(
                executor, cache=LRUTTLCache(capacity=4), batching=small_batches()
            )
            ticket = gateway.submit(probe, Opaque(), task="opaque")
            resp = gateway.result(ticket)
            gateway.shutdown()
        assert isinstance(resp, Completed) and resp.value == "ok"
        assert ticket.key is None and len(captured) == 1


class TestFaultsAndRetries:
    def test_injected_faults_retried_transparently(self):
        plan = FaultPlan(seed=3, task_failure_rate=0.4)
        recorder = TraceRecorder()
        with create("sim", trace=recorder, faults=plan) as executor:
            gateway = Gateway(
                executor,
                batching=small_batches(),
                retry=RetryPolicy(
                    max_attempts=10, base_delay=0.0, max_delay=0.0, jitter=0.0,
                    retry_on=(InjectedFault,),
                ),
                trace=recorder,
            )
            tickets = [
                gateway.submit(panel_body, k, task="panel", key=None)
                for k in range(30)
            ]
            gateway.drain()
            responses = [t.response(1.0) for t in tickets]
            gateway.shutdown()
        assert all(isinstance(r, Completed) for r in responses)
        assert gateway.stats.retries > 0
        kinds = {e.kind for e in recorder.events()}
        assert "retry" in kinds and "fault" in kinds

    def test_exhausted_retries_fail_typed(self):
        plan = FaultPlan(seed=1, task_failure_rate=1.0)
        with create("sim", faults=plan) as executor:
            gateway = Gateway(
                executor,
                batching=small_batches(),
                retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            )
            ticket = gateway.submit(panel_body, 1, key=None)
            resp = gateway.result(ticket)
            gateway.shutdown()
        assert isinstance(resp, Failed) and isinstance(resp.error, InjectedFault)


class TestThreadModeConcurrency:
    def test_many_clients_submit_concurrently(self):
        with create("threads", cores=2) as executor:
            gateway = Gateway(
                executor,
                batching=BatchPolicy(max_size=8, max_delay=0.002),
                cache=LRUTTLCache(capacity=64),
            )
            results: list[list] = [[] for _ in range(4)]

            def client(i: int) -> None:
                tickets = [
                    gateway.submit(panel_body, (i * 7 + j) % 10, task="panel")
                    for j in range(25)
                ]
                results[i] = [t.response(10.0) for t in tickets]

            threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            gateway.drain()
            for t in threads:
                t.join(timeout=15.0)
            gateway.shutdown()
        flat = [r for rs in results for r in rs]
        assert len(flat) == 100
        assert all(isinstance(r, Completed) for r in flat)
