"""Declarative SLOs: parsing, windowed evaluation, gate directions."""

import pytest

from repro.obs import TraceRecorder
from repro.obs.baseline import metric_direction
from repro.obs.rtrace import RequestSummary
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    Objective,
    emit_metrics,
    evaluate_slo,
    parse_objective,
)


class _FakeReport:
    """Duck-typed stand-in for a LoadReport (slo imports nothing from serve)."""

    def __init__(self, latencies, stages=None, completed=None, failed=0, shed=0):
        self._latencies = sorted(latencies)
        self.stages = stages
        self.completed = completed if completed is not None else len(latencies)
        self.failed = failed
        self.duration = 4.0
        self._shed = shed

    def percentile(self, q):
        import math

        if not self._latencies:
            return 0.0
        n = len(self._latencies)
        return self._latencies[max(0, min(n - 1, math.ceil(q * n) - 1))]

    @property
    def shed_rate(self):
        n = self.completed + self.failed + self._shed
        return self._shed / n if n else 0.0


def _summary(resolves, latencies, statuses, sheds=()):
    return RequestSummary(
        requests=len(resolves),
        completed=statuses.count("completed"),
        failed=statuses.count("failed"),
        rejected=statuses.count("rejected"),
        cached=0,
        stage_samples={},
        latencies=tuple(latencies),
        resolves=tuple(resolves),
        oks=tuple(s == "completed" for s in statuses),
        statuses=tuple(statuses),
        sheds=tuple(sheds),
        exemplars=(),
    )


class TestParseObjective:
    @pytest.mark.parametrize(
        "text,metric,op,threshold",
        [
            ("p99<=0.25", "p99", "<=", 0.25),
            ("  p50 < 0.01 ", "p50", "<", 0.01),
            ("shed_rate<=0.05", "shed_rate", "<=", 0.05),
            ("availability>=0.999", "availability", ">=", 0.999),
            ("p999<=2.5e-1", "p999", "<=", 0.25),
        ],
    )
    def test_valid_forms(self, text, metric, op, threshold):
        obj = parse_objective(text)
        assert (obj.metric, obj.op, obj.threshold) == (metric, op, threshold)

    @pytest.mark.parametrize("text", ["p99", "p99==0.25", "latency<=0.1", ""])
    def test_invalid_forms_rejected(self, text):
        with pytest.raises(ValueError):
            parse_objective(text)

    def test_unknown_metric_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Objective("p42", "<=", 1.0)


class TestEvaluate:
    def test_aggregate_decides_pass_fail(self):
        # nearest-rank p99 over 10 samples picks the last order statistic
        report = _FakeReport([0.1] * 9 + [0.9])
        verdict = evaluate_slo(report, [Objective("p99", "<=", 0.25)])
        assert not verdict.passed
        verdict = evaluate_slo(report, [Objective("p99", "<=", 1.0)])
        assert verdict.passed

    def test_windows_count_breaches(self):
        # four 1 s windows: the fourth is the slow one
        resolves = [0.5, 1.5, 2.5, 3.5]
        latencies = [0.01, 0.01, 0.01, 0.8]
        stages = _summary(resolves, latencies, ["completed"] * 4)
        report = _FakeReport(latencies, stages=stages)
        (res,) = evaluate_slo(report, [Objective("p99", "<=", 0.25)]).results
        assert (res.windows, res.breached) == (4, 1)
        assert res.burn_rate == 0.25

    def test_empty_windows_are_excluded_not_counted(self):
        stages = _summary([0.5, 3.5], [0.01, 0.01], ["completed"] * 2)
        report = _FakeReport([0.01, 0.01], stages=stages)
        (res,) = evaluate_slo(report, [Objective("p99", "<=", 0.25)]).results
        assert res.windows == 2  # windows 1 and 2 had no completions

    def test_availability_windows_ignore_rejections(self):
        stages = _summary(
            [0.5, 0.6, 1.5],
            [0.01, 0.02, 0.03],
            ["completed", "failed", "rejected"],
        )
        report = _FakeReport([0.01], stages=stages, completed=1, failed=1)
        (res,) = evaluate_slo(report, [Objective("availability", ">=", 0.999)]).results
        # window 0 has 1 completed + 1 failed -> 0.5 availability, breach;
        # window 1 has only a rejection -> excluded
        assert (res.windows, res.breached) == (1, 1)
        assert not res.passed

    def test_shed_windows_use_admission_sheds(self):
        stages = _summary(
            [0.5, 1.5], [0.01, 0.01], ["completed"] * 2, sheds=(0.4, 0.45, 0.55)
        )
        report = _FakeReport([0.01, 0.01], stages=stages, shed=3)
        (res,) = evaluate_slo(report, [Objective("shed_rate", "<=", 0.05)]).results
        # window 0: 3 sheds vs 1 resolved -> 0.75, breach; window 1: 0/1 ok
        assert (res.windows, res.breached) == (2, 1)

    def test_untraced_report_gets_aggregate_only(self):
        report = _FakeReport([0.01] * 10)
        verdict = evaluate_slo(report)
        assert len(verdict.results) == len(DEFAULT_OBJECTIVES)
        assert all(r.windows == 0 for r in verdict.results)
        assert verdict.passed

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            evaluate_slo(_FakeReport([0.01]), window=0.0)

    def test_verdict_table_is_deterministic(self):
        report = _FakeReport([0.01] * 10)
        a = evaluate_slo(report).table().render()
        b = evaluate_slo(report).table().render()
        assert a == b
        assert "SLO verdict" in a


class TestGateDirections:
    def test_metric_names_carry_the_right_direction(self):
        report = _FakeReport([0.01] * 10)
        metrics = evaluate_slo(report).metrics()
        directions = {name: metric_direction(name) for name in metrics}
        assert directions["slo.burn_rate_p99"] == "lower"
        assert directions["slo.burn_rate_avail"] == "lower"
        assert directions["slo.windows_breached_avail"] == "lower"
        assert directions["slo.observed_p99_seconds"] == "lower"
        assert directions["slo.observed_shed_rate"] == "lower"
        assert directions["slo.observed_availability"] == "higher"
        # the verdict flag is informational, never a gated ratio
        assert directions["slo.ok"] == "info"

    def test_emit_metrics_publishes_counters_and_gauges(self):
        recorder = TraceRecorder()
        report = _FakeReport([0.01] * 10)
        emit_metrics(evaluate_slo(report), recorder)
        snap = recorder.metrics.snapshot()
        assert snap["slo.ok"] == 1.0
        assert "slo.burn_rate_p99" in snap
        assert "slo.windows_total_avail" in snap
        assert "slo.windows_breached_shed_rate" in snap
