"""Baseline store: persistence round-trips and direction-aware gating."""

import json

import pytest

from repro.obs import (
    Comparison,
    compare_to_baseline,
    load_baselines,
    metric_direction,
    save_baselines,
    update_baseline,
)


class TestStore:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baselines.json"
        data = {"exp_a": {"primary.work": 1.5, "trace.tasks": 8.0}}
        save_baselines(data, path)
        assert load_baselines(path) == data

    def test_missing_file_is_empty_store(self, tmp_path):
        assert load_baselines(tmp_path / "nope.json") == {}

    def test_update_inserts_and_replaces(self, tmp_path):
        path = tmp_path / "b.json"
        update_baseline("e1", {"m": 1.0}, path)
        update_baseline("e2", {"m": 2.0}, path)
        update_baseline("e1", {"m": 3.0}, path)
        store = load_baselines(path)
        assert store == {"e1": {"m": 3.0}, "e2": {"m": 2.0}}

    def test_file_is_sorted_versioned_json(self, tmp_path):
        path = tmp_path / "b.json"
        save_baselines({"z": {"b": 2.0, "a": 1.0}, "a": {"x": 0.0}}, path)
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert list(doc["experiments"]) == ["a", "z"]
        assert list(doc["experiments"]["z"]) == ["a", "b"]
        assert path.read_text().endswith("\n")


class TestDirections:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("pool.task_seconds.p99", "lower"),
            ("primary.makespan", "lower"),
            ("primary.span", "lower"),
            ("primary.work", "lower"),
            ("edt_latency.p99", "lower"),
            ("barrier_wait.total_seconds", "lower"),
            ("fit.serial_fraction", "lower"),
            ("primary.parallelism", "higher"),
            ("primary.utilization", "higher"),
            ("trace.tasks", "info"),
            ("pool.submitted", "info"),
            ("trace.steals", "info"),
        ],
    )
    def test_vocabulary(self, name, expected):
        assert metric_direction(name) == expected


class TestCompare:
    def test_no_drift_is_ok(self):
        base = {"primary.makespan": 1.0, "primary.parallelism": 4.0}
        cmp = compare_to_baseline("e", dict(base), base)
        assert isinstance(cmp, Comparison)
        assert cmp.ok and cmp.regressions == ()

    def test_lower_better_regresses_when_it_grows(self):
        cmp = compare_to_baseline(
            "e", {"primary.makespan": 1.5}, {"primary.makespan": 1.0}, threshold=0.25
        )
        assert not cmp.ok
        (r,) = cmp.regressions
        assert r.name == "primary.makespan" and r.direction == "lower"
        assert r.rel_change == pytest.approx(0.5)

    def test_lower_better_improvement_never_flags(self):
        cmp = compare_to_baseline("e", {"primary.makespan": 0.1}, {"primary.makespan": 1.0})
        assert cmp.ok

    def test_higher_better_regresses_when_it_shrinks(self):
        cmp = compare_to_baseline(
            "e", {"primary.parallelism": 2.0}, {"primary.parallelism": 4.0}, threshold=0.25
        )
        assert not cmp.ok
        assert cmp.regressions[0].direction == "higher"

    def test_drift_inside_threshold_tolerated(self):
        cmp = compare_to_baseline(
            "e", {"primary.makespan": 1.2}, {"primary.makespan": 1.0}, threshold=0.25
        )
        assert cmp.ok

    def test_counts_never_gate(self):
        cmp = compare_to_baseline("e", {"trace.steals": 900.0}, {"trace.steals": 3.0})
        assert cmp.ok
        (d,) = cmp.deltas
        assert d.direction == "info" and not d.regressed

    def test_zero_baseline_never_gates(self):
        cmp = compare_to_baseline("e", {"lock_wait.total_seconds": 5.0},
                                  {"lock_wait.total_seconds": 0.0})
        assert cmp.ok
        assert cmp.deltas[0].rel_change is None

    def test_one_sided_metrics_reported_not_gated(self):
        cmp = compare_to_baseline("e", {"new.metric": 1.0}, {"gone.seconds": 1.0})
        assert cmp.ok
        assert cmp.new == ("new.metric",)
        assert cmp.missing == ("gone.seconds",)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_to_baseline("e", {}, {}, threshold=-0.1)

    def test_render_names_regressions(self):
        cmp = compare_to_baseline("exp", {"primary.makespan": 9.0}, {"primary.makespan": 1.0})
        text = cmp.render()
        assert "REGRESSED" in text
        assert "1 regression(s)" in text
        assert "exp" in text

    def test_render_clean_run(self):
        text = compare_to_baseline("exp", {"m.seconds": 1.0}, {"m.seconds": 1.0}).render()
        assert "no regressions" in text
