"""Sampling profiler: deterministic folding plus one real sampling run."""

import threading
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.live.registry import WorkerRegistry
from repro.obs.live.sampler import (
    Profile,
    Sample,
    SamplingProfiler,
    current_profiler,
    fold,
    use_profiler,
    walk_stack,
)


def _s(state="running", task="sort", stack=("main", "sort"), worker="w0"):
    return Sample(worker=worker, role="pool", state=state, task=task, stack=tuple(stack))


class TestFold:
    def test_identical_samples_merge_into_one_line(self):
        p = fold([_s(), _s(), _s()])
        assert p.total_samples == 3
        assert p.collapsed() == ["state:running;task:sort;main;sort 3"]

    def test_attribution_roots_group_state_then_task(self):
        p = fold([_s(state="blocked", task="join", stack=("main", "wait"))])
        assert p.collapsed() == ["state:blocked;task:join;main;wait 1"]
        assert p.collapsed(attribution=False) == ["main;wait 1"]

    def test_collapsed_lines_are_sorted(self):
        p = fold([_s(task="zz"), _s(task="aa")])
        lines = p.collapsed()
        assert lines == sorted(lines)

    def test_collapsed_text_newline_terminated(self):
        assert fold([_s()]).collapsed_text().endswith("\n")
        assert fold([]).collapsed_text() == ""

    def test_tallies(self):
        p = fold(
            [
                _s(state="running", task="a", worker="w0"),
                _s(state="idle", task="-", worker="w1", stack=("main", "wait")),
                _s(state="running", task="a", worker="w0"),
            ]
        )
        assert p.by_task() == {"-": 1, "a": 2}
        assert p.by_state() == {"idle": 1, "running": 2}
        assert p.by_worker() == {"w0": 2, "w1": 1}

    def test_merge_adds_counts(self):
        a, b = fold([_s()]), fold([_s(), _s(task="other")])
        a.merge(b)
        assert a.total_samples == 3
        assert a.by_task() == {"other": 1, "sort": 2}

    def test_add_rejects_nonpositive_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            Profile().add(_s(), n=0)


class TestHotspots:
    def test_self_is_leaf_cum_is_anywhere(self):
        p = fold([_s(stack=("main", "sort", "partition")), _s(stack=("main", "sort"))])
        rows = {r.frame: r for r in p.hotspots()}
        assert rows["partition"].self_samples == 1
        assert rows["partition"].cum_samples == 1
        assert rows["sort"].self_samples == 1
        assert rows["sort"].cum_samples == 2
        assert rows["main"].self_samples == 0
        assert rows["main"].cum_samples == 2

    def test_recursion_counts_once_per_sample(self):
        p = fold([_s(stack=("main", "fib", "fib", "fib"))])
        rows = {r.frame: r for r in p.hotspots()}
        assert rows["fib"].cum_samples == 1
        assert rows["fib"].self_samples == 1

    def test_ordered_hottest_self_first(self):
        p = fold([_s(stack=("main", "hot")), _s(stack=("main", "hot")), _s(stack=("main", "warm"))])
        assert [r.frame for r in p.hotspots()][0] == "hot"

    def test_per_task_tables_keyed_by_task(self):
        p = fold([_s(task="a"), _s(task="b", stack=("main", "other"))])
        tables = p.task_hotspots()
        assert sorted(tables) == ["a", "b"]
        assert tables["b"][0].frame in ("main", "other")


class TestFoldProperty:
    @given(
        st.lists(
            st.builds(
                _s,
                state=st.sampled_from(["running", "idle", "blocked"]),
                task=st.sampled_from(["a", "b", "c", "-"]),
                stack=st.lists(st.sampled_from(["main", "f", "g", "h"]), min_size=1, max_size=5).map(tuple),
                worker=st.sampled_from(["w0", "w1"]),
            ),
            max_size=40,
        )
    )
    def test_collapsed_counts_sum_to_total_samples(self, samples):
        """The invariant every flamegraph consumer relies on: folding
        loses no samples — collapsed counts sum to the samples folded."""
        p = fold(samples)
        counted = sum(int(line.rsplit(" ", 1)[1]) for line in p.collapsed())
        assert counted == p.total_samples == len(samples)
        assert sum(p.by_task().values()) == len(samples)
        assert sum(p.by_state().values()) == len(samples)


class TestWalkStack:
    def test_root_first_and_contains_caller(self):
        import sys

        frame = sys._getframe()
        stack = walk_stack(frame)
        assert any("test_root_first_and_contains_caller" in f for f in stack)
        # the leaf (this function) is at the end, not the start
        assert "test_root_first_and_contains_caller" in stack[-1]

    def test_truncates_to_max_depth_keeping_root(self):
        import sys

        frame = sys._getframe()
        full = walk_stack(frame)
        cut = walk_stack(frame, max_depth=2)
        assert len(cut) == 2
        assert cut == full[:2]


class TestSamplingProfiler:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stack_depth=0)

    def test_sample_once_on_a_real_thread(self):
        reg = WorkerRegistry()
        stop = threading.Event()

        def spin():
            h = reg.register("spin-w0", role="pool")
            with h.task("busy", 1):
                stop.wait(5.0)

        t = threading.Thread(target=spin, daemon=True)
        t.start()
        try:
            for _ in range(100):
                if reg.busy_workers():
                    break
                time.sleep(0.005)
            prof = SamplingProfiler(interval=0.001, registry=reg)
            taken = prof.sample_once()
            assert taken == 1
            p = prof.profile()
            assert p.total_samples == 1
            assert p.by_task() == {"busy": 1}
            assert p.by_worker() == {"spin-w0": 1}
            ((state, task, stack),) = p.stacks()
            assert state == "running" and task == "busy"
            assert any("wait" in f for f in stack)
            assert prof.overhead()["passes"] == 1
            assert prof.overhead()["seconds"] > 0
        finally:
            stop.set()
            t.join()

    def test_include_idle_false_skips_parked_workers(self):
        reg = WorkerRegistry()
        done = threading.Event()
        parked = threading.Event()

        def park():
            reg.register("idle-w0", role="pool")
            parked.set()
            done.wait(5.0)

        t = threading.Thread(target=park, daemon=True)
        t.start()
        try:
            assert parked.wait(5.0)
            prof = SamplingProfiler(registry=reg, include_idle=False)
            assert prof.sample_once() == 0
            prof_all = SamplingProfiler(registry=reg, include_idle=True)
            assert prof_all.sample_once() == 1
            assert prof_all.profile().by_state() == {"idle": 1}
        finally:
            done.set()
            t.join()

    def test_background_loop_collects_and_stops(self):
        reg = WorkerRegistry()
        stop = threading.Event()

        def spin():
            h = reg.register("loop-w0", role="pool")
            with h.task("churn"):
                stop.wait(5.0)

        t = threading.Thread(target=spin, daemon=True)
        t.start()
        try:
            with SamplingProfiler(interval=0.002, registry=reg) as prof:
                time.sleep(0.08)
            assert prof.profile().total_samples > 0
            n = prof.profile().total_samples
            time.sleep(0.02)  # stopped: no more samples arrive
            assert prof.profile().total_samples == n
            prof.stop()  # idempotent
        finally:
            stop.set()
            t.join()

    def test_double_start_raises(self):
        prof = SamplingProfiler(registry=WorkerRegistry())
        prof.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                prof.start()
        finally:
            prof.stop()


class TestAmbientProfiler:
    def test_use_profiler_installs_and_restores(self):
        assert current_profiler() is None
        prof = SamplingProfiler(registry=WorkerRegistry())
        with use_profiler(prof) as installed:
            assert installed is prof
            assert current_profiler() is prof
        assert current_profiler() is None

    def test_harness_attaches_profile_to_result(self):
        from repro.bench.harness import Experiment, ExperimentResult

        exp = Experiment(
            exp_id="t", title="t", paper_ref="-", run=lambda: ExperimentResult("t", tables=())
        )
        prof = SamplingProfiler(registry=WorkerRegistry())
        prof.profile().add(_s())
        with use_profiler(prof):
            result = exp()
        assert result.profile is prof.profile()
        assert exp().profile is None  # without the ambient profiler
