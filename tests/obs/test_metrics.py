"""Metrics registry: instruments, snapshots, and the disabled twin."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import Metrics, NullMetrics
from repro.util.stats import Summary


class TestInstruments:
    def test_counter_accumulates(self):
        m = Metrics()
        m.count("pool.steals")
        m.count("pool.steals", 4)
        assert m.counter("pool.steals").value == 5

    def test_counter_rejects_decrease(self):
        m = Metrics()
        with pytest.raises(ValueError, match="decrease"):
            m.count("c", -1)

    def test_gauge_keeps_last_value(self):
        m = Metrics()
        m.set_gauge("sim.makespan", 2.0)
        m.set_gauge("sim.makespan", 1.5)
        assert m.gauge("sim.makespan").value == 1.5

    def test_histogram_summary_uses_util_stats(self):
        m = Metrics()
        for v in (1.0, 2.0, 3.0, 4.0):
            m.observe("lat", v)
        s = m.histogram("lat").summary()
        assert isinstance(s, Summary)
        assert s.mean == pytest.approx(2.5)

    def test_empty_histogram_summary_raises(self):
        m = Metrics()
        h = m.histogram("empty")
        with pytest.raises(ValueError):
            h.summary()

    def test_create_on_first_use_is_idempotent(self):
        m = Metrics()
        assert m.counter("x") is m.counter("x")
        assert m.names() == ["x"]


class TestSnapshot:
    def test_snapshot_mixes_instrument_kinds(self):
        m = Metrics()
        m.count("c", 3)
        m.set_gauge("g", 0.5)
        m.observe("h", 1.0)
        snap = m.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 0.5
        assert snap["h.n"] == 1
        assert snap["h.mean"] == 1.0
        assert snap["h.p50"] == snap["h.p99"] == snap["h.max"] == 1.0

    def test_empty_histogram_snapshots_as_count_zero(self):
        m = Metrics()
        m.histogram("h")
        assert m.snapshot() == {"h.n": 0}

    def test_snapshot_is_sorted_and_flat(self):
        """Baselines diff cleanly: keys sorted, every value a plain number."""
        m = Metrics()
        m.observe("z.lat", 2.0)
        m.count("a.count")
        m.set_gauge("m.gauge", 3.0)
        for v in (1.0, 2.0, 3.0):
            m.observe("z.lat", v)
        snap = m.snapshot()
        assert list(snap) == sorted(snap)
        assert all(isinstance(v, (int, float)) for v in snap.values())
        assert snap["z.lat.p90"] >= snap["z.lat.p50"]

    def test_render_lists_every_instrument(self):
        m = Metrics()
        m.count("a.count", 2)
        m.set_gauge("b.gauge", 7)
        text = m.render()
        assert "a.count" in text and "count=2" in text
        assert "b.gauge" in text and "gauge=7" in text

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=30))
    def test_snapshot_counts_match_events(self, names):
        m = Metrics()
        for name in names:
            m.count(name)
        snap = m.snapshot()
        for name in set(names):
            assert snap[name] == names.count(name)


class TestHistogramReservoir:
    def test_default_is_unbounded_and_exact(self):
        h = Metrics().histogram("lat")
        for i in range(100):
            h.observe(float(i))
        assert h.max_samples is None
        assert h.count == 100
        assert len(h.samples()) == 100

    def test_reservoir_bounds_memory_but_counts_everything(self):
        h = Metrics().histogram("lat", max_samples=16)
        for i in range(10_000):
            h.observe(float(i))
        assert len(h.samples()) == 16
        assert h.count == 10_000
        assert h.flat_summary()["lat.n"] == 10_000.0

    def test_reservoir_is_seeded_and_reproducible(self):
        def run():
            from repro.obs.metrics import Histogram

            h = Histogram("lat", max_samples=8)
            for i in range(500):
                h.observe(float(i))
            return h.samples()

        assert run() == run()

    def test_reservoir_stays_exact_below_the_cap(self):
        h = Metrics().histogram("lat", max_samples=100)
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.samples() == [1.0, 2.0, 3.0]
        assert h.flat_summary()["lat.mean"] == pytest.approx(2.0)

    def test_reservoir_samples_span_the_stream(self):
        """The retained set is a uniform sample, not just the head: after
        a long stream, late values must appear."""
        h = Metrics().histogram("lat", max_samples=32)
        for i in range(5_000):
            h.observe(float(i))
        assert max(h.samples()) > 1_000

    def test_max_samples_must_be_positive(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ValueError, match="max_samples"):
            Histogram("h", max_samples=0)

    def test_max_samples_applies_only_at_creation(self):
        m = Metrics()
        h = m.histogram("lat", max_samples=4)
        assert m.histogram("lat") is h
        assert m.histogram("lat", max_samples=99) is h
        assert h.max_samples == 4


class TestNullMetrics:
    def test_records_nothing(self):
        m = NullMetrics()
        m.count("c")
        m.set_gauge("g", 1.0)
        m.observe("h", 1.0)
        assert not m.enabled
        assert m.names() == []
        assert m.snapshot() == {}
        assert m.render() == ""

    def test_direct_instrument_access_is_inert(self):
        """The hot-path contract: code may cache ``metrics.counter(...)``
        and drive it directly; on the null twin that must record nothing
        and register nothing."""
        m = NullMetrics()
        c = m.counter("pool.steals")
        c.inc()
        c.inc(10)
        g = m.gauge("depth")
        g.set(4.0)
        h = m.histogram("lat", max_samples=8)
        h.observe(1.0)
        assert c.value == 0
        assert g.value == 0.0
        assert h.count == 0 and h.samples() == []
        assert m.names() == []
        assert m.snapshot() == {}

    def test_instruments_are_shared_singletons(self):
        m = NullMetrics()
        assert m.counter("a") is m.counter("b")
        assert m.gauge("a") is m.gauge("b")
        assert m.histogram("a") is NullMetrics().histogram("z")

    def test_null_instruments_still_render_and_summarise(self):
        m = NullMetrics()
        h = m.histogram("lat")
        h.observe(1.0)
        assert h.flat_summary() == {"null.n": 0.0}
        with pytest.raises(ValueError):
            h.summary()
