"""Metrics export: golden Prometheus exposition, HTTP server, JSONL writer."""

import io
import json
import urllib.request

import pytest

from repro.obs.live.export import MetricsServer, SnapshotWriter, _sanitize, prometheus_text
from repro.obs.live.registry import WorkerRegistry
from repro.obs.live.sampler import Sample, SamplingProfiler
from repro.obs.metrics import Metrics

#: Exact exposition for the fixture state below — the golden the format
#: is pinned by.  Regenerate deliberately if the exporter changes.
GOLDEN = """\
# TYPE repro_lat summary
repro_lat{quantile="0.5"} 2.5
repro_lat{quantile="0.9"} 3.7
repro_lat{quantile="0.99"} 3.9699999999999998
repro_lat_count 4
repro_lat_sum 10
# TYPE repro_live_busy_workers gauge
repro_live_busy_workers 0
# TYPE repro_live_inflight_tasks gauge
repro_live_inflight_tasks 0
# TYPE repro_live_workers gauge
repro_live_workers 0
# TYPE repro_live_workers_blocked gauge
repro_live_workers_blocked 0
# TYPE repro_live_workers_idle gauge
repro_live_workers_idle 0
# TYPE repro_live_workers_running gauge
repro_live_workers_running 0
# TYPE repro_pool_steals counter
repro_pool_steals 3
# TYPE repro_sim_makespan gauge
repro_sim_makespan 1.5
"""


def _metrics():
    m = Metrics()
    m.count("pool.steals", 3)
    m.set_gauge("sim.makespan", 1.5)
    for v in (1.0, 2.0, 3.0, 4.0):
        m.observe("lat", v)
    return m


class TestSanitize:
    def test_dots_become_underscores_with_prefix(self):
        assert _sanitize("pool.steals") == "repro_pool_steals"

    def test_illegal_chars_flattened(self):
        assert _sanitize("p-0.queue depth") == "repro_p_0_queue_depth"

    def test_leading_digit_gets_underscore(self):
        assert _sanitize("0abc") == "repro__0abc"


class TestPrometheusText:
    def test_golden_exposition(self):
        assert prometheus_text(_metrics(), WorkerRegistry()) == GOLDEN

    def test_live_gauges_reflect_registry(self):
        reg = WorkerRegistry()
        h = reg.register("w0", role="pool", ident=12345)
        h.begin_task("crunch", 7)
        reg.register_gauge("p.queue_depth", lambda: 3)
        text = prometheus_text(None, reg)
        assert "repro_live_workers 1" in text
        assert "repro_live_busy_workers 1" in text
        assert "repro_live_workers_running 1" in text
        assert "repro_live_p_queue_depth 3" in text
        assert "repro_live_inflight_tasks 4" in text

    def test_profiler_section(self):
        prof = SamplingProfiler(registry=WorkerRegistry())
        prof.profile().add(
            Sample(worker="w0", role="pool", state="running", task="t", stack=("main",))
        )
        text = prometheus_text(None, WorkerRegistry(), profiler=prof)
        assert "repro_live_sampler_samples 1" in text
        assert "repro_live_sampler_passes 0" in text
        assert "repro_live_sampler_overhead_seconds 0" in text

    def test_empty_histogram_exports_zero_count(self):
        m = Metrics()
        m.histogram("empty")
        text = prometheus_text(m, WorkerRegistry())
        assert "repro_empty_count 0" in text
        assert "repro_empty_sum 0" in text
        assert 'repro_empty{quantile' not in text

    def test_every_line_is_comment_or_sample(self):
        """Loose validity check mirroring a Prometheus parser's view."""
        for line in prometheus_text(_metrics(), WorkerRegistry()).strip().splitlines():
            if line.startswith("# TYPE "):
                parts = line.split()
                assert len(parts) == 4 and parts[3] in ("counter", "gauge", "summary")
            else:
                name, value = line.rsplit(" ", 1)
                float(value)  # must parse
                assert name.startswith("repro_")


class TestMetricsServer:
    def test_serves_metrics_and_healthz(self):
        reg = WorkerRegistry()
        with MetricsServer(metrics=_metrics(), registry=reg) as server:
            assert server.port != 0  # ephemeral port was bound
            with urllib.request.urlopen(server.url, timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain; version=0.0.4")
                body = resp.read().decode("utf-8")
            assert body == GOLDEN
            health = f"http://127.0.0.1:{server.port}/healthz"
            with urllib.request.urlopen(health, timeout=10) as resp:
                assert resp.read() == b"ok\n"

    def test_unknown_path_is_404(self):
        with MetricsServer(metrics=Metrics()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"http://127.0.0.1:{server.port}/nope", timeout=10)
            assert err.value.code == 404

    def test_stop_is_idempotent_and_double_start_raises(self):
        server = MetricsServer(metrics=Metrics()).start()
        with pytest.raises(RuntimeError, match="already started"):
            server.start()
        server.stop()
        server.stop()


class TestSnapshotWriter:
    def test_write_once_emits_sorted_json(self):
        reg = WorkerRegistry()
        reg.register_gauge("p.queue_depth", lambda: 2)
        fh = io.StringIO()
        w = SnapshotWriter(fh, metrics=_metrics(), registry=reg)
        w.write_once()
        doc = json.loads(fh.getvalue())
        assert doc["live"]["workers"] == 0
        assert doc["live"]["p.queue_depth"] == 2.0
        assert doc["metrics"]["pool.steals"] == 3
        assert w.lines_written == 1

    def test_stop_writes_final_snapshot(self):
        fh = io.StringIO()
        with SnapshotWriter(fh, registry=WorkerRegistry(), interval=60.0):
            pass  # interval never fires; stop() still leaves one line
        lines = [json.loads(line) for line in fh.getvalue().splitlines()]
        assert len(lines) == 1
        assert "live" in lines[0] and "metrics" not in lines[0]

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            SnapshotWriter(io.StringIO(), interval=0)
