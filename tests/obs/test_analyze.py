"""Trace analytics: work/span reconstruction, health stats, model fits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import create
from repro.obs import TraceEvent, TraceRecorder, analyze_trace, fit_speedup_models
from repro.ptask import ParallelTaskRuntime
from repro.util.stats import amdahl_speedup

_EPS = 1e-9


def _span(task_id, start, end, worker=0, group=0, name="t", parent=None, deps=()):
    attrs = {}
    if parent is not None:
        attrs["parent"] = parent
    if deps:
        attrs["dep_tasks"] = list(deps)
    return TraceEvent(
        kind="task", name=name, phase="X", ts=start, dur=end - start,
        task_id=task_id, worker=worker, group=group, attrs=attrs,
    )


class TestReconstruction:
    def test_single_task(self):
        a = analyze_trace([_span(1, 0.0, 2.0)])
        (g,) = a.groups
        assert g.work == pytest.approx(2.0)
        assert g.span == pytest.approx(2.0)
        assert g.parallelism == pytest.approx(1.0)
        assert g.makespan == pytest.approx(2.0)

    def test_two_independent_tasks_on_two_workers(self):
        a = analyze_trace([_span(1, 0.0, 1.0, worker=0), _span(2, 0.0, 1.0, worker=1)])
        (g,) = a.groups
        assert g.work == pytest.approx(2.0)
        assert g.span == pytest.approx(1.0)  # no edges: span = longest task
        assert g.parallelism == pytest.approx(2.0)
        assert g.utilization == pytest.approx(1.0)

    def test_dependence_chain_extends_span(self):
        """Diamond: 1 -> {2, 3} -> 4; span follows the heavy branch."""
        events = [
            _span(1, 0.0, 1.0, worker=0),
            _span(2, 1.0, 3.0, worker=0, parent=1),
            _span(3, 1.0, 4.0, worker=1, parent=1),
            _span(4, 4.0, 5.0, worker=0, deps=(2, 3)),
        ]
        a = analyze_trace(events)
        (g,) = a.groups
        assert g.work == pytest.approx(7.0)
        assert g.span == pytest.approx(1.0 + 3.0 + 1.0)
        assert g.tasks == 4

    def test_nested_helping_span_not_double_counted(self):
        """A worker that helps another task mid-join nests that task's
        span inside its own; work charges each interval exactly once."""
        events = [
            _span(1, 0.0, 10.0, worker=0),
            _span(2, 2.0, 4.0, worker=0),  # helped task, nested in task 1
        ]
        a = analyze_trace(events)
        (g,) = a.groups
        assert g.work == pytest.approx(10.0)  # 8 exclusive + 2 nested
        assert g.utilization == pytest.approx(1.0)

    def test_be_pairs_close_and_unclosed_counted(self):
        rec = TraceRecorder()
        with rec.span("task", "done", task_id=1):
            pass
        rec.event("task", "hung", phase="B", task_id=2)
        a = analyze_trace(rec.events())
        assert a.unclosed_spans == 1
        (g,) = a.groups
        assert g.tasks == 1

    def test_edge_into_unknown_task_ignored(self):
        a = analyze_trace([_span(1, 0.0, 1.0, deps=(999,))])
        assert a.groups[0].span == pytest.approx(1.0)

    def test_cycle_degrades_instead_of_raising(self):
        events = [
            _span(1, 0.0, 1.0, deps=(2,)),
            _span(2, 1.0, 3.0, deps=(1,)),
        ]
        a = analyze_trace(events)
        assert a.groups[0].span >= 2.0 - _EPS  # node-local lower bound

    def test_groups_stay_separate(self):
        events = [_span(1, 0.0, 1.0, group=1), _span(1, 0.0, 2.0, group=2)]
        a = analyze_trace(events)
        assert [g.group for g in a.groups] == [1, 2]
        assert a.groups[0].work == pytest.approx(1.0)
        assert a.groups[1].work == pytest.approx(2.0)


class TestHealthStats:
    def test_steals_and_helps_counted(self):
        events = [
            TraceEvent(kind="steal", name="s", worker=1),
            TraceEvent(kind="steal", name="s", worker=2),
            TraceEvent(kind="help", name="h", worker=1),
        ]
        a = analyze_trace(events)
        assert a.steals == 2 and a.helps == 1

    def test_steal_success_rate_from_metrics(self):
        a = analyze_trace(
            [TraceEvent(kind="steal", name="s")],
            metrics={"pool.steal_attempts": 4},
        )
        assert a.steal_attempts == 4
        assert a.steal_success_rate == pytest.approx(0.25)
        assert analyze_trace([]).steal_success_rate is None

    def test_lock_wait_measured_from_acquire_instant(self):
        events = [
            TraceEvent(kind="critical", name="lk", phase="B", ts=1.0, task_id=5,
                       attrs={"lock": "lk"}),
            TraceEvent(kind="critical", name="lk:acquired", phase="i", ts=1.25, task_id=5),
            TraceEvent(kind="critical", name="lk", phase="E", ts=2.0, task_id=5),
        ]
        a = analyze_trace(events)
        (c,) = a.locks
        assert c.name == "lk"
        assert c.acquisitions == 1
        assert c.total_wait == pytest.approx(0.25)
        assert c.mean_wait == pytest.approx(0.25)

    def test_barrier_wait_arrive_to_pass(self):
        events = [
            TraceEvent(kind="barrier", name="b:arrive", phase="i", ts=0.0, task_id=1),
            TraceEvent(kind="barrier", name="b:arrive", phase="i", ts=0.4, task_id=2),
            TraceEvent(kind="barrier", name="b:pass", phase="i", ts=0.5, task_id=1),
            TraceEvent(kind="barrier", name="b:pass", phase="i", ts=0.5, task_id=2),
        ]
        a = analyze_trace(events)
        (b,) = a.barriers
        assert b.passes == 2
        assert b.total_wait == pytest.approx(0.6)
        assert b.max_wait == pytest.approx(0.5)

    def test_edt_latency_percentiles(self):
        events = [
            TraceEvent(kind="edt", name="e", phase="B", ts=float(i),
                       attrs={"queue_latency": i / 100})
            for i in range(1, 101)
        ]
        a = analyze_trace(events)
        assert a.edt_latency.n == 100
        assert a.edt_latency.p50 <= a.edt_latency.p90 <= a.edt_latency.p99 <= a.edt_latency.maximum
        assert a.edt_latency.maximum == pytest.approx(1.0)


class TestSpeedupFit:
    def test_recovers_amdahl_fraction(self):
        cores = [1, 2, 4, 8, 16, 32]
        times = [1.0 / amdahl_speedup(0.2, p) for p in cores]
        fit = fit_speedup_models(cores, times)
        assert fit.amdahl_fraction == pytest.approx(0.2, abs=1e-3)
        assert fit.preferred == "amdahl"
        assert fit.serial_fraction is not None
        assert fit.serial_fraction.mean == pytest.approx(0.2, abs=1e-6)

    def test_linear_scaling_fits_zero_fraction(self):
        fit = fit_speedup_models([1, 2, 4], [1.0, 0.5, 0.25])
        assert fit.amdahl_fraction == pytest.approx(0.0, abs=1e-9)
        assert fit.amdahl_rmse == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize(
        "cores,times,msg",
        [
            ([1, 2], [1.0], "disagree"),
            ([2, 4], [1.0, 0.5], "1-core"),
            ([1, 1], [1.0, 1.0], "duplicate"),
            ([1, 2], [1.0, -0.5], "positive"),
            ([1], [1.0], "at least two"),
        ],
    )
    def test_rejects_malformed_sweeps(self, cores, times, msg):
        with pytest.raises(ValueError, match=msg):
            fit_speedup_models(cores, times)

    def test_fit_from_sim_core_sweep(self):
        """A traced simulated core sweep carries enough schedule summaries
        to fit a speedup model without any extra bookkeeping."""
        rec = TraceRecorder()
        for cores in (1, 2, 4, 8):
            ex = create("sim", cores=cores, trace=rec)
            rt = ParallelTaskRuntime(ex)
            for i in range(16):
                rt.spawn(lambda: None, cost=1.0)
            ex.schedule()
        a = analyze_trace(rec.events())
        assert a.fit is not None
        assert a.fit.cores == (1, 2, 4, 8)
        assert a.fit.speedups[0] == pytest.approx(1.0)

    def test_same_core_schedules_do_not_fit(self):
        """Policy ablations re-schedule at one core count; no sweep, no fit."""
        rec = TraceRecorder()
        ex = create("sim", cores=4, trace=rec)
        ex.submit(lambda: None, cost=1.0).result()
        ex.schedule()
        ex.schedule()
        assert analyze_trace(rec.events()).fit is None


class TestExactSimFigures:
    def test_schedule_summary_is_authoritative(self):
        rec = TraceRecorder()
        ex = create("sim", cores=4, trace=rec)
        rt = ParallelTaskRuntime(ex)
        a = rt.spawn(lambda: 1, cost=2.0)
        rt.spawn(lambda a=a: a.result(), cost=1.0, depends_on=[a])
        result = ex.schedule()
        analysis = analyze_trace(rec.events())
        g = analysis.primary
        assert g.exact
        assert g.cores == 4
        assert g.work == pytest.approx(result.total_work)
        assert g.span == pytest.approx(result.critical_path)
        assert g.makespan == pytest.approx(result.makespan)
        assert g.utilization == pytest.approx(result.utilization)

    def test_baseline_metrics_flat_sorted_numeric(self):
        rec = TraceRecorder()
        ex = create("sim", cores=2, trace=rec)
        ex.submit(lambda: None, cost=1.0).result()
        ex.schedule()
        bm = analyze_trace(rec.events(), metrics=rec.metrics.snapshot()).baseline_metrics()
        assert list(bm) == sorted(bm)
        assert all(isinstance(v, float) for v in bm.values())
        assert "primary.work" in bm and "trace.tasks" in bm


# -- property tests: the invariants hold for arbitrary timelines -------------

_workload = st.lists(
    st.tuples(
        st.integers(0, 3),                        # worker lane
        st.floats(0.001, 1.0, allow_nan=False),   # duration
        st.floats(0.0, 0.5, allow_nan=False),     # idle gap before the task
        st.integers(0, 10_000),                   # parent pick (mod earlier ids)
    ),
    min_size=1,
    max_size=30,
)


def _timeline(workload):
    """Lay generated tasks back-to-back per worker (never overlapping) and
    wire each to a random earlier task, yielding a valid span DAG."""
    cursor = {}
    events = []
    for tid, (worker, dur, gap, pick) in enumerate(workload, start=1):
        start = cursor.get(worker, 0.0) + gap
        end = start + dur
        cursor[worker] = end
        parent = (pick % (tid - 1)) + 1 if tid > 1 and pick % 2 else None
        events.append(_span(tid, start, end, worker=worker, parent=parent))
    return events


class TestInvariants:
    @given(workload=_workload)
    @settings(max_examples=120, deadline=None)
    def test_span_work_parallelism_utilization(self, workload):
        a = analyze_trace(_timeline(workload))
        (g,) = a.groups
        assert g.span <= g.work + _EPS
        assert g.parallelism >= 1.0 - _EPS
        assert 0.0 <= g.utilization <= 1.0 + _EPS
        for w in g.workers:
            assert 0.0 <= w.utilization <= 1.0 + _EPS
            assert w.busy <= g.makespan + _EPS
        assert g.work == pytest.approx(sum(d for _, d, _, _ in workload))

    @given(workload=_workload)
    @settings(max_examples=60, deadline=None)
    def test_achieved_speedup_bounded_by_worker_count(self, workload):
        """work/makespan (the *achieved* speedup, unlike T1/T∞ which is
        the DAG's inherent parallelism) cannot exceed the lane count:
        each lane contributes at most ``makespan`` seconds of work."""
        a = analyze_trace(_timeline(workload))
        (g,) = a.groups
        lanes = len({w for w, _, _, _ in workload})
        assert g.work <= lanes * g.makespan + _EPS

    @given(
        fraction=st.floats(0.0, 1.0, allow_nan=False),
        n_points=st.integers(2, 6),
    )
    @settings(max_examples=80, deadline=None)
    def test_fit_recovers_generated_fraction(self, fraction, n_points):
        cores = [2**i for i in range(n_points)]
        times = [1.0 / amdahl_speedup(fraction, p) for p in cores]
        fit = fit_speedup_models(cores, times)
        assert fit.amdahl_fraction == pytest.approx(fraction, abs=1e-3)
