"""Trace recorder: event structure, span nesting, ambient resolution."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import create
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    current_recorder,
    resolve_recorder,
    use,
)


class TestTraceEvent:
    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            TraceEvent(kind="task", name="t", phase="Z")

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="duration"):
            TraceEvent(kind="task", name="t", phase="X", dur=-1.0)

    def test_to_chrome_microseconds(self):
        e = TraceEvent(kind="task", name="t", phase="X", ts=1.5, dur=0.25, task_id=7)
        c = e.to_chrome()
        assert c["ts"] == pytest.approx(1.5e6)
        assert c["dur"] == pytest.approx(0.25e6)
        assert c["cat"] == "task"
        assert c["args"]["task"] == 7

    def test_to_chrome_lane_prefers_worker(self):
        assert TraceEvent(kind="k", name="n", worker=3, task_id=9).to_chrome()["tid"] == 3
        assert TraceEvent(kind="k", name="n", task_id=9).to_chrome()["tid"] == 9

    def test_instants_get_thread_scope(self):
        assert TraceEvent(kind="steal", name="s").to_chrome()["s"] == "t"


class TestRecorder:
    def test_event_stamps_wall_time(self):
        rec = TraceRecorder()
        rec.event("task", "a")
        rec.event("task", "b")
        a, b = rec.events()
        assert 0.0 <= a.ts <= b.ts

    def test_explicit_timestamp_wins(self):
        rec = TraceRecorder()
        rec.event("task", "a", ts=42.0)
        assert rec.events()[0].ts == 42.0

    def test_emit_span_clamps_duration(self):
        rec = TraceRecorder()
        rec.emit_span("task", "t", start=5.0, end=4.0)
        assert rec.events()[0].dur == 0.0

    def test_span_closes_on_exception(self):
        rec = TraceRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("task", "boom", task_id=1):
                raise RuntimeError("x")
        phases = [e.phase for e in rec.events()]
        assert phases == ["B", "E"]

    def test_new_group_emits_metadata(self):
        rec = TraceRecorder()
        g1 = rec.new_group("sweep cores=2")
        g2 = rec.new_group("sweep cores=4")
        assert g1 != g2 and 0 not in (g1, g2)  # group 0 is the wall clock
        metas = [e for e in rec.events() if e.phase == "M"]
        assert {m.attrs["name"] for m in metas} == {"sweep cores=2", "sweep cores=4"}

    def test_events_raises_for_write_only_sink(self, tmp_path):
        from repro.obs import JsonlSink

        rec = TraceRecorder(sink=JsonlSink(tmp_path / "t.jsonl"))
        with pytest.raises(TypeError):
            rec.events()


class TestEventCap:
    def test_cap_drops_and_counts_overflow(self):
        rec = TraceRecorder(max_events=3)
        for i in range(10):
            rec.event("task", f"t{i}")
        assert len(rec.events()) == 3
        assert rec.dropped_events == 7

    def test_metadata_exempt_from_cap(self):
        """Group labels must survive the cap — the analyzer needs them to
        name timelines even when the event budget is spent."""
        rec = TraceRecorder(max_events=1)
        rec.event("task", "fills-the-budget")
        rec.event("task", "dropped")
        g = rec.new_group("late sweep", cores=8)
        metas = [e for e in rec.events() if e.phase == "M"]
        assert [m.group for m in metas] == [g]
        assert metas[0].attrs["cores"] == 8
        assert rec.dropped_events == 1

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="max_events"):
            TraceRecorder(max_events=0)

    def test_clear_resets_events_and_accounting(self):
        rec = TraceRecorder(max_events=2)
        for i in range(5):
            rec.event("task", f"t{i}")
        rec.clear()
        assert rec.events() == []
        assert rec.dropped_events == 0
        rec.event("task", "after")  # the budget is fresh again
        assert [e.name for e in rec.events()] == ["after"]

    def test_clear_raises_for_sink_without_clear(self, tmp_path):
        from repro.obs import JsonlSink

        rec = TraceRecorder(sink=JsonlSink(tmp_path / "t.jsonl"))
        with pytest.raises(TypeError, match="clear"):
            rec.clear()

    def test_uncapped_recorder_never_drops(self):
        rec = TraceRecorder()
        for i in range(100):
            rec.event("task", f"t{i}")
        assert rec.dropped_events == 0
        assert len(rec.events()) == 100


class TestNullRecorder:
    def test_disabled_and_silent(self):
        rec = NullRecorder()
        rec.event("task", "a")
        rec.emit_span("task", "a", 0.0, 1.0)
        with rec.span("task", "a"):
            pass
        rec.count("c")
        rec.observe("h", 1.0)
        rec.set_gauge("g", 1.0)
        assert not rec.enabled
        assert rec.events() == []
        assert rec.metrics.snapshot() == {}

    def test_instrumented_run_adds_no_events(self):
        """A full pool workload against the default (null) recorder is a
        byte-for-byte no-op on the shared NULL_RECORDER."""
        before = len(NULL_RECORDER.events())
        with create("threads", cores=2) as pool:
            fs = [pool.submit(lambda i=i: i * i) for i in range(20)]
            assert [f.result() for f in fs] == [i * i for i in range(20)]
            with pool.critical("c"):
                pass
        assert pool.trace is NULL_RECORDER
        assert len(NULL_RECORDER.events()) == before
        assert NULL_RECORDER.metrics.snapshot() == {}


class TestAmbient:
    def test_default_is_null(self):
        assert current_recorder() is NULL_RECORDER
        assert resolve_recorder(None) is NULL_RECORDER

    def test_explicit_beats_ambient(self):
        mine = TraceRecorder()
        ambient = TraceRecorder()
        with use(ambient):
            assert resolve_recorder(None) is ambient
            assert resolve_recorder(mine) is mine
        assert resolve_recorder(None) is NULL_RECORDER

    def test_use_nests_and_restores(self):
        outer, inner = TraceRecorder(), TraceRecorder()
        with use(outer):
            with use(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer

    def test_ambient_is_thread_local(self):
        rec = TraceRecorder()
        seen = {}

        def peek():
            seen["other"] = current_recorder()

        with use(rec):
            t = threading.Thread(target=peek)
            t.start()
            t.join()
        assert seen["other"] is NULL_RECORDER

    def test_executor_constructed_under_use_picks_up_recorder(self):
        rec = TraceRecorder()
        with use(rec):
            ex = create("sim", cores=4)
        assert ex.trace is rec


def _check_well_nested(events):
    """Every task's B/E events must balance like parentheses, and every
    start must have a matching end (the obs suite's core invariant)."""
    stacks: dict[int, list[str]] = {}
    for e in events:
        if e.phase == "B":
            stacks.setdefault(e.task_id, []).append(e.name)
        elif e.phase == "E":
            stack = stacks.get(e.task_id)
            assert stack, f"E without B for task {e.task_id}: {e.name}"
            assert stack.pop() == e.name, f"interleaved spans for task {e.task_id}"
    leftovers = {tid: s for tid, s in stacks.items() if s}
    assert not leftovers, f"unclosed spans: {leftovers}"


# A little recursive span-tree language: each node is (name, children).
_tree = st.recursive(
    st.tuples(st.sampled_from("abcd"), st.just(())),
    lambda kids: st.tuples(st.sampled_from("abcd"), st.lists(kids, max_size=3)),
    max_leaves=12,
)


class TestWellNesting:
    @given(trees=st.lists(_tree, min_size=1, max_size=4), fail_at=st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_span_trees_are_well_nested(self, trees, fail_at):
        """Arbitrary span nesting — including a body that raises partway
        through — always leaves a balanced, well-nested event stream."""
        rec = TraceRecorder()
        counter = [0]

        def walk(node, task_id):
            name, children = node
            with rec.span("task", name, task_id=task_id):
                counter[0] += 1
                if counter[0] == fail_at:
                    raise RuntimeError("injected")
                for child in children:
                    walk(child, task_id)

        for tid, tree in enumerate(trees):
            try:
                walk(tree, tid)
            except RuntimeError:
                pass
        _check_well_nested(rec.events())

    @given(
        n_tasks=st.integers(1, 24),
        workers=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_pool_task_spans_well_nested(self, n_tasks, workers, seed):
        """Real pool execution: every submitted task gets exactly one B
        and one matching E, whatever the stealing interleaving."""
        rec = TraceRecorder()
        with create("threads", cores=workers, steal_seed=seed, trace=rec) as pool:
            fs = [pool.submit(lambda i=i: i, name=f"t{i}") for i in range(n_tasks)]
            assert [f.result() for f in fs] == list(range(n_tasks))
        events = [e for e in rec.events() if e.kind == "task"]
        _check_well_nested(events)
        assert sum(1 for e in events if e.phase == "B") == n_tasks
