"""TTY dashboard frames pinned with an injected clock."""

import io
import itertools

from repro.obs.live.dashboard import Dashboard
from repro.obs.live.registry import WorkerRegistry
from repro.obs.metrics import Metrics


def _ticking_clock(step=1.0):
    counter = itertools.count()
    return lambda: next(counter) * step


class TestFrame:
    def test_header_counts_workers_and_throughput(self):
        reg = WorkerRegistry()
        h = reg.register("w0", role="pool", ident=1)
        dash = Dashboard(registry=reg, clock=_ticking_clock())
        h.begin_task("sort", 1)
        frame = dash.frame()
        assert "1 workers (1 running, 0 idle, 0 blocked)" in frame
        assert "w0" in frame and "sort" in frame

    def test_throughput_from_tasks_done_delta(self):
        reg = WorkerRegistry()
        h = reg.register("w0", role="pool", ident=1)
        dash = Dashboard(registry=reg, clock=_ticking_clock())
        dash.frame()
        for _ in range(3):
            h.end_task(h.begin_task("t"))
        frame = dash.frame()  # 3 tasks in 1 injected second
        assert "3 tasks done · 3.0 tasks/s" in frame

    def test_gauges_and_inflight_line(self):
        reg = WorkerRegistry()
        reg.register_gauge("p.queue_depth", lambda: 4)
        frame = Dashboard(registry=reg, clock=_ticking_clock()).frame()
        assert "queues: p.queue_depth=4" in frame
        assert "in-flight tasks: 4" in frame

    def test_event_rates_only_growing_counters(self):
        reg = WorkerRegistry()
        m = Metrics()
        m.count("pool.tasks", 5)
        m.set_gauge("static", 7.0)
        m.observe("lat", 1.0)  # summary fields must never appear as rates
        dash = Dashboard(registry=reg, metrics=m, clock=_ticking_clock())
        assert "event rates" not in dash.frame()  # first frame: no deltas yet
        m.count("pool.tasks", 10)
        frame = dash.frame()
        assert "event rates" in frame
        assert "pool.tasks" in frame
        assert "static" not in frame
        assert "lat.mean" not in frame and "lat.p50" not in frame

    def test_empty_registry_still_renders_header(self):
        frame = Dashboard(registry=WorkerRegistry(), clock=_ticking_clock()).frame()
        assert frame.startswith("live · ")
        assert "0 workers" in frame


class TestRun:
    def test_draws_final_frame_after_done(self):
        reg = WorkerRegistry()
        out = io.StringIO()
        dash = Dashboard(registry=reg, clock=_ticking_clock())
        drawn = dash.run(out, done=lambda: True, interval=0.0)
        assert drawn == 1
        assert "live · " in out.getvalue()
        assert "\x1b[" not in out.getvalue()  # first frame never clears

    def test_max_frames_caps_the_loop(self):
        out = io.StringIO()
        dash = Dashboard(registry=WorkerRegistry(), clock=_ticking_clock())
        drawn = dash.run(out, done=lambda: False, interval=0.0, max_frames=3)
        assert drawn == 3
        assert out.getvalue().count("\x1b[H\x1b[2J") == 2  # cleared before 2nd/3rd

    def test_clear_false_never_emits_ansi(self):
        out = io.StringIO()
        dash = Dashboard(registry=WorkerRegistry(), clock=_ticking_clock())
        dash.run(out, done=lambda: False, interval=0.0, max_frames=2, clear=False)
        assert "\x1b[" not in out.getvalue()
