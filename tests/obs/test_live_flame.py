"""Flamegraph rendering pinned on injected synthetic samples."""

from repro.obs.live.flame import (
    build_tree,
    render_flame_html,
    render_flame_svg,
    render_hotspots_text,
)
from repro.obs.live.sampler import Sample, fold


def _s(state="running", task="sort", stack=("main", "sort"), worker="w0"):
    return Sample(worker=worker, role="pool", state=state, task=task, stack=tuple(stack))


def _profile():
    return fold(
        [
            _s(stack=("main", "sort", "partition")),
            _s(stack=("main", "sort", "partition")),
            _s(stack=("main", "sort")),
            _s(state="idle", task="-", stack=("main", "wait")),
        ]
    )


class TestBuildTree:
    def test_values_sum_child_into_parent(self):
        root = build_tree(_profile())
        assert root.name == "all"
        assert root.value == 4
        running = root.child("state:running")
        assert running.value == 3
        sort_task = running.child("task:sort")
        assert sort_task.child("main").child("sort").value == 3
        assert sort_task.child("main").child("sort").self_value == 1
        assert sort_task.child("main").child("sort").child("partition").self_value == 2

    def test_invariant_value_equals_self_plus_children(self):
        def check(node):
            if node.children:
                assert node.value == node.self_value + sum(c.value for c in node.children.values())
            for c in node.children.values():
                check(c)

        check(build_tree(_profile()))

    def test_without_attribution_roots_are_code_frames(self):
        root = build_tree(_profile(), attribution=False)
        assert list(root.children) == ["main"]

    def test_depth(self):
        root = build_tree(_profile())
        # state -> task -> main -> sort -> partition
        assert root.depth() == 5


class TestSvg:
    def test_deterministic_bytes(self):
        a = render_flame_svg(build_tree(_profile()))
        b = render_flame_svg(build_tree(_profile()))
        assert a == b

    def test_contains_frames_and_tooltips(self):
        svg = render_flame_svg(build_tree(_profile()))
        assert "<svg" in svg and "</svg>" in svg
        assert "state:running" in svg
        assert "task:sort" in svg
        assert "3 samples (75.0%)" in svg

    def test_empty_profile_renders_note_not_svg(self):
        out = render_flame_svg(build_tree(fold([])))
        assert "no samples" in out and "<svg" not in out


class TestHtml:
    def test_self_contained_page(self):
        html = render_flame_html(_profile(), title="proj6 — flamegraph")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "proj6 — flamegraph" in html
        assert "4</div><div class=\"k\">samples" in html
        assert "Hotspots — task sort" in html
        assert "<script" not in html  # inline CSS + SVG only

    def test_deterministic_bytes(self):
        assert render_flame_html(_profile()) == render_flame_html(_profile())


class TestText:
    def test_terminal_summary(self):
        text = render_hotspots_text(_profile())
        assert "profile: 4 samples" in text
        assert "states: idle 1, running 3" in text
        assert "samples by task" in text
        assert "hotspots: sort" in text
        assert "partition" in text
