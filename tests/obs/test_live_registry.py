"""Worker registry: live state transitions, pull gauges, aggregates."""

import threading

from repro.obs.live.registry import (
    BLOCKED,
    IDLE,
    RUNNING,
    WorkerRegistry,
    attribute_task,
    current_handle,
)


class TestStateTransitions:
    def test_starts_idle(self):
        reg = WorkerRegistry()
        h = reg.register("w0", role="pool", ident=1)
        assert h.state == IDLE
        assert h.task_name == ""
        assert h.tasks_done == 0

    def test_idle_running_idle(self):
        reg = WorkerRegistry()
        h = reg.register("w0", role="pool", ident=1)
        prev = h.begin_task("quicksort", 17)
        assert h.state == RUNNING
        assert h.task_name == "quicksort"
        assert h.task_id == 17
        h.end_task(prev)
        assert h.state == IDLE
        assert h.task_name == ""
        assert h.task_id == 0
        assert h.tasks_done == 1

    def test_task_scope_is_equivalent(self):
        reg = WorkerRegistry()
        h = reg.register("w0", ident=1)
        with h.task("merge", 3):
            assert h.state == RUNNING and h.task_name == "merge"
        assert h.state == IDLE and h.tasks_done == 1

    def test_nested_begin_refines_name_and_restores(self):
        """An inner attribution (ptask wrapper) refines the name; zero
        task_id inherits the executor-set id; unwinding restores outer."""
        reg = WorkerRegistry()
        h = reg.register("w0", ident=1)
        outer = h.begin_task("task7", 7)
        inner = h.begin_task("quicksort")  # task_id=0 inherits 7
        assert h.task_name == "quicksort" and h.task_id == 7
        h.end_task(inner)
        assert h.task_name == "task7" and h.task_id == 7
        assert h.state == RUNNING
        h.end_task(outer)
        assert h.state == IDLE

    def test_blocked_detection(self):
        reg = WorkerRegistry()
        h = reg.register("w0", ident=1)
        prev = h.begin_task("join-heavy", 1)
        with h.blocked("lock:tree"):
            assert h.state == BLOCKED
            assert h.detail == "lock:tree"
        # back to running the same task after the wait
        assert h.state == RUNNING
        assert h.task_name == "join-heavy"
        h.end_task(prev)
        assert h.state == IDLE

    def test_blocked_while_idle_restores_idle(self):
        reg = WorkerRegistry()
        h = reg.register("w0", ident=1)
        with h.blocked("barrier:b"):
            assert h.state == BLOCKED
        assert h.state == IDLE

    def test_age_uses_injected_now(self):
        reg = WorkerRegistry()
        h = reg.register("w0", ident=1)
        h.since = 10.0
        assert h.age(now=12.5) == 2.5


class TestRegistry:
    def test_register_unregister_roundtrip(self):
        reg = WorkerRegistry()
        a = reg.register("a", ident=1)
        b = reg.register("b", ident=2)
        assert [h.name for h in reg.workers()] == ["a", "b"]
        assert len(reg) == 2
        reg.unregister(a)
        assert [h.name for h in reg.workers()] == ["b"]
        reg.unregister(a)  # idempotent
        assert len(reg) == 1
        assert reg.by_ident() == {2: b}

    def test_own_thread_registration_sets_current_handle(self):
        reg = WorkerRegistry()
        h = reg.register("driver", role="driver")
        try:
            assert current_handle() is h
        finally:
            reg.unregister(h)
        assert current_handle() is None

    def test_state_counts_always_has_three_keys(self):
        reg = WorkerRegistry()
        assert reg.state_counts() == {"idle": 0, "running": 0, "blocked": 0}
        h = reg.register("w0", ident=1)
        h.begin_task("t")
        assert reg.state_counts() == {"idle": 0, "running": 1, "blocked": 0}
        assert reg.busy_workers() == 1

    def test_registration_visible_from_other_thread(self):
        reg = WorkerRegistry()
        seen = []

        def worker():
            h = reg.register("t-w0", role="pool")
            seen.append(h)
            h.begin_task("spin")

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert [h.name for h in reg.workers()] == ["t-w0"]
        assert reg.workers()[0].state == RUNNING
        assert reg.workers()[0].ident == seen[0].ident


class TestGauges:
    def test_pull_gauge_reads_live_value(self):
        reg = WorkerRegistry()
        depth = [5]
        g = reg.register_gauge("p.queue_depth", lambda: depth[0])
        assert reg.gauges() == {"p.queue_depth": 5.0}
        depth[0] = 2
        assert reg.gauges() == {"p.queue_depth": 2.0}
        g.dispose()
        g.dispose()  # idempotent
        assert reg.gauges() == {}

    def test_same_named_gauges_sum(self):
        reg = WorkerRegistry()
        reg.register_gauge("pool.queue_depth", lambda: 2)
        reg.register_gauge("pool.queue_depth", lambda: 3)
        assert reg.gauges() == {"pool.queue_depth": 5.0}

    def test_raising_gauge_reads_zero(self):
        reg = WorkerRegistry()
        reg.register_gauge("broken", lambda: 1 / 0)
        reg.register_gauge("fine", lambda: 4)
        assert reg.gauges() == {"broken": 0.0, "fine": 4.0}

    def test_inflight_is_queue_depth_plus_busy(self):
        reg = WorkerRegistry()
        reg.register_gauge("p.queue_depth", lambda: 3)
        reg.register_gauge("p.other", lambda: 99)  # not a queue depth
        h = reg.register("w0", ident=1)
        h.begin_task("t")
        assert reg.inflight_tasks() == 4.0


class TestAttributeTask:
    def test_noop_on_unregistered_thread(self):
        assert current_handle() is None
        with attribute_task("anything"):
            pass  # must not raise

    def test_attributes_on_registered_thread(self):
        reg = WorkerRegistry()
        h = reg.register("driver", role="driver")
        try:
            with attribute_task("fib", 9):
                assert h.state == RUNNING
                assert h.task_name == "fib" and h.task_id == 9
            assert h.state == IDLE and h.tasks_done == 1
        finally:
            reg.unregister(h)
