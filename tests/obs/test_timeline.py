"""Cross-run timelines: change-point detection and both renderers."""

import pytest

from repro.obs.store import RunRecord
from repro.obs.timeline import (
    build_timeline,
    detect_changepoints,
    render_timeline_html,
    render_timeline_text,
)


def series_records(metric, values, kind="serve"):
    return [
        RunRecord(
            exp_id="exp",
            kind=kind,
            metrics={metric: v},
            timestamp=float(i),
            revision=f"r{i}",
        )
        for i, v in enumerate(values)
    ]


class TestChangepoints:
    def test_higher_better_flags_the_collapse_run(self):
        # the regression fixture the issue pins: a throughput trajectory
        # that collapses at index 3 must flag exactly run 3
        records = series_records("serve.throughput_rps", [100.0, 102.0, 98.0, 40.0, 41.0])
        (series,) = build_timeline(records)
        assert series.direction == "higher"
        assert [cp.index for cp in series.changepoints] == [3]
        cp = series.changepoints[0]
        assert cp.baseline == 100.0  # median of the pre-collapse segment
        assert cp.value == 40.0
        assert cp.rel_change == pytest.approx(-0.6)

    def test_flag_resets_baseline_so_step_flags_once(self):
        # after the collapse the series stays low: later runs compare to
        # the *new* regime, not the old one — one step, one flag
        records = series_records("serve.throughput_rps", [100.0, 40.0, 41.0, 39.0, 42.0])
        (series,) = build_timeline(records)
        assert [cp.index for cp in series.changepoints] == [1]

    def test_lower_better_flags_rises_only(self):
        records = series_records("serve.latency_p99_seconds", [0.10, 0.11, 0.02, 0.30])
        (series,) = build_timeline(records)
        assert series.direction == "lower"
        # 0.02 is a big *improvement*: never flagged; 0.30 flags
        assert [cp.index for cp in series.changepoints] == [3]

    def test_good_direction_moves_never_flag(self):
        records = series_records("serve.throughput_rps", [100.0, 300.0, 900.0])
        (series,) = build_timeline(records)
        assert series.changepoints == ()

    def test_info_metrics_never_flag(self):
        records = series_records("trace.groups", [1.0, 100.0, 0.001])
        (series,) = build_timeline(records, metrics=("trace.groups",))
        assert series.direction == "info"
        assert series.changepoints == ()

    def test_threshold_is_respected(self):
        points = build_timeline(series_records("serve.throughput_rps", [100.0, 80.0]))[0].points
        assert detect_changepoints("serve.throughput_rps", points, threshold=0.25) == ()
        flagged = detect_changepoints("serve.throughput_rps", points, threshold=0.1)
        assert [cp.index for cp in flagged] == [1]
        with pytest.raises(ValueError, match="threshold"):
            detect_changepoints("serve.throughput_rps", points, threshold=0.0)

    def test_zero_baseline_flags_any_bad_move(self):
        records = series_records("serve.shed_rate", [0.0, 0.0, 0.5])
        (series,) = build_timeline(records)
        assert [cp.index for cp in series.changepoints] == [2]


class TestBuildTimeline:
    def test_metrics_observed_once_are_dropped_by_default(self):
        records = series_records("serve.throughput_rps", [1.0, 2.0])
        records.append(
            RunRecord(
                exp_id="exp", kind="serve", metrics={"rare.metric": 1.0}, timestamp=9.0
            )
        )
        assert [s.metric for s in build_timeline(records)] == ["serve.throughput_rps"]
        # ...unless explicitly requested
        assert [s.metric for s in build_timeline(records, metrics=("rare.metric",))] == [
            "rare.metric"
        ]

    def test_point_indices_name_record_positions(self):
        records = series_records("serve.throughput_rps", [1.0, 2.0])
        records.insert(
            1,
            RunRecord(exp_id="exp", kind="snapshot", metrics={"other": 1.0}, timestamp=0.5),
        )
        (series,) = build_timeline(records)
        assert [p.index for p in series.points] == [0, 2]

    def test_series_sorted_by_metric(self):
        records = [
            RunRecord(
                exp_id="exp",
                kind="serve",
                metrics={"z.metric": float(i), "a.metric": float(i)},
                timestamp=float(i),
            )
            for i in range(2)
        ]
        assert [s.metric for s in build_timeline(records)] == ["a.metric", "z.metric"]


class TestRenderers:
    def fixture_series(self):
        records = series_records("serve.throughput_rps", [100.0, 102.0, 98.0, 40.0, 41.0])
        return build_timeline(records)

    def test_text_report_names_the_flagged_run(self):
        text = render_timeline_text("exp", self.fixture_series())
        assert "timeline exp" in text
        assert "serve.throughput_rps" in text
        assert "change-point: serve.throughput_rps at run 3" in text
        assert "-60." in text

    def test_html_is_self_contained_and_deterministic(self):
        html_doc = render_timeline_html("exp", self.fixture_series())
        assert html_doc.startswith("<!DOCTYPE html>")
        assert "<svg" in html_doc and "polyline" in html_doc
        assert "<script" not in html_doc
        assert "http://" not in html_doc and "https://" not in html_doc
        assert "CHANGE-POINT" in html_doc  # flagged marker tooltip
        assert html_doc == render_timeline_html("exp", self.fixture_series())

    def test_html_counts_flags_in_tiles(self):
        html_doc = render_timeline_html("exp", self.fixture_series())
        assert "change-points" in html_doc
        assert "flag threshold" in html_doc
