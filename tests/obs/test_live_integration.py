"""Live observability wired through the real executors.

These tests use the process-wide :data:`REGISTRY` on purpose — that is
what the pool and the EDT register with — and assert that registration
is scoped to the executor's lifetime, so nothing leaks between tests.
"""

import threading
import time

from repro.executor.threads import WorkStealingPool
from repro.gui.edt import EventDispatchThread
from repro.obs.live.registry import REGISTRY
from repro.obs.live.sampler import SamplingProfiler


def _pool_handles(name):
    return [h for h in REGISTRY.workers() if h.name.startswith(f"{name}-w")]


class TestThreadsPool:
    def test_workers_register_for_pool_lifetime(self):
        pool = WorkStealingPool(workers=3, name="livep")
        try:
            deadline = time.monotonic() + 5.0
            while len(_pool_handles("livep")) < 3 and time.monotonic() < deadline:
                time.sleep(0.005)
            handles = _pool_handles("livep")
            assert len(handles) == 3
            assert all(h.role == "pool" for h in handles)
            assert "livep.queue_depth" in REGISTRY.gauges()
        finally:
            pool.shutdown()
        deadline = time.monotonic() + 5.0
        while _pool_handles("livep") and time.monotonic() < deadline:
            time.sleep(0.005)
        assert _pool_handles("livep") == []
        assert "livep.queue_depth" not in REGISTRY.gauges()

    def test_samples_attribute_to_submitted_task_names(self):
        pool = WorkStealingPool(workers=2, name="livq", compute_mode="sleep", time_scale=1.0)
        prof = SamplingProfiler(interval=0.002)
        try:
            with prof:
                futures = [
                    pool.submit(pool.compute, 0.05, name=f"crunch{i}", cost=0.0)
                    for i in range(2)
                ]
                for f in futures:
                    f.result(timeout=10)
        finally:
            pool.shutdown()
        tasks = prof.profile().by_task()
        assert any(t.startswith("crunch") for t in tasks), tasks
        workers = prof.profile().by_worker()
        assert any(w.startswith("livq-w") for w in workers), workers

    def test_tasks_done_counts_on_handles(self):
        pool = WorkStealingPool(workers=1, name="livd")
        try:
            for i in range(5):
                pool.submit(lambda: None, name=f"t{i}").result(timeout=10)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                handles = _pool_handles("livd")
                if handles and sum(h.tasks_done for h in handles) >= 5:
                    break
                time.sleep(0.005)
            assert sum(h.tasks_done for h in _pool_handles("livd")) >= 5
        finally:
            pool.shutdown()


class TestEventDispatchThread:
    def test_edt_registers_and_attributes_events(self):
        edt = EventDispatchThread(name="liveedt")
        try:
            seen = threading.Event()
            edt.invoke_later(seen.set)
            assert seen.wait(5.0)
            handles = [h for h in REGISTRY.workers() if h.name == "liveedt"]
            assert len(handles) == 1
            assert handles[0].role == "edt"
            assert "liveedt.queue_depth" in REGISTRY.gauges()
        finally:
            edt.stop()
        assert all(h.name != "liveedt" for h in REGISTRY.workers())
        assert "liveedt.queue_depth" not in REGISTRY.gauges()
