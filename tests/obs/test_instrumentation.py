"""End-to-end observability: instrumented backends and the trace CLI."""

import json

import pytest

from repro.__main__ import main
from repro.executor import create
from repro.gui.edt import EventDispatchThread
from repro.obs import TraceRecorder
from repro.ptask import ParallelTaskRuntime
from repro.pyjama import Pyjama


class TestPoolInstrumentation:
    def test_task_spans_and_submit_instants(self):
        rec = TraceRecorder()
        with create("threads", cores=2, trace=rec) as pool:
            fs = [pool.submit(lambda i=i: i, name=f"t{i}") for i in range(6)]
            [f.result() for f in fs]
        kinds = {e.kind for e in rec.events()}
        assert {"submit", "task"} <= kinds
        snap = rec.metrics.snapshot()
        assert snap["pool.submitted"] == 6
        assert snap["pool.tasks_executed"] == 6
        assert snap["pool.task_seconds.n"] == 6

    def test_critical_section_span_carries_lock_name(self):
        rec = TraceRecorder()
        with create("threads", cores=1, trace=rec) as pool:
            with pool.critical("shared"):
                pass
        crits = [e for e in rec.events() if e.kind == "critical"]
        assert [e.phase for e in crits] == ["B", "i", "E"]
        assert crits[0].attrs["lock"] == "shared"
        assert rec.metrics.snapshot()["pool.critical_sections"] == 1

    def test_barrier_events(self):
        rec = TraceRecorder()
        with create("threads", cores=2, trace=rec) as pool:
            fs = [
                pool.submit(lambda: pool.barrier("b", parties=2), name=f"m{i}")
                for i in range(2)
            ]
            [f.result() for f in fs]
        barriers = [e for e in rec.events() if e.kind == "barrier"]
        assert len(barriers) >= 2
        assert rec.metrics.snapshot()["pool.barrier_passes"] == 2


class TestSimInstrumentation:
    def test_schedule_emits_spans_and_migrations(self):
        rec = TraceRecorder()
        ex = create("sim", cores=4, trace=rec)
        rt = ParallelTaskRuntime(ex)

        def fib(n):
            if n < 2:
                return n
            a = rt.spawn(fib, n - 1, cost=1.0)
            b = rt.spawn(fib, n - 2, cost=1.0)
            return a.result() + b.result()

        assert fib(8) == 21
        ex.schedule()
        events = rec.events()
        assert any(e.kind == "task" and e.phase == "X" for e in events)
        assert any(e.kind == "steal" for e in events), "no migrations at 4 cores"
        snap = rec.metrics.snapshot()
        assert snap["sim.schedules"] == 1
        assert snap["sim.makespan"] > 0

    def test_each_schedule_gets_its_own_group(self):
        rec = TraceRecorder()
        ex = create("sim", cores=2, trace=rec)
        ex.submit(lambda: None, cost=1.0).result()
        r1 = ex.schedule()
        r2 = ex.schedule()
        assert r1.makespan == r2.makespan
        groups = {e.group for e in rec.events() if e.phase == "X"}
        assert len(groups) == 2

    def test_pyjama_barrier_lands_in_sim_trace(self):
        rec = TraceRecorder()
        omp = Pyjama(create("sim", cores=4, trace=rec), num_threads=4)

        def body(ctx):
            ctx.compute(1.0)
            ctx.barrier("sync")
            ctx.compute(1.0)

        omp.parallel(body)
        omp.executor.schedule()
        assert any(e.kind == "barrier" for e in rec.events())
        assert rec.metrics.snapshot()["sim.barrier_passes"] >= 1


class TestEdtInstrumentation:
    def test_queue_latency_observed(self):
        rec = TraceRecorder()
        with EventDispatchThread("test-edt", trace=rec) as edt:
            edt.invoke_and_wait(lambda: None)
        snap = rec.metrics.snapshot()
        assert snap["edt.events"] >= 1
        assert snap["edt.queue_latency_seconds.n"] >= 1
        assert any(e.kind == "edt" for e in rec.events())


class TestTraceCli:
    @pytest.fixture()
    def trace_doc(self, tmp_path, capsys):
        out = tmp_path / "proj2.json"
        assert main(["trace", "proj2", "-o", str(out)]) == 0
        captured = capsys.readouterr()
        doc = json.loads(out.read_text())
        return doc, captured

    def test_writes_valid_chrome_trace(self, trace_doc):
        doc, _ = trace_doc
        events = doc["traceEvents"]
        assert events, "empty trace"
        assert any(e["cat"] == "task" and e["ph"] == "X" for e in events)
        assert any(e["cat"] in ("steal", "barrier") for e in events)

    def test_prints_report_and_metrics(self, trace_doc):
        _, captured = trace_doc
        assert "experiment proj2" in captured.out
        assert "metrics for proj2" in captured.err
        assert "trace events" in captured.err

    def test_unknown_experiment(self, capsys):
        assert main(["trace", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
