"""Run-history store: record round-trips, idempotent appends, queries."""

import json
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.store import (
    RUN_KINDS,
    SCHEMA_VERSION,
    RunRecord,
    RunStore,
    aggregate,
    current_stamp,
    emit_metrics,
    ingest_snapshots,
    reduce_values,
    use_clock,
)
from repro.util.stopwatch import ManualClock


def rec(exp="exp_a", kind="analyze", metrics=None, ts=1.0, **kw):
    return RunRecord(
        exp_id=exp,
        kind=kind,
        metrics=metrics if metrics is not None else {"m": 1.0},
        timestamp=ts,
        revision="sim",
        **kw,
    )


# -- RunRecord serialization -------------------------------------------------

metric_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz._", min_size=1, max_size=12
)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestRunRecord:
    @given(
        exp=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=16),
        kind=st.sampled_from(RUN_KINDS),
        metrics=st.dictionaries(metric_names, finite, max_size=6),
        backend=st.none() | st.sampled_from(["sim", "threads", "processes"]),
        cores=st.none() | st.integers(min_value=1, max_value=256),
        seed=st.none() | st.integers(min_value=0, max_value=2**31),
        ts=finite,
        verdicts=st.dictionaries(
            st.sampled_from(["baseline", "slo", "chaos"]),
            st.sampled_from(["pass", "regression", "violation"]),
            max_size=3,
        ),
        deltas=st.dictionaries(metric_names, finite, max_size=4),
        tags=st.lists(st.text(alphabet="abc:_", min_size=1, max_size=8), max_size=3),
    )
    def test_json_round_trip(
        self, exp, kind, metrics, backend, cores, seed, ts, verdicts, deltas, tags
    ):
        # the hard acceptance property: the canonical JSON line the store
        # writes reconstructs an *equal* record, floats included
        original = RunRecord(
            exp_id=exp,
            kind=kind,
            metrics=metrics,
            backend=backend,
            cores=cores,
            seed=seed,
            timestamp=ts,
            verdicts=verdicts,
            deltas=deltas,
            tags=tuple(tags),
        )
        rebuilt = RunRecord.from_dict(json.loads(original.to_json()))
        assert rebuilt == original
        assert rebuilt.key == original.key

    def test_unknown_keys_rejected(self):
        doc = rec().to_dict()
        doc["extra_field"] = 1
        with pytest.raises(ValueError, match="unknown RunRecord keys.*extra_field"):
            RunRecord.from_dict(doc)

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ValueError, match="missing required keys"):
            RunRecord.from_dict({"exp_id": "e"})

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            rec(kind="nonsense")
        with pytest.raises(ValueError, match="exp_id"):
            RunRecord(exp_id="", kind="analyze", metrics={})
        with pytest.raises(ValueError, match="cores"):
            rec(cores=0)
        with pytest.raises(ValueError, match="schema"):
            rec(schema=SCHEMA_VERSION + 1)

    def test_metrics_sorted_and_coerced(self):
        r = rec(metrics={"b": 2, "a": True})
        assert list(r.metrics) == ["a", "b"]
        assert r.metrics["a"] == 1.0 and isinstance(r.metrics["a"], float)

    def test_regressed_property(self):
        assert not rec(verdicts={"baseline": "pass"}).regressed
        assert rec(verdicts={"baseline": "regression"}).regressed
        assert rec(verdicts={"slo": "violation"}).regressed


# -- injectable stamps -------------------------------------------------------

class TestStamp:
    def test_ambient_clock_wins(self):
        clock = ManualClock(42.0)
        with use_clock(clock, "deadbeef"):
            assert current_stamp() == (42.0, "deadbeef")
            clock.advance(8.0)
            assert current_stamp() == (50.0, "deadbeef")

    def test_scopes_nest_and_restore(self):
        with use_clock(ManualClock(1.0), "outer"):
            with use_clock(ManualClock(2.0), "inner"):
                assert current_stamp() == (2.0, "inner")
            assert current_stamp() == (1.0, "outer")

    def test_wall_fallback_outside_scope(self):
        ts, revision = current_stamp()
        assert ts > 1e9  # a real wall-clock epoch, not virtual time
        assert isinstance(revision, str) and revision

    def test_record_stamps_from_ambient(self, tmp_path):
        store = RunStore(tmp_path)
        with use_clock(ManualClock(7.0), "sim"):
            r = store.record("e", "analyze", {"m": 1.0})
        assert (r.timestamp, r.revision) == (7.0, "sim")


# -- the store ---------------------------------------------------------------

class TestRunStore:
    def test_append_reload(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(rec(ts=1.0))
        store.append(rec(exp="exp_b", ts=2.0))
        reloaded = RunStore(tmp_path)
        assert len(reloaded) == 2
        assert [r.exp_id for r in reloaded] == ["exp_a", "exp_b"]

    def test_duplicate_append_is_byte_identical(self, tmp_path):
        # the sim-mode double-ingest acceptance: appending an identical
        # record must not change a single byte on disk
        store = RunStore(tmp_path)
        r = rec()
        assert store.append(r)
        before = store.shard_path(r.exp_id).read_bytes()
        assert not store.append(r)
        assert store.shard_path(r.exp_id).read_bytes() == before
        assert len(store) == 1

    def test_sharding_is_stable_per_experiment(self, tmp_path):
        store = RunStore(tmp_path, shards=4)
        for i in range(5):
            store.append(rec(ts=float(i), seed=i))
        # one experiment -> one shard file, whatever the record count
        assert len(list(tmp_path.glob("shard-*.jsonl"))) == 1
        assert store.shard_path("exp_a") == RunStore(tmp_path, shards=4).shard_path("exp_a")

    def test_time_order_with_load_order_tiebreak(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(rec(ts=5.0, seed=1))
        store.append(rec(ts=1.0, seed=2))
        store.append(rec(ts=5.0, seed=3))
        assert [r.seed for r in store] == [2, 1, 3]

    def test_corrupt_and_foreign_lines_skipped(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(rec())
        path = store.shard_path("exp_a")
        alien = dict(rec(ts=9.0).to_dict(), schema=SCHEMA_VERSION + 1)
        path.write_text(path.read_text() + "not json\n" + json.dumps(alien) + "\n")
        reloaded = RunStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 2

    def test_compact_drops_junk_and_sorts(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(rec(ts=2.0, seed=1))
        store.append(rec(ts=1.0, seed=2))
        path = store.shard_path("exp_a")
        path.write_text(path.read_text() + "garbage\n")
        reopened = RunStore(tmp_path)
        removed = reopened.compact()
        assert removed == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(ln)["seed"] for ln in lines] == [2, 1]  # time-ordered
        assert len(RunStore(tmp_path)) == 2

    def test_query_filters(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(rec(ts=1.0, kind="analyze", backend="sim"))
        store.append(rec(ts=2.0, kind="serve", backend="threads", tags=("hot",)))
        store.append(
            rec(ts=3.0, kind="compare", verdicts={"baseline": "regression"}, seed=7)
        )
        store.append(rec(exp="exp_b", ts=4.0))
        assert len(store.query(exp="exp_a")) == 3
        assert [r.kind for r in store.query(kind="serve")] == ["serve"]
        assert [r.backend for r in store.query(backend="threads")] == ["threads"]
        assert [r.tags for r in store.query(tag="hot")] == [("hot",)]
        assert [r.seed for r in store.query(verdict="regression")] == [7]
        assert [r.timestamp for r in store.query(since=3.0)] == [3.0, 4.0]
        assert [r.timestamp for r in store.query(limit=2)] == [3.0, 4.0]
        with pytest.raises(ValueError, match="limit"):
            store.query(limit=0)

    def test_experiments_sorted(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(rec(exp="zzz"))
        store.append(rec(exp="aaa"))
        assert store.experiments() == ["aaa", "zzz"]

    def test_add_stamps_unstamped_records(self, tmp_path):
        store = RunStore(tmp_path)
        bare = RunRecord(exp_id="e", kind="serve", metrics={"m": 1.0})
        with use_clock(ManualClock(3.0), "sim"):
            stamped = store.add(bare)
        assert (stamped.timestamp, stamped.revision) == (3.0, "sim")
        prestamped = rec(ts=99.0)
        assert store.add(prestamped) == prestamped

    def test_concurrent_appends_all_land(self, tmp_path):
        store = RunStore(tmp_path)

        def worker(i):
            for j in range(20):
                store.append(rec(exp=f"exp_{i}", ts=float(j), seed=j))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store) == 80
        assert len(RunStore(tmp_path)) == 80


# -- aggregation -------------------------------------------------------------

class TestAggregate:
    def test_reducers(self):
        xs = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert reduce_values(xs, "min") == 1.0
        assert reduce_values(xs, "max") == 5.0
        assert reduce_values(xs, "mean") == 3.0
        assert reduce_values(xs, "p50") == 3.0
        assert reduce_values(xs, "p99") == 5.0
        with pytest.raises(ValueError, match="reducer"):
            reduce_values(xs, "median")
        with pytest.raises(ValueError, match="empty"):
            reduce_values([], "mean")

    def test_group_by_and_missing_metrics_skipped(self):
        records = [
            rec(kind="analyze", metrics={"m": 1.0}),
            rec(kind="analyze", metrics={"m": 3.0}, seed=1),
            rec(kind="serve", metrics={"m": 10.0}),
            rec(kind="serve", metrics={"other": 99.0}, seed=2),  # no "m": skipped
        ]
        rows = aggregate(records, "m", reduce="mean", group_by="kind")
        assert [(a.group, a.n, a.value) for a in rows] == [
            ("analyze", 2, 2.0),
            ("serve", 1, 10.0),
        ]
        with pytest.raises(ValueError, match="group_by"):
            aggregate(records, "m", group_by="seed")


# -- snapshot backfill -------------------------------------------------------

class TestIngestSnapshots:
    def _bench_dir(self, tmp_path):
        bench = tmp_path / "reports"
        bench.mkdir()
        (bench / "BENCH_pool.json").write_text(
            json.dumps(
                {"version": 1, "experiments": {"pool_micro": {"pool.tasks_per_second": 900.0}}}
            )
        )
        (bench / "BENCH_serve.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "experiments": {
                        "serve_overload_sim": {"serve.throughput_rps": 1981.0},
                        "serve_bursty_sim": {"serve.throughput_rps": 2010.0},
                    },
                }
            )
        )
        return bench

    def test_backfill_is_deterministic_and_idempotent(self, tmp_path):
        bench = self._bench_dir(tmp_path)
        store = RunStore(tmp_path / "runs")
        assert ingest_snapshots(store, bench) == 3
        snap = store.query(exp="pool_micro")[0]
        assert snap.kind == "snapshot"
        assert snap.timestamp == 0.0
        assert snap.revision == "snapshot:BENCH_pool.json"
        assert snap.tags == ("backfill",)
        files = {p.name: p.read_bytes() for p in (tmp_path / "runs").glob("*.jsonl")}
        assert ingest_snapshots(store, bench) == 0  # second pass: all dups
        assert {p.name: p.read_bytes() for p in (tmp_path / "runs").glob("*.jsonl")} == files

    def test_open_backfills(self, tmp_path):
        bench = self._bench_dir(tmp_path)
        store = RunStore.open(tmp_path / "runs", bench_dir=bench)
        assert len(store) == 3
        assert len(RunStore.open(tmp_path / "runs", bench_dir=bench)) == 3

    def test_missing_bench_dir_is_empty_backfill(self, tmp_path):
        store = RunStore.open(tmp_path / "runs", bench_dir=tmp_path / "nope")
        assert len(store) == 0

    def test_against_committed_snapshots(self, tmp_path):
        # the real committed BENCH_*.json files must backfill cleanly
        store = RunStore.open(tmp_path / "runs", bench_dir="benchmarks/reports")
        assert "pool_micro" in store.experiments()
        assert "serve_overload_sim" in store.experiments()
        assert all(r.kind == "snapshot" for r in store)


# -- fleet gauges ------------------------------------------------------------

class TestEmitMetrics:
    def test_gauges_reach_prometheus_text(self, tmp_path):
        from repro.obs import Metrics
        from repro.obs.live.export import prometheus_text

        store = RunStore(tmp_path)
        store.append(rec(ts=1.0, kind="analyze"))
        store.append(
            rec(ts=2.0, kind="compare", verdicts={"baseline": "regression"}, seed=1)
        )
        metrics = Metrics()
        emit_metrics(store, metrics)
        text = prometheus_text(metrics)
        assert "repro_store_runs 2" in text
        assert "repro_store_experiments 1" in text
        assert "repro_store_runs_compare 1" in text
        assert "repro_store_regressed_runs 1" in text
        assert "repro_store_latest_timestamp 2" in text
