"""Sinks: every serialised form must round-trip through ``json.loads``."""

import io
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import ChromeTraceSink, JsonlSink, MemorySink, TraceEvent, TraceRecorder

_names = st.text(st.characters(codec="ascii", exclude_characters="\x00"), max_size=12)
_events = st.builds(
    TraceEvent,
    kind=st.sampled_from(["task", "steal", "critical", "barrier", "edt"]),
    name=_names,
    phase=st.sampled_from(["B", "E", "X", "i"]),
    ts=st.floats(0, 1e6, allow_nan=False),
    dur=st.one_of(st.none(), st.floats(0, 1e3, allow_nan=False)),
    task_id=st.integers(0, 10_000),
    worker=st.one_of(st.none(), st.integers(0, 63)),
    group=st.integers(0, 8),
)


class TestMemorySink:
    def test_keeps_order(self):
        sink = MemorySink()
        for i in range(5):
            sink.emit(TraceEvent(kind="task", name=f"t{i}"))
        assert [e.name for e in sink.events] == [f"t{i}" for i in range(5)]
        assert len(sink) == 5
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_round_trip_via_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(TraceEvent(kind="task", name="a", phase="B", ts=0.5, task_id=3))
            sink.emit(TraceEvent(kind="steal", name="s", worker=2, attrs={"victim": 0}))
        lines = path.read_text().splitlines()
        docs = [json.loads(line) for line in lines]
        assert docs[0] == {"kind": "task", "name": "a", "ph": "B", "ts": 0.5, "task": 3, "group": 0}
        assert docs[1]["args"] == {"victim": 0}
        assert docs[1]["worker"] == 2

    def test_stream_target_left_open(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(TraceEvent(kind="task", name="x"))
        sink.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["name"] == "x"

    @given(events=st.lists(_events, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_every_line_parses(self, events):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        for e in events:
            sink.emit(e)
        parsed = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [p["name"] for p in parsed] == [e.name for e in events]


class TestDeterministicFlush:
    def test_jsonl_flush_pushes_lines_to_disk_mid_run(self, tmp_path):
        """Lines must be readable after flush() without closing — the
        long-run tailing case (crash forensics, live dashboards)."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(TraceEvent(kind="task", name="early"))
        sink.flush()
        assert json.loads(path.read_text().splitlines()[0])["name"] == "early"
        sink.emit(TraceEvent(kind="task", name="late"))
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_jsonl_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit(TraceEvent(kind="task", name="x"))
        sink.close()
        sink.close()  # second close must not raise or truncate
        assert len((tmp_path / "t.jsonl").read_text().splitlines()) == 1

    def test_chrome_flush_writes_partial_doc_then_close_completes(self, tmp_path):
        path = tmp_path / "t.json"
        sink = ChromeTraceSink(path)
        sink.emit(TraceEvent(kind="task", name="a"))
        sink.flush()
        assert len(json.loads(path.read_text())["traceEvents"]) == 1
        sink.emit(TraceEvent(kind="task", name="b"))
        sink.close()
        assert len(json.loads(path.read_text())["traceEvents"]) == 2

    def test_chrome_close_idempotent_and_seals(self, tmp_path):
        path = tmp_path / "t.json"
        sink = ChromeTraceSink(path)
        sink.emit(TraceEvent(kind="task", name="a"))
        sink.close()
        sink.emit(TraceEvent(kind="task", name="ignored-after-seal"))
        sink.close()
        sink.flush()  # sealed: neither rewrites the file
        assert len(json.loads(path.read_text())["traceEvents"]) == 1

    def test_chrome_clear_drops_buffered_events(self, tmp_path):
        sink = ChromeTraceSink(tmp_path / "t.json")
        sink.emit(TraceEvent(kind="task", name="a"))
        sink.clear()
        sink.close()
        assert json.loads((tmp_path / "t.json").read_text())["traceEvents"] == []

    def test_base_sink_flush_is_noop(self):
        MemorySink().flush()  # inherited default: must simply not raise


class TestChromeTraceSink:
    def test_file_written_on_close(self, tmp_path):
        path = tmp_path / "trace.json"
        with ChromeTraceSink(path) as sink:
            sink.emit(TraceEvent(kind="task", name="t", phase="X", ts=1.0, dur=0.5))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X" and ev["dur"] == 0.5e6

    def test_write_events_one_shot(self, tmp_path):
        rec = TraceRecorder()
        with rec.span("task", "outer", task_id=1):
            rec.event("steal", "s", worker=0)
        out = ChromeTraceSink.write_events(rec.events(), tmp_path / "t.json")
        doc = json.loads(out.read_text())
        assert [e["ph"] for e in doc["traceEvents"]] == ["B", "i", "E"]

    @given(events=st.lists(_events, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_rendered_doc_parses_and_preserves_count(self, events):
        doc = json.loads(ChromeTraceSink.render_events(events))
        assert len(doc["traceEvents"]) == len(events)
        for src, dst in zip(events, doc["traceEvents"]):
            assert dst["cat"] == src.kind
            assert dst["args"]["task"] == src.task_id
