"""Cross-process trace shards: write, merge, replay, analyze."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    TraceEvent,
    TraceRecorder,
    analyze_trace,
    merge_shards,
    read_shard,
    replay_into,
    shard_path,
)
from repro.obs.sinks import JsonlSink


def _span(name, tid, worker, start, dur, **attrs):
    """One closed task span as its B/E event pair."""
    return [
        TraceEvent("task", name, phase="B", ts=start, task_id=tid, worker=worker, attrs=attrs),
        TraceEvent("task", name, phase="E", ts=start + dur, task_id=tid, worker=worker),
    ]


def _write_shard(path, events):
    with JsonlSink(path) as sink:
        for e in events:
            sink.emit(e)


class TestShardFiles:
    def test_shard_path_naming(self, tmp_path):
        assert Path(shard_path(tmp_path, 3)).name == "shard-w3.jsonl"
        assert Path(shard_path(tmp_path, 0, prefix="t")).name == "t-w0.jsonl"

    def test_read_round_trips_events(self, tmp_path):
        events = _span("t", 1, 0, 0.5, 1.0, pid=1234)
        path = shard_path(tmp_path, 0)
        _write_shard(path, events)
        back, malformed = read_shard(path)
        assert malformed == 0
        assert back == events
        assert back[0].attrs["pid"] == 1234

    def test_missing_shard_is_empty_not_fatal(self, tmp_path):
        events, malformed = read_shard(tmp_path / "never-written.jsonl")
        assert events == [] and malformed == 0

    def test_malformed_lines_counted_not_fatal(self, tmp_path):
        path = Path(shard_path(tmp_path, 0))
        good = TraceEvent("task", "ok", phase="i", ts=1.0)
        path.write_text(
            "this is not json\n"
            + json.dumps(good.to_json())
            + "\n"
            + json.dumps({"no": "kind"})
            + "\n"
        )
        events, malformed = read_shard(path)
        assert [e.name for e in events] == ["ok"]
        assert malformed == 2


class TestMerge:
    def test_merge_orders_overlapping_spans_by_time(self, tmp_path):
        # two workers with *overlapping* spans, deliberately written
        # out-of-order inside each shard's file
        w0 = _span("a", 1, 0, 0.0, 2.0) + _span("c", 3, 0, 2.5, 1.0)
        w1 = _span("b", 2, 1, 1.0, 2.0) + _span("d", 4, 1, 3.5, 0.5)
        p0, p1 = shard_path(tmp_path, 0), shard_path(tmp_path, 1)
        _write_shard(p0, w0)
        _write_shard(p1, w1)
        events, malformed = merge_shards([p0, p1])
        assert malformed == 0
        assert len(events) == 8
        assert [e.ts for e in events] == sorted(e.ts for e in events)

    def test_merge_puts_metadata_first(self, tmp_path):
        meta = TraceEvent("meta", "process_name", phase="M", ts=9.0, attrs={"name": "pool"})
        p0, p1 = shard_path(tmp_path, 0), shard_path(tmp_path, 1)
        _write_shard(p0, _span("a", 1, 0, 0.0, 1.0))
        _write_shard(p1, [meta])
        events, _ = merge_shards([p0, p1])
        assert events[0].phase == "M"  # despite its late timestamp

    def test_replay_into_recorder(self, tmp_path):
        p0 = shard_path(tmp_path, 0)
        _write_shard(p0, _span("a", 1, 0, 0.0, 1.0))
        recorder = TraceRecorder()
        events, _ = merge_shards([p0])
        assert replay_into(recorder, events) == 2
        assert [e.name for e in recorder.events()] == ["a", "a"]


class TestMergedAnalysis:
    def test_two_shards_analyze_to_one_coherent_summary(self, tmp_path):
        # worker 0: tasks at [0,2) and [2,3); worker 1: tasks at [1,3)
        # and [3,3.5) — overlapping in time, 5.5s of work over a 3.5s
        # window, two workers attributed separately.
        w0 = _span("a", 1, 0, 0.0, 2.0, pid=101) + _span("c", 3, 0, 2.0, 1.0, pid=101)
        w1 = _span("b", 2, 1, 1.0, 2.0, pid=202) + _span("d", 4, 1, 3.0, 0.5, pid=202)
        p0, p1 = shard_path(tmp_path, 0), shard_path(tmp_path, 1)
        _write_shard(p0, w0)
        _write_shard(p1, w1)
        events, malformed = merge_shards([p0, p1])
        assert malformed == 0
        analysis = analyze_trace(events)
        group = analysis.primary
        assert group is not None
        assert group.tasks == 4
        assert group.work == pytest.approx(5.5)
        assert group.makespan == pytest.approx(3.5)
        # per-process attribution survives the merge: one utilization row
        # per worker, covering that worker's own spans only
        workers = {w.worker: w for w in group.workers}
        assert set(workers) == {0, 1}
        assert workers[0].busy == pytest.approx(3.0)
        assert workers[1].busy == pytest.approx(2.5)
        assert 0 < group.utilization <= 1.0

    def test_merged_lifecycle_events_reach_the_analysis(self, tmp_path):
        p0, p1 = shard_path(tmp_path, 0), shard_path(tmp_path, 1)
        _write_shard(
            p0,
            _span("a", 1, 0, 0.0, 1.0)
            + [TraceEvent("fault", "boom", phase="i", ts=0.5, task_id=1, worker=0)],
        )
        _write_shard(p1, [TraceEvent("cancel", "late", phase="i", ts=0.2, task_id=2, worker=1)])
        events, _ = merge_shards([p0, p1])
        analysis = analyze_trace(events)
        assert analysis.faults == 1
        assert analysis.cancelled == 1
