"""Report renderers: golden terminal output, self-contained HTML."""

from dataclasses import replace

from repro.executor import create
from repro.obs import (
    TaskSpan,
    TraceEvent,
    TraceRecorder,
    analyze_trace,
    render_html,
    render_text,
)
from repro.obs.report import MAX_GANTT_SPANS
from repro.ptask import ParallelTaskRuntime


def _span(task_id, start, end, worker, parent=None):
    attrs = {"parent": parent} if parent else {}
    return TraceEvent(kind="task", name=f"t{task_id}", phase="X", ts=start,
                      dur=end - start, task_id=task_id, worker=worker, attrs=attrs)


#: A fixed little two-worker timeline: 1 -> {2, 3}, one steal, one
#: contended lock, one barrier pass.  Every figure below is hand-checked.
FIXTURE = [
    _span(1, 0.0, 1.0, worker=0),
    _span(2, 1.0, 3.0, worker=0, parent=1),
    _span(3, 1.0, 2.5, worker=1, parent=1),
    TraceEvent(kind="steal", name="steal", worker=1),
    TraceEvent(kind="critical", name="lk", phase="B", ts=1.0, task_id=2, attrs={"lock": "lk"}),
    TraceEvent(kind="critical", name="lk:acquired", phase="i", ts=1.5, task_id=2),
    TraceEvent(kind="critical", name="lk", phase="E", ts=2.0, task_id=2),
    TraceEvent(kind="barrier", name="b:arrive", phase="i", ts=2.0, task_id=2),
    TraceEvent(kind="barrier", name="b:pass", phase="i", ts=2.5, task_id=2),
]

GOLDEN = """\
trace analysis: 9 events, 1 group(s), 3 task(s)
primary group 0 (wall clock): work 4.500000  span 3.000000  parallelism 1.500  utilization 0.750

== work/span per group ==
group | label      | cores | tasks | work     | span     | parallelism | makespan | util     | source
-------+------------+-------+-------+----------+----------+-------------+----------+----------+---------------
0     | wall clock | 2     | 3     | 4.500000 | 3.000000 | 1.500000    | 3.000000 | 0.750000 | reconstructed

== workers (group 0) ==
worker | busy     | tasks | utilization
--------+----------+-------+-------------
0      | 3.000000 | 2     | 1.000000
1      | 1.500000 | 1     | 0.500000

scheduler: steals 1 / 4 attempts (25.0% success), helps 0

== critical-section contention ==
lock | acquisitions | mean wait | max wait | total wait
------+--------------+-----------+----------+------------
lk   | 1            | 0.500000  | 0.500000 | 0.500000

== barrier waits ==
barrier | passes | mean wait | max wait | total wait
---------+--------+-----------+----------+------------
b       | 1      | 0.500000  | 0.500000 | 0.500000
"""


def _fixture_analysis():
    return analyze_trace(FIXTURE, metrics={"pool.steal_attempts": 4})


def _canon(text):
    """Strip the table renderer's alignment padding at line ends."""
    return "\n".join(line.rstrip() for line in text.splitlines()) + "\n"


class TestText:
    def test_golden_report(self):
        """The terminal summary is pinned against a golden copy (modulo
        end-of-line alignment padding): formatting drift is a deliberate
        decision, not an accident."""
        assert _canon(render_text(_fixture_analysis())) == GOLDEN

    def test_deterministic(self):
        assert render_text(_fixture_analysis()) == render_text(_fixture_analysis())

    def test_empty_trace_renders(self):
        text = render_text(analyze_trace([]))
        assert "0 events" in text

    def test_unclosed_spans_warn(self):
        rec = TraceRecorder()
        rec.event("task", "hung", phase="B", task_id=1)
        assert "never closed" in render_text(analyze_trace(rec.events()))

    def test_fit_section_present_for_core_sweep(self):
        rec = TraceRecorder()
        for cores in (1, 2, 4):
            ex = create("sim", cores=cores, trace=rec)
            rt = ParallelTaskRuntime(ex)
            for _ in range(8):
                rt.spawn(lambda: None, cost=1.0)
            ex.schedule()
        text = render_text(analyze_trace(rec.events()))
        assert "measured speedup" in text
        assert "amdahl serial fraction" in text


class TestHtml:
    def test_self_contained_with_svg_gantt(self):
        doc = render_html(_fixture_analysis(), title="fixture")
        assert doc.startswith("<!DOCTYPE html>")
        assert "<svg" in doc and "<rect" in doc
        assert "<script" not in doc  # no JS: must work offline
        assert "http://" not in doc.replace("http://www.w3.org/2000/svg", "")
        assert "https://" not in doc
        assert "prefers-color-scheme" in doc  # dark mode is selected, not absent
        assert "work T1" in doc and "span T∞" in doc

    def test_task_identity_rides_in_tooltips(self):
        doc = render_html(_fixture_analysis())
        assert "<title>t2 (task 2)" in doc

    def test_escapes_hostile_labels(self):
        evil = TraceEvent(kind="task", name="<script>alert(1)</script>", phase="X",
                          ts=0.0, dur=1.0, task_id=1, worker=0)
        doc = render_html(analyze_trace([evil]))
        assert "<script>" not in doc
        assert "&lt;script&gt;" in doc

    def test_gantt_truncates_past_cap(self):
        a = _fixture_analysis()
        (g,) = a.groups
        many = tuple(
            TaskSpan(group=0, task_id=i, name=f"t{i}", worker=i % 2,
                     start=float(i), end=float(i) + 0.5, exclusive=0.5)
            for i in range(MAX_GANTT_SPANS + 50)
        )
        crowded = replace(a, groups=(replace(g, spans=many, tasks=len(many)),))
        doc = render_html(crowded)
        assert doc.count("<rect") == MAX_GANTT_SPANS
        assert "longest of" in doc and "omitted" in doc

    def test_deterministic(self):
        assert render_html(_fixture_analysis()) == render_html(_fixture_analysis())

    def test_utilization_bars_present(self):
        doc = render_html(_fixture_analysis())
        assert 'class="bar-fill" style="width:100.0%"' in doc
        assert 'class="bar-fill" style="width:50.0%"' in doc
