"""Tests for contribution stats and PARC hygiene rules."""

import pytest

from repro.vcs import Repository, check_hygiene, contribution_report, contribution_shares


class TestContributionReport:
    def test_counts_commits_and_lines(self):
        repo = Repository()
        repo.commit("alice", "m", {"src/a.py": "l1\nl2\nl3\n"})
        repo.commit("bob", "m", {"src/b.py": "x\n"})
        repo.commit("alice", "m", {"src/a.py": "l1\n"})  # shrank by 2
        stats = contribution_report(repo)
        assert stats["alice"].commits == 2
        assert stats["alice"].lines_added == 3
        assert stats["alice"].lines_removed == 2
        assert stats["bob"].lines_added == 1
        assert stats["alice"].paths_touched == {"src/a.py"}

    def test_delete_counts_as_removal(self):
        repo = Repository()
        repo.commit("a", "m", {"f": "1\n2\n"})
        repo.commit("a", "rm", {"f": None})
        stats = contribution_report(repo)
        assert stats["a"].lines_removed == 2
        assert stats["a"].net_lines == 0

    def test_shares_sum_to_one(self):
        repo = Repository()
        repo.commit("a", "m", {"f": "1\n2\n3\n"})
        repo.commit("b", "m", {"g": "1\n"})
        shares = contribution_shares(repo)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["a"] == pytest.approx(0.75)

    def test_empty_repo(self):
        assert contribution_shares(Repository()) == {}

    def test_last_line_without_newline_counted(self):
        repo = Repository()
        repo.commit("a", "m", {"f": "one\ntwo"})
        assert contribution_report(repo)["a"].lines_added == 2


class TestHygiene:
    def test_clean_project(self):
        tree = {
            "README.md": "# proj\n",
            "src/main.py": "print('hi')\n",
            "tests/test_main.py": "def test(): pass\n",
            "benchmarks/bench_main.py": "pass\n",
        }
        report = check_hygiene(tree)
        assert report.clean, str(report)

    def test_committed_artifacts_flagged(self):
        report = check_hygiene({"README.md": "", "src/Main.class": "", "src/.DS_Store": ""})
        assert report.by_rule()["excluded-artifact"] == 2

    def test_excluded_directories_flagged(self):
        report = check_hygiene({"README.md": "", "build/output.py": "x", "__pycache__/m.py": "x"})
        assert report.by_rule()["excluded-artifact"] == 2

    def test_tests_outside_tests_dir_flagged(self):
        report = check_hygiene({"README.md": "", "src/test_sneaky.py": "x"})
        assert any(v.rule == "structure" for v in report.violations)

    def test_benchmarks_outside_flagged(self):
        report = check_hygiene({"README.md": "", "src/bench_things.py": "x"})
        assert any(v.rule == "structure" for v in report.violations)

    def test_code_at_root_flagged(self):
        report = check_hygiene({"README.md": "", "main.py": "x"})
        assert any("root" in v.detail for v in report.violations)

    def test_crlf_flagged(self):
        report = check_hygiene({"README.md": "", "src/win.py": "a\r\nb\r\n"})
        assert report.by_rule()["portability"] == 1

    def test_windows_paths_flagged(self):
        report = check_hygiene({"README.md": "", "src/p.py": 'open("C:\\\\data")\n'})
        assert any(v.rule == "portability" for v in report.violations)

    def test_missing_readme_flagged(self):
        report = check_hygiene({"src/a.py": "x"})
        assert any(v.rule == "readme" for v in report.violations)

    def test_report_str(self):
        assert "clean" in str(check_hygiene({"README.md": ""}))
        assert "readme" in str(check_hygiene({"src/a.py": "x"}))
