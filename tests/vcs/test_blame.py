"""Tests for line-level provenance (svn blame)."""

import pytest

from repro.vcs import Repository, annotate, blame_summary


def build_repo():
    repo = Repository()
    repo.commit("alice", "initial", {"src/a.py": "def f():\n    return 1\n"})
    # bob appends a function, alice's lines survive untouched
    repo.commit(
        "bob",
        "add g",
        {"src/a.py": "def f():\n    return 1\n\ndef g():\n    return 2\n"},
    )
    # carol rewrites f's body only
    repo.commit(
        "carol",
        "fix f",
        {"src/a.py": "def f():\n    return 42\n\ndef g():\n    return 2\n"},
    )
    return repo


class TestAnnotate:
    def test_surviving_lines_keep_original_author(self):
        lines = annotate(build_repo(), "src/a.py")
        by_text = {l.text: l for l in lines}
        assert by_text["def f():"].author == "alice"  # never changed
        assert by_text["def g():"].author == "bob"
        assert by_text["    return 2"].author == "bob"

    def test_rewritten_line_reattributed(self):
        lines = annotate(build_repo(), "src/a.py")
        by_text = {l.text: l for l in lines}
        assert by_text["    return 42"].author == "carol"
        assert by_text["    return 42"].revision == 3

    def test_line_numbers_sequential(self):
        lines = annotate(build_repo(), "src/a.py")
        assert [l.line_no for l in lines] == list(range(1, len(lines) + 1))

    def test_historical_revision(self):
        lines = annotate(build_repo(), "src/a.py", rev=1)
        assert all(l.author == "alice" for l in lines)
        assert len(lines) == 2

    def test_missing_path_raises(self):
        with pytest.raises(KeyError):
            annotate(build_repo(), "nope.py")

    def test_deleted_then_readded_attributes_to_readder(self):
        repo = Repository()
        repo.commit("alice", "add", {"f.txt": "one\ntwo\n"})
        repo.commit("bob", "rm", {"f.txt": None})
        repo.commit("carol", "re-add", {"f.txt": "one\ntwo\n"})
        lines = annotate(repo, "f.txt")
        assert all(l.author == "carol" for l in lines)

    def test_empty_file(self):
        repo = Repository()
        repo.commit("alice", "touch", {"empty.txt": ""})
        assert annotate(repo, "empty.txt") == []

    def test_str_rendering(self):
        line = annotate(build_repo(), "src/a.py")[0]
        assert "alice" in str(line)


class TestBlameSummary:
    def test_counts(self):
        summary = blame_summary(build_repo(), "src/a.py")
        # 5 lines: alice keeps 'def f():'; bob has the blank + g's two
        # lines; carol has the rewritten return
        assert summary == {"alice": 1, "bob": 3, "carol": 1}

    def test_assessment_signal_vs_churn(self):
        """A member whose code was entirely rewritten shows in churn but
        not in blame — the distinction instructors care about."""
        repo = Repository()
        repo.commit("dave", "draft", {"x.py": "a\nb\nc\n"})
        repo.commit("erin", "rewrite all", {"x.py": "d\ne\nf\n"})
        summary = blame_summary(repo, "x.py")
        assert summary == {"erin": 3}
        from repro.vcs import contribution_report

        churn = contribution_report(repo)
        assert churn["dave"].lines_added == 3  # the effort is still visible
