"""Property-based tests over random repository histories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vcs import Repository, annotate, blame_summary, contribution_report, contribution_shares

paths_st = st.sampled_from(["src/a.py", "src/b.py", "tests/test_a.py", "README.md"])
content_st = st.one_of(
    st.just(""),
    st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta"]), max_size=6).map("\n".join),
)
authors_st = st.sampled_from(["alice", "bob", "carol"])

# a history: list of (author, {path: content}) commits
history_st = st.lists(
    st.tuples(authors_st, st.dictionaries(paths_st, content_st, min_size=1, max_size=3)),
    min_size=1,
    max_size=12,
)


def build(history):
    repo = Repository()
    for author, changes in history:
        repo.commit(author, "step", changes)
    return repo


class TestRepositoryProperties:
    @given(history_st)
    @settings(max_examples=40, deadline=None)
    def test_checkout_matches_sequential_replay(self, history):
        repo = build(history)
        replay: dict[str, str] = {}
        for _author, changes in history:
            replay.update(changes)
        assert repo.checkout() == replay

    @given(history_st)
    @settings(max_examples=30, deadline=None)
    def test_head_counts_commits(self, history):
        assert build(history).head == len(history)

    @given(history_st)
    @settings(max_examples=30, deadline=None)
    def test_log_partition_by_author(self, history):
        repo = build(history)
        total = sum(len(repo.log(author=a)) for a in repo.authors())
        assert total == repo.head

    @given(history_st)
    @settings(max_examples=30, deadline=None)
    def test_historical_checkouts_are_prefixes(self, history):
        repo = build(history)
        for k in range(len(history) + 1):
            replay: dict[str, str] = {}
            for _author, changes in history[:k]:
                replay.update(changes)
            assert repo.checkout(k) == replay

    @given(history_st)
    @settings(max_examples=30, deadline=None)
    def test_contribution_shares_sum_to_one(self, history):
        repo = build(history)
        shares = contribution_shares(repo)
        if any(s.churn > 0 for s in contribution_report(repo).values()):
            assert sum(shares.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 + 1e-12 for v in shares.values())

    @given(history_st)
    @settings(max_examples=30, deadline=None)
    def test_blame_covers_every_line(self, history):
        """For every live path: blame line count == file line count, and
        every attributed author actually committed."""
        repo = build(history)
        authors = repo.authors()
        for path, content in repo.checkout().items():
            lines = annotate(repo, path)
            n_lines = 0 if content == "" else len(content.split("\n")) - (
                1 if content.endswith("\n") else 0
            )
            assert len(lines) == n_lines
            assert {l.author for l in lines} <= authors
            summary = blame_summary(repo, path)
            assert sum(summary.values()) == n_lines
