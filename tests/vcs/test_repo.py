"""Tests for the mini-subversion revision store."""

import pytest

from repro.vcs import Repository


class TestCommit:
    def test_numbers_monotonic(self):
        repo = Repository()
        r1 = repo.commit("alice", "first", {"src/a.py": "print(1)\n"})
        r2 = repo.commit("bob", "second", {"src/b.py": "print(2)\n"})
        assert (r1.number, r2.number) == (1, 2)
        assert repo.head == 2

    def test_empty_commit_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Repository().commit("alice", "nothing", {})

    def test_anonymous_commit_rejected(self):
        with pytest.raises(ValueError, match="author"):
            Repository().commit("", "msg", {"a": "x"})

    def test_bad_paths_rejected(self):
        repo = Repository()
        for bad in ("/abs", "dir/", "a\\b", "a/../b", ""):
            with pytest.raises(ValueError):
                repo.commit("a", "m", {bad: "x"})

    def test_delete_nonexistent_rejected(self):
        repo = Repository()
        with pytest.raises(ValueError, match="nonexistent"):
            repo.commit("a", "m", {"ghost.py": None})

    def test_timestamps_must_not_regress(self):
        repo = Repository()
        repo.commit("a", "m1", {"f": "x"}, timestamp=10.0)
        with pytest.raises(ValueError, match="timestamp"):
            repo.commit("a", "m2", {"f": "y"}, timestamp=5.0)


class TestCheckout:
    def test_head_tree(self):
        repo = Repository()
        repo.commit("a", "m", {"f1": "one", "f2": "two"})
        repo.commit("a", "m", {"f1": "uno", "f3": "three"})
        assert repo.checkout() == {"f1": "uno", "f2": "two", "f3": "three"}

    def test_historical_tree(self):
        repo = Repository()
        repo.commit("a", "m", {"f": "v1"})
        repo.commit("a", "m", {"f": "v2"})
        assert repo.checkout(1) == {"f": "v1"}
        assert repo.checkout(0) == {}

    def test_delete_applies(self):
        repo = Repository()
        repo.commit("a", "m", {"f": "x"})
        repo.commit("a", "rm", {"f": None})
        assert repo.checkout() == {}

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Repository().checkout(3)

    def test_cat(self):
        repo = Repository()
        repo.commit("a", "m", {"f": "hello"})
        assert repo.cat("f") == "hello"
        with pytest.raises(KeyError):
            repo.cat("missing")


class TestLog:
    def build(self):
        repo = Repository()
        repo.commit("alice", "init", {"src/a.py": "a"})
        repo.commit("bob", "tests", {"tests/test_a.py": "t"})
        repo.commit("alice", "fix", {"src/a.py": "a2"})
        return repo

    def test_newest_first(self):
        log = self.build().log()
        assert [r.number for r in log] == [3, 2, 1]

    def test_filter_author(self):
        log = self.build().log(author="alice")
        assert [r.number for r in log] == [3, 1]

    def test_filter_path_prefix(self):
        log = self.build().log(path_prefix="src")
        assert [r.number for r in log] == [3, 1]

    def test_filter_exact_path(self):
        log = self.build().log(path_prefix="tests/test_a.py")
        assert [r.number for r in log] == [2]

    def test_prefix_does_not_match_partial_component(self):
        repo = Repository()
        repo.commit("a", "m", {"srcfoo/x": "1"})
        assert repo.log(path_prefix="src") == []

    def test_authors(self):
        assert self.build().authors() == {"alice", "bob"}
