"""Tests for the ``python -m repro`` command-line front end."""

import json

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig1", "fig2", "proj1", "proj10", "sem", "tab_likert"):
            assert exp_id in out


class TestRun:
    def test_run_one(self, capsys):
        assert main(["run", "tab_assess"]) == 0
        out = capsys.readouterr().out
        assert "assessment scheme" in out
        assert "TOTAL" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_with_output_dir(self, tmp_path, capsys):
        assert main(["run", "fig2", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "fig2.txt").exists()
        assert "week 12" in (tmp_path / "fig2.txt").read_text()


class TestAnalyze:
    def test_prints_analysis_and_writes_html(self, tmp_path, capsys):
        assert main(["analyze", "abl_sched", "-o", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "trace analysis:" in captured.out
        assert "parallelism" in captured.out
        assert "scheduler:" in captured.out
        assert "work/span per group" in captured.out
        html = (tmp_path / "analysis_abl_sched.html").read_text()
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html

    def test_max_events_cap_warns(self, tmp_path, capsys):
        assert main(["analyze", "abl_sched", "-o", str(tmp_path), "--max-events", "10"]) == 0
        assert "events dropped" in capsys.readouterr().err

    def test_unknown_experiment(self, tmp_path, capsys):
        assert main(["analyze", "nope", "-o", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCompare:
    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        baseline = str(tmp_path / "baselines.json")
        assert main(["compare", "abl_sched", "--baseline", baseline]) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_roundtrip_then_injected_regression(self, tmp_path, capsys):
        """The CI gate end-to-end: a run compared against its own baseline
        passes; doctoring the stored makespan to half flags a regression
        and exits non-zero."""
        baseline = tmp_path / "baselines.json"
        assert main(
            ["analyze", "abl_sched", "-o", str(tmp_path),
             "--update-baseline", "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        assert main(["compare", "abl_sched", "--baseline", str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out

        doc = json.loads(baseline.read_text())
        doc["experiments"]["abl_sched"]["primary.makespan"] /= 2  # now "2x slower"
        baseline.write_text(json.dumps(doc))
        assert main(["compare", "abl_sched", "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "primary.makespan" in out


class TestChaos:
    def test_proj10_under_faults_passes_gate(self, capsys):
        assert main(["chaos", "proj10", "--expect", "retry,fault"]) == 0
        captured = capsys.readouterr()
        assert "resilience:" in captured.out
        assert "chaos gate passed" in captured.err
        assert "chaos plan: seed=0" in captured.err

    def test_gate_fails_on_absent_kind(self, capsys):
        # proj10 retries through every fault; nothing is ever drained
        assert main(["chaos", "proj10", "--expect", "drain"]) == 1
        assert "chaos gate FAILED: no drain events" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        assert main(["chaos", "nope"]) == 2

    def test_unknown_expect_kind(self, capsys):
        assert main(["chaos", "proj10", "--expect", "explode"]) == 2
        assert "unknown lifecycle kind" in capsys.readouterr().err


class TestFlame:
    def test_writes_flamegraph_and_collapsed_stacks(self, tmp_path, capsys):
        assert main(
            ["flame", "abl_sched", "-o", str(tmp_path), "--interval", "0.002"]
        ) == 0
        captured = capsys.readouterr()
        assert "profile:" in captured.out
        assert "samples" in captured.out
        assert "flamegraph ->" in captured.err
        assert "sampler:" in captured.err
        html = (tmp_path / "flame_abl_sched.html").read_text()
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html
        collapsed = (tmp_path / "flame_abl_sched.collapsed.txt").read_text()
        for line in collapsed.splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and frames

    def test_scrape_out_saves_valid_exposition(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.txt"
        assert main(
            ["flame", "abl_sched", "-o", str(tmp_path), "--interval", "0.002",
             "--scrape-out", str(scrape)]
        ) == 0
        err = capsys.readouterr().err
        assert "serving live metrics at http://127.0.0.1:" in err
        assert "/metrics scrape ->" in err
        body = scrape.read_text()
        assert "# TYPE repro_live_workers gauge" in body
        assert "repro_live_sampler_passes" in body

    def test_unknown_experiment(self, capsys):
        assert main(["flame", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestTop:
    def test_renders_frames_while_running(self, capsys):
        assert main(["top", "abl_sched", "--interval", "0.02"]) == 0
        captured = capsys.readouterr()
        assert "live · " in captured.out
        assert "run complete" in captured.err
        # piped stdout (capsys) is not a tty: frames append, no ANSI clears
        assert "\x1b[" not in captured.out

    def test_frames_cap(self, capsys):
        assert main(["top", "abl_sched", "--interval", "0.01", "--frames", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("live · ") <= 2

    def test_unknown_experiment(self, capsys):
        assert main(["top", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestWebdemo:
    def test_generates_site(self, tmp_path, capsys):
        assert main(["webdemo", str(tmp_path / "site")]) == 0
        assert (tmp_path / "site" / "index.html").exists()


class TestTopics:
    def test_prints_ten_topics(self, capsys):
        assert main(["topics"]) == 0
        out = capsys.readouterr().out
        assert "Parallel quicksort" in out
        assert "repro.apps.webfetch" in out
        assert out.count("implemented in") == 10


class TestArgparse:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestServe:
    def test_sim_run_prints_report(self, capsys):
        assert main(["serve", "steady", "--backend", "sim", "--requests", "800"]) == 0
        out = capsys.readouterr().out
        assert "throughput_rps" in out and "cache_hit_rate" in out

    def test_deterministic_output(self, capsys):
        args = ["serve", "bursty", "--backend", "sim", "--requests", "800"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_compare_without_baseline_exits_2(self, tmp_path, capsys):
        baseline = str(tmp_path / "serve.json")
        assert main(
            ["serve", "steady", "--requests", "500", "--compare", "--baseline", baseline]
        ) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_baseline_roundtrip(self, tmp_path, capsys):
        baseline = str(tmp_path / "serve.json")
        assert main(
            ["serve", "overload", "--requests", "2000",
             "--update-baseline", "--baseline", baseline]
        ) == 0
        capsys.readouterr()
        assert main(
            ["serve", "overload", "--requests", "2000",
             "--compare", "--baseline", baseline]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_scrape_out_exposes_serve_metrics(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.prom"
        assert main(
            ["serve", "steady", "--requests", "500", "--scrape-out", str(scrape)]
        ) == 0
        text = scrape.read_text()
        assert "repro_serve_submitted" in text
        assert "repro_serve_queue_depth" in text

    def test_slo_flag_prints_decomposition_and_verdict(self, capsys):
        assert main(["serve", "steady", "--requests", "800", "--slo"]) == 0
        out = capsys.readouterr().out
        assert "latency decomposition" in out
        assert "SLO verdict" in out
        assert "dominant stage:" in out

    def test_slo_violation_exits_3_deterministically(self, capsys):
        args = ["serve", "overload", "--requests", "20000", "--slo"]
        assert main(args) == 3
        first = capsys.readouterr().out
        assert main(args) == 3
        assert capsys.readouterr().out == first  # byte-identical under sim

    def test_custom_objectives_gate(self, capsys):
        ok = ["serve", "steady", "--requests", "800", "--objectives", "p99<=10"]
        assert main(ok) == 0
        capsys.readouterr()
        bad = ["serve", "steady", "--requests", "800", "--objectives", "p99<=0"]
        assert main(bad) == 3
        assert "SLO gate FAILED" in capsys.readouterr().err

    def test_bad_objective_exits_2(self, capsys):
        assert main(
            ["serve", "steady", "--requests", "100", "--objectives", "nope<=1"]
        ) == 2
        assert "metric must be one of" in capsys.readouterr().err

    def test_waterfall_writes_selfcontained_html(self, tmp_path, capsys):
        wf = tmp_path / "wf.html"
        assert main(
            ["serve", "steady", "--requests", "800", "--waterfall", str(wf)]
        ) == 0
        text = wf.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text and "Latency decomposition" in text
        assert "<script" not in text  # self-contained: no JavaScript

    def test_slo_scrape_exports_burn_rate_counters(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.prom"
        assert main(
            ["serve", "steady", "--requests", "500", "--slo",
             "--scrape-out", str(scrape)]
        ) == 0
        text = scrape.read_text()
        assert "repro_slo_burn_rate" in text
        assert "repro_slo_ok" in text

    def test_traced_compare_uses_its_own_baseline_id(self, tmp_path, capsys):
        baseline = str(tmp_path / "serve.json")
        assert main(
            ["serve", "steady", "--requests", "800", "--slo",
             "--update-baseline", "--baseline", baseline]
        ) == 0
        capsys.readouterr()
        store = json.load(open(baseline))
        assert list(store["experiments"]) == ["serve_steady_sim_slo"]
        assert main(
            ["serve", "steady", "--requests", "800", "--slo",
             "--compare", "--baseline", baseline]
        ) == 0
        assert "no regressions" in capsys.readouterr().out


class TestSloCommand:
    def test_verdict_only_run_passes_on_steady(self, capsys):
        assert main(["slo", "steady", "--requests", "800"]) == 0
        out = capsys.readouterr()
        assert "SLO verdict" in out.out
        assert "SLO gate passed" in out.err

    def test_violation_exits_3(self, capsys):
        assert main(["slo", "overload", "--requests", "20000"]) == 3
        assert "SLO gate FAILED" in capsys.readouterr().err

    def test_deterministic_output(self, capsys):
        # bursty at this size breaches shed_rate: same verdict, same bytes
        args = ["slo", "bursty", "--requests", "800"]
        assert main(args) == 3
        first = capsys.readouterr().out
        assert main(args) == 3
        assert capsys.readouterr().out == first


class TestRuns:
    def seeded_store(self, tmp_path):
        """A store holding the acceptance trajectory: two healthy serve
        runs and one deliberately-regressed one (the CLI backfills the
        committed snapshot on top, making >= 3 healthy points)."""
        from repro.obs.store import RunRecord, RunStore

        store = RunStore(tmp_path / "runs")
        for ts, rps in ((1.0, 1990.0), (2.0, 1975.0)):
            store.append(
                RunRecord(
                    exp_id="serve_overload_sim",
                    kind="serve",
                    metrics={"serve.throughput_rps": rps},
                    backend="sim",
                    timestamp=ts,
                    revision="sim",
                )
            )
        store.append(
            RunRecord(
                exp_id="serve_overload_sim",
                kind="serve",
                metrics={"serve.throughput_rps": 410.0},
                backend="sim",
                timestamp=3.0,
                revision="sim",
                tags=("regressed:deliberate",),
            )
        )
        return str(tmp_path / "runs")

    def test_ingest_then_list_shows_committed_history(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert main(["runs", "ingest", "--store", store]) == 0
        assert "ingested" in capsys.readouterr().err
        assert main(["runs", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        for exp_id in ("pool_micro", "sim_micro", "trace_micro", "serve_overload_sim"):
            assert exp_id in out
        assert "snapshot" in out

    def test_timeline_flags_regressed_run_and_writes_html(self, tmp_path, capsys):
        # the acceptance scenario: >= 3 ingested runs (committed BENCH
        # backfill + two healthy) plus one deliberately-regressed run ->
        # change-point flagged, exit code != 0, self-contained HTML out
        store = self.seeded_store(tmp_path)
        html_path = tmp_path / "timeline.html"
        rc = main(
            ["runs", "timeline", "serve_overload_sim",
             "--store", store, "-o", str(html_path)]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "change-point: serve.throughput_rps at run 3" in captured.out
        assert "change-point(s) detected" in captured.err
        html = html_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<script" not in html

    def test_timeline_without_history_exits_2(self, tmp_path, capsys):
        rc = main(
            ["runs", "timeline", "serve_overload_sim",
             "--store", str(tmp_path / "empty"), "--no-backfill"]
        )
        assert rc == 2
        assert "no stored runs" in capsys.readouterr().err

    def test_query_filters_and_aggregates(self, tmp_path, capsys):
        store = self.seeded_store(tmp_path)
        assert main(
            ["runs", "query", "serve_overload_sim", "--store", store,
             "--no-backfill", "--kind", "serve"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 record(s)" in out
        assert main(
            ["runs", "query", "--store", store, "--no-backfill",
             "--tag", "regressed:deliberate"]
        ) == 0
        assert "1 record(s)" in capsys.readouterr().out
        assert main(
            ["runs", "query", "--store", store, "--no-backfill",
             "--metric", "serve.throughput_rps", "--reduce", "min", "--group-by", "exp"]
        ) == 0
        out = capsys.readouterr().out
        assert "serve_overload_sim" in out and "410" in out

    def test_list_scrape_exports_store_gauges(self, tmp_path, capsys):
        store = self.seeded_store(tmp_path)
        scrape = tmp_path / "scrape.txt"
        assert main(
            ["runs", "list", "--store", store, "--no-backfill",
             "--scrape-out", str(scrape)]
        ) == 0
        text = scrape.read_text()
        assert "# TYPE repro_store_runs gauge" in text
        assert "repro_store_runs 3" in text
        assert "repro_store_runs_serve 3" in text

    def test_compact_reports_removed_lines(self, tmp_path, capsys):
        store = self.seeded_store(tmp_path)
        assert main(["runs", "compact", "--store", store]) == 0
        assert "0 line(s) removed" in capsys.readouterr().err


class TestAutoRecord:
    def test_serve_records_and_double_ingest_is_byte_identical(self, tmp_path, capsys):
        from pathlib import Path

        store = tmp_path / "runs"
        args = ["serve", "bursty", "--requests", "2000", "--store", str(store)]
        assert main(args) == 0
        assert "run recorded" in capsys.readouterr().err
        shards = {p.name: p.read_bytes() for p in Path(store).glob("*.jsonl")}
        assert shards
        # the same deterministic sim run again: stamped from the injected
        # clock, so the record dedups and the store stays byte-identical
        assert main(args) == 0
        capsys.readouterr()
        assert {p.name: p.read_bytes() for p in Path(store).glob("*.jsonl")} == shards

    def test_serve_record_carries_identity(self, tmp_path, capsys):
        from repro.obs.store import RunStore

        store = tmp_path / "runs"
        assert main(
            ["serve", "steady", "--requests", "1000", "--seed", "7",
             "--store", str(store)]
        ) == 0
        capsys.readouterr()
        (rec,) = list(RunStore(store))
        assert rec.exp_id == "serve_steady_sim"
        assert rec.kind == "serve"
        assert (rec.backend, rec.cores, rec.seed) == ("sim", 4, 7)
        assert rec.revision == "sim"
        assert rec.metrics["serve.completed"] > 0

    def test_no_record_writes_nothing(self, tmp_path, capsys):
        store = tmp_path / "runs"
        assert main(
            ["serve", "steady", "--requests", "1000",
             "--store", str(store), "--no-record"]
        ) == 0
        assert "run recorded" not in capsys.readouterr().err
        assert not store.exists()

    def test_analyze_records_analysis_metrics(self, tmp_path, capsys):
        from repro.obs.store import RunStore

        store = tmp_path / "runs"
        assert main(
            ["analyze", "abl_sched", "-o", str(tmp_path), "--store", str(store)]
        ) == 0
        capsys.readouterr()
        (rec,) = list(RunStore(store))
        assert rec.kind == "analyze"
        assert rec.exp_id == "abl_sched"
        assert "primary.makespan" in rec.metrics

    def test_compare_records_verdict_and_deltas(self, tmp_path, capsys):
        import json

        from repro.obs.store import RunStore

        baseline = tmp_path / "baselines.json"
        store = tmp_path / "runs"
        assert main(
            ["analyze", "abl_sched", "-o", str(tmp_path), "--update-baseline",
             "--baseline", str(baseline), "--no-record"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["compare", "abl_sched", "--baseline", str(baseline), "--store", str(store)]
        ) == 0
        capsys.readouterr()
        # doctor the stored makespan: the re-run now "regresses", and the
        # verdict + per-metric deltas land in the store
        doc = json.loads(baseline.read_text())
        doc["experiments"]["abl_sched"]["primary.makespan"] /= 2
        baseline.write_text(json.dumps(doc))
        assert main(
            ["compare", "abl_sched", "--baseline", str(baseline), "--store", str(store)]
        ) == 1
        capsys.readouterr()
        records = RunStore(store).query(kind="compare")
        assert [r.verdicts["baseline"] for r in records] == ["pass", "regression"]
        bad = records[-1]
        assert bad.regressed
        assert bad.deltas["primary.makespan"] == pytest.approx(1.0)
        assert "regressed:primary.makespan" in bad.tags

    def test_chaos_records_gate_verdict(self, tmp_path, capsys):
        from repro.obs.store import RunStore

        store = tmp_path / "runs"
        assert main(
            ["chaos", "proj10", "--expect", "retry,fault", "--store", str(store)]
        ) == 0
        capsys.readouterr()
        (rec,) = list(RunStore(store))
        assert rec.kind == "chaos"
        assert rec.verdicts == {"chaos": "pass"}
        assert rec.seed == 0
