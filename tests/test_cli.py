"""Tests for the ``python -m repro`` command-line front end."""

import json

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig1", "fig2", "proj1", "proj10", "sem", "tab_likert"):
            assert exp_id in out


class TestRun:
    def test_run_one(self, capsys):
        assert main(["run", "tab_assess"]) == 0
        out = capsys.readouterr().out
        assert "assessment scheme" in out
        assert "TOTAL" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_with_output_dir(self, tmp_path, capsys):
        assert main(["run", "fig2", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "fig2.txt").exists()
        assert "week 12" in (tmp_path / "fig2.txt").read_text()


class TestAnalyze:
    def test_prints_analysis_and_writes_html(self, tmp_path, capsys):
        assert main(["analyze", "abl_sched", "-o", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "trace analysis:" in captured.out
        assert "parallelism" in captured.out
        assert "scheduler:" in captured.out
        assert "work/span per group" in captured.out
        html = (tmp_path / "analysis_abl_sched.html").read_text()
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html

    def test_max_events_cap_warns(self, tmp_path, capsys):
        assert main(["analyze", "abl_sched", "-o", str(tmp_path), "--max-events", "10"]) == 0
        assert "events dropped" in capsys.readouterr().err

    def test_unknown_experiment(self, tmp_path, capsys):
        assert main(["analyze", "nope", "-o", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCompare:
    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        baseline = str(tmp_path / "baselines.json")
        assert main(["compare", "abl_sched", "--baseline", baseline]) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_roundtrip_then_injected_regression(self, tmp_path, capsys):
        """The CI gate end-to-end: a run compared against its own baseline
        passes; doctoring the stored makespan to half flags a regression
        and exits non-zero."""
        baseline = tmp_path / "baselines.json"
        assert main(
            ["analyze", "abl_sched", "-o", str(tmp_path),
             "--update-baseline", "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        assert main(["compare", "abl_sched", "--baseline", str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out

        doc = json.loads(baseline.read_text())
        doc["experiments"]["abl_sched"]["primary.makespan"] /= 2  # now "2x slower"
        baseline.write_text(json.dumps(doc))
        assert main(["compare", "abl_sched", "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "primary.makespan" in out


class TestChaos:
    def test_proj10_under_faults_passes_gate(self, capsys):
        assert main(["chaos", "proj10", "--expect", "retry,fault"]) == 0
        captured = capsys.readouterr()
        assert "resilience:" in captured.out
        assert "chaos gate passed" in captured.err
        assert "chaos plan: seed=0" in captured.err

    def test_gate_fails_on_absent_kind(self, capsys):
        # proj10 retries through every fault; nothing is ever drained
        assert main(["chaos", "proj10", "--expect", "drain"]) == 1
        assert "chaos gate FAILED: no drain events" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        assert main(["chaos", "nope"]) == 2

    def test_unknown_expect_kind(self, capsys):
        assert main(["chaos", "proj10", "--expect", "explode"]) == 2
        assert "unknown lifecycle kind" in capsys.readouterr().err


class TestFlame:
    def test_writes_flamegraph_and_collapsed_stacks(self, tmp_path, capsys):
        assert main(
            ["flame", "abl_sched", "-o", str(tmp_path), "--interval", "0.002"]
        ) == 0
        captured = capsys.readouterr()
        assert "profile:" in captured.out
        assert "samples" in captured.out
        assert "flamegraph ->" in captured.err
        assert "sampler:" in captured.err
        html = (tmp_path / "flame_abl_sched.html").read_text()
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html
        collapsed = (tmp_path / "flame_abl_sched.collapsed.txt").read_text()
        for line in collapsed.splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and frames

    def test_scrape_out_saves_valid_exposition(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.txt"
        assert main(
            ["flame", "abl_sched", "-o", str(tmp_path), "--interval", "0.002",
             "--scrape-out", str(scrape)]
        ) == 0
        err = capsys.readouterr().err
        assert "serving live metrics at http://127.0.0.1:" in err
        assert "/metrics scrape ->" in err
        body = scrape.read_text()
        assert "# TYPE repro_live_workers gauge" in body
        assert "repro_live_sampler_passes" in body

    def test_unknown_experiment(self, capsys):
        assert main(["flame", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestTop:
    def test_renders_frames_while_running(self, capsys):
        assert main(["top", "abl_sched", "--interval", "0.02"]) == 0
        captured = capsys.readouterr()
        assert "live · " in captured.out
        assert "run complete" in captured.err
        # piped stdout (capsys) is not a tty: frames append, no ANSI clears
        assert "\x1b[" not in captured.out

    def test_frames_cap(self, capsys):
        assert main(["top", "abl_sched", "--interval", "0.01", "--frames", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("live · ") <= 2

    def test_unknown_experiment(self, capsys):
        assert main(["top", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestWebdemo:
    def test_generates_site(self, tmp_path, capsys):
        assert main(["webdemo", str(tmp_path / "site")]) == 0
        assert (tmp_path / "site" / "index.html").exists()


class TestTopics:
    def test_prints_ten_topics(self, capsys):
        assert main(["topics"]) == 0
        out = capsys.readouterr().out
        assert "Parallel quicksort" in out
        assert "repro.apps.webfetch" in out
        assert out.count("implemented in") == 10


class TestArgparse:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestServe:
    def test_sim_run_prints_report(self, capsys):
        assert main(["serve", "steady", "--backend", "sim", "--requests", "800"]) == 0
        out = capsys.readouterr().out
        assert "throughput_rps" in out and "cache_hit_rate" in out

    def test_deterministic_output(self, capsys):
        args = ["serve", "bursty", "--backend", "sim", "--requests", "800"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_compare_without_baseline_exits_2(self, tmp_path, capsys):
        baseline = str(tmp_path / "serve.json")
        assert main(
            ["serve", "steady", "--requests", "500", "--compare", "--baseline", baseline]
        ) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_baseline_roundtrip(self, tmp_path, capsys):
        baseline = str(tmp_path / "serve.json")
        assert main(
            ["serve", "overload", "--requests", "2000",
             "--update-baseline", "--baseline", baseline]
        ) == 0
        capsys.readouterr()
        assert main(
            ["serve", "overload", "--requests", "2000",
             "--compare", "--baseline", baseline]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_scrape_out_exposes_serve_metrics(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.prom"
        assert main(
            ["serve", "steady", "--requests", "500", "--scrape-out", str(scrape)]
        ) == 0
        text = scrape.read_text()
        assert "repro_serve_submitted" in text
        assert "repro_serve_queue_depth" in text

    def test_slo_flag_prints_decomposition_and_verdict(self, capsys):
        assert main(["serve", "steady", "--requests", "800", "--slo"]) == 0
        out = capsys.readouterr().out
        assert "latency decomposition" in out
        assert "SLO verdict" in out
        assert "dominant stage:" in out

    def test_slo_violation_exits_3_deterministically(self, capsys):
        args = ["serve", "overload", "--requests", "20000", "--slo"]
        assert main(args) == 3
        first = capsys.readouterr().out
        assert main(args) == 3
        assert capsys.readouterr().out == first  # byte-identical under sim

    def test_custom_objectives_gate(self, capsys):
        ok = ["serve", "steady", "--requests", "800", "--objectives", "p99<=10"]
        assert main(ok) == 0
        capsys.readouterr()
        bad = ["serve", "steady", "--requests", "800", "--objectives", "p99<=0"]
        assert main(bad) == 3
        assert "SLO gate FAILED" in capsys.readouterr().err

    def test_bad_objective_exits_2(self, capsys):
        assert main(
            ["serve", "steady", "--requests", "100", "--objectives", "nope<=1"]
        ) == 2
        assert "metric must be one of" in capsys.readouterr().err

    def test_waterfall_writes_selfcontained_html(self, tmp_path, capsys):
        wf = tmp_path / "wf.html"
        assert main(
            ["serve", "steady", "--requests", "800", "--waterfall", str(wf)]
        ) == 0
        text = wf.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text and "Latency decomposition" in text
        assert "<script" not in text  # self-contained: no JavaScript

    def test_slo_scrape_exports_burn_rate_counters(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.prom"
        assert main(
            ["serve", "steady", "--requests", "500", "--slo",
             "--scrape-out", str(scrape)]
        ) == 0
        text = scrape.read_text()
        assert "repro_slo_burn_rate" in text
        assert "repro_slo_ok" in text

    def test_traced_compare_uses_its_own_baseline_id(self, tmp_path, capsys):
        baseline = str(tmp_path / "serve.json")
        assert main(
            ["serve", "steady", "--requests", "800", "--slo",
             "--update-baseline", "--baseline", baseline]
        ) == 0
        capsys.readouterr()
        store = json.load(open(baseline))
        assert list(store["experiments"]) == ["serve_steady_sim_slo"]
        assert main(
            ["serve", "steady", "--requests", "800", "--slo",
             "--compare", "--baseline", baseline]
        ) == 0
        assert "no regressions" in capsys.readouterr().out


class TestSloCommand:
    def test_verdict_only_run_passes_on_steady(self, capsys):
        assert main(["slo", "steady", "--requests", "800"]) == 0
        out = capsys.readouterr()
        assert "SLO verdict" in out.out
        assert "SLO gate passed" in out.err

    def test_violation_exits_3(self, capsys):
        assert main(["slo", "overload", "--requests", "20000"]) == 3
        assert "SLO gate FAILED" in capsys.readouterr().err

    def test_deterministic_output(self, capsys):
        # bursty at this size breaches shed_rate: same verdict, same bytes
        args = ["slo", "bursty", "--requests", "800"]
        assert main(args) == 3
        first = capsys.readouterr().out
        assert main(args) == 3
        assert capsys.readouterr().out == first
