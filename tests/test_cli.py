"""Tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig1", "fig2", "proj1", "proj10", "sem", "tab_likert"):
            assert exp_id in out


class TestRun:
    def test_run_one(self, capsys):
        assert main(["run", "tab_assess"]) == 0
        out = capsys.readouterr().out
        assert "assessment scheme" in out
        assert "TOTAL" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_with_output_dir(self, tmp_path, capsys):
        assert main(["run", "fig2", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "fig2.txt").exists()
        assert "week 12" in (tmp_path / "fig2.txt").read_text()


class TestWebdemo:
    def test_generates_site(self, tmp_path, capsys):
        assert main(["webdemo", str(tmp_path / "site")]) == 0
        assert (tmp_path / "site" / "index.html").exists()


class TestTopics:
    def test_prints_ten_topics(self, capsys):
        assert main(["topics"]) == 0
        out = capsys.readouterr().out
        assert "Parallel quicksort" in out
        assert "repro.apps.webfetch" in out
        assert out.count("implemented in") == 10


class TestArgparse:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
