"""Every example script must run clean end to end.

The examples are deliverable (b); this suite keeps them green the same
way the unit tests keep the library green.  Each runs in a subprocess
(fresh interpreter, like a user would) with a generous timeout.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
SRC_DIR = Path(__file__).parent.parent / "src"


def _env_with_src():
    """Subprocess env with ``src`` importable, however pytest was invoked."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = str(SRC_DIR) + (os.pathsep + existing if existing else "")
    return env


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, tmp_path):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=tmp_path,  # examples must not depend on the CWD
        env=_env_with_src(),
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_example_inventory():
    """At least the documented set of examples exists."""
    expected = {
        "quickstart.py",
        "thumbnails_responsive.py",
        "quicksort_three_ways.py",
        "kernels_pyjama.py",
        "semester_simulation.py",
        "memory_model_explorer.py",
        "web_connections.py",
        "race_condition_webpages.py",
    }
    assert expected <= set(EXAMPLES)


def test_examples_have_module_docstrings():
    for script in EXAMPLES:
        text = (EXAMPLES_DIR / script).read_text()
        assert text.lstrip().startswith('"""'), f"{script} lacks a docstring"
        assert "Run:" in text, f"{script} docstring lacks a Run: line"
