"""Tests for clock abstractions."""

import pytest

from repro.util.stopwatch import Clock, ManualClock, Stopwatch, WallClock


class TestManualClock:
    def test_starts_at_zero(self):
        assert ManualClock().now() == 0.0

    def test_custom_start(self):
        assert ManualClock(5.0).now() == 5.0

    def test_advance(self):
        c = ManualClock()
        assert c.advance(2.5) == 2.5
        assert c.now() == 2.5

    def test_advance_to(self):
        c = ManualClock(1.0)
        c.advance_to(4.0)
        assert c.now() == 4.0

    def test_no_negative_advance(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_no_time_travel(self):
        c = ManualClock(10.0)
        with pytest.raises(ValueError):
            c.advance_to(9.0)

    def test_advance_to_now_is_ok(self):
        c = ManualClock(3.0)
        c.advance_to(3.0)
        assert c.now() == 3.0

    def test_satisfies_clock_protocol(self):
        assert isinstance(ManualClock(), Clock)
        assert isinstance(WallClock(), Clock)


class TestWallClock:
    def test_monotonic(self):
        c = WallClock()
        a = c.now()
        b = c.now()
        assert b >= a


class TestStopwatch:
    def test_accumulates_over_manual_clock(self):
        clock = ManualClock()
        sw = Stopwatch(clock)
        sw.start()
        clock.advance(2.0)
        assert sw.stop() == 2.0
        sw.start()
        clock.advance(3.0)
        sw.stop()
        assert sw.elapsed == 5.0

    def test_context_manager(self):
        clock = ManualClock()
        with Stopwatch(clock) as sw:
            clock.advance(1.5)
        assert sw.elapsed == 1.5

    def test_double_start_rejected(self):
        sw = Stopwatch(ManualClock())
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch(ManualClock()).stop()

    def test_reset(self):
        clock = ManualClock()
        sw = Stopwatch(clock)
        sw.start()
        clock.advance(1.0)
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_running_property(self):
        sw = Stopwatch(ManualClock())
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_default_clock_is_wall(self):
        assert isinstance(Stopwatch().clock, WallClock)
