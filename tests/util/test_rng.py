"""Tests for deterministic random-stream derivation."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import derive, spawn_seeds, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_distinct_parts(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_64_bit_range(self):
        h = stable_hash("anything")
        assert 0 <= h < 2**64

    @given(st.lists(st.text(), max_size=4))
    def test_stable_over_types(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)


class TestDerive:
    def test_same_names_same_stream(self):
        a = derive(42, "images").integers(0, 1000, size=10)
        b = derive(42, "images").integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        a = derive(42, "images").integers(0, 10**9, size=10)
        b = derive(42, "network").integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = derive(1, "x").integers(0, 10**9, size=10)
        b = derive(2, "x").integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_independence_of_draw_counts(self):
        """Drawing more from one stream must not perturb a sibling."""
        rng_a = derive(7, "a")
        rng_a.integers(0, 100, size=1000)  # consume a lot
        b_after = derive(7, "b").integers(0, 10**9, size=5)
        b_fresh = derive(7, "b").integers(0, 10**9, size=5)
        assert np.array_equal(b_after, b_fresh)

    def test_multi_part_names(self):
        a = derive(3, "student", 17).random()
        b = derive(3, "student", 18).random()
        assert a != b


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds1 = list(spawn_seeds(5, 10, "workers"))
        seeds2 = list(spawn_seeds(5, 10, "workers"))
        assert len(seeds1) == 10
        assert seeds1 == seeds2

    def test_all_distinct(self):
        seeds = list(spawn_seeds(5, 100))
        assert len(set(seeds)) == 100

    def test_valid_numpy_seeds(self):
        for s in spawn_seeds(1, 5):
            np.random.default_rng(s)  # must not raise
