"""Tests for summary statistics and parallel-performance metrics."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    amdahl_speedup,
    efficiency,
    gustafson_speedup,
    karp_flatt,
    speedup,
    summarize,
)


class TestSummarize:
    def test_single_value(self):
        s = summarize([4.0])
        assert s.n == 1
        assert s.mean == 4.0
        assert s.std == 0.0
        assert s.minimum == s.maximum == 4.0

    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_halfwidth_shrinks_with_n(self):
        small = summarize([1.0, 2.0, 3.0])
        big = summarize([1.0, 2.0, 3.0] * 100)
        assert big.ci95_halfwidth < small.ci95_halfwidth

    def test_str_renders(self):
        assert "mean" in str(summarize([1.0, 2.0]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_bounds_property(self, xs):
        s = summarize(xs)
        tol = 1e-9 * max(1.0, abs(s.maximum), abs(s.minimum))
        assert s.minimum - tol <= s.median <= s.maximum + tol
        assert s.minimum - tol <= s.mean <= s.maximum + tol
        assert s.p25 <= s.median + tol
        assert s.median <= s.p75 + tol
        assert s.p75 <= s.p95 + tol
        assert s.p95 <= s.maximum + tol


class TestSpeedupEfficiency:
    def test_speedup_basic(self):
        assert speedup(10.0, 2.5) == 4.0

    def test_efficiency_basic(self):
        assert efficiency(10.0, 2.5, 8) == 0.5

    def test_speedup_rejects_zero_parallel(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_efficiency_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            efficiency(10.0, 1.0, 0)


class TestAmdahl:
    def test_no_serial_fraction_is_linear(self):
        assert amdahl_speedup(0.0, 16) == 16.0

    def test_all_serial_is_one(self):
        assert amdahl_speedup(1.0, 64) == 1.0

    def test_classic_value(self):
        # f=0.05, p=8 -> 1/(0.05 + 0.95/8) ~= 5.925
        assert amdahl_speedup(0.05, 8) == pytest.approx(5.9259, abs=1e-3)

    def test_asymptote(self):
        # As p grows, speedup approaches 1/f.
        assert amdahl_speedup(0.1, 10**6) == pytest.approx(10.0, rel=1e-3)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=1024))
    def test_bounded_by_cores_and_inverse_f(self, f, p):
        s = amdahl_speedup(f, p)
        assert 1.0 <= s + 1e-12
        assert s <= p + 1e-9
        if f > 0:
            assert s <= 1.0 / f + 1e-9

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 4)


class TestGustafson:
    def test_no_serial_fraction_is_linear(self):
        assert gustafson_speedup(0.0, 32) == 32.0

    def test_all_serial_is_one(self):
        assert gustafson_speedup(1.0, 32) == 1.0

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=2, max_value=512))
    def test_gustafson_at_least_amdahl(self, f, p):
        assert gustafson_speedup(f, p) >= amdahl_speedup(f, p) - 1e-9


class TestKarpFlatt:
    def test_perfect_speedup_gives_zero(self):
        assert karp_flatt(8.0, 8) == pytest.approx(0.0)

    def test_no_speedup_gives_one(self):
        assert karp_flatt(1.0, 8) == pytest.approx(1.0)

    def test_roundtrip_with_amdahl(self):
        f = 0.07
        p = 16
        s = amdahl_speedup(f, p)
        assert karp_flatt(s, p) == pytest.approx(f, rel=1e-6)

    def test_rejects_single_core(self):
        with pytest.raises(ValueError):
            karp_flatt(1.0, 1)
