"""Tests for the table renderer."""

import pytest

from repro.util.tables import Table


class TestTable:
    def test_basic_render(self):
        t = Table(["a", "b"])
        t.add_row([1, 2.5])
        out = t.render()
        assert "a" in out and "b" in out
        assert "1" in out and "2.500" in out

    def test_title(self):
        t = Table(["x"], title="My Title")
        t.add_row([1])
        assert "My Title" in t.render()

    def test_row_width_mismatch_rejected(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_precision(self):
        t = Table(["v"], precision=1)
        t.add_row([3.14159])
        assert "3.1" in t.render()
        assert "3.14" not in t.render()

    def test_bool_formatting(self):
        t = Table(["flag"])
        t.add_row([True]).add_row([False])
        out = t.render()
        assert "yes" in out and "no" in out

    def test_nan_formatting(self):
        t = Table(["v"])
        t.add_row([float("nan")])
        assert "-" in t.render()

    def test_markdown(self):
        t = Table(["a", "b"], title="T")
        t.add_row([1, 2])
        md = t.render_markdown()
        assert "| a | b |" in md
        assert "|---|---|" in md

    def test_extend_and_len(self):
        t = Table(["a"])
        t.extend([[1], [2], [3]])
        assert len(t) == 3

    def test_to_dicts_preserves_raw_values(self):
        t = Table(["name", "v"])
        t.add_row(["x", 1.23456])
        d = t.to_dicts()
        assert d == [{"name": "x", "v": 1.23456}]

    def test_alignment_consistent(self):
        t = Table(["col"])
        t.add_row(["short"]).add_row(["a much longer cell"])
        lines = t.render().splitlines()
        assert len({len(line) for line in lines[-2:]}) == 1
