"""Tests for exhaustive exploration under the three memory models."""

import pytest

from repro.memmodel import SNIPPETS, Program, explore, load, random_runs, store
from repro.memmodel.interpreter import Interpreter
from repro.memmodel.program import exit_unless as exit_unless_stub


def joint_regs(result, pairs):
    """Is there an outcome where every (tid, reg) == value holds at once?"""
    return any(
        not o.deadlocked and all(o.reg(t, r) == v for (t, r), v in pairs.items())
        for o in result.outcomes
    )


class TestBasics:
    def test_single_thread_deterministic(self):
        p = Program(shared={"x": 0}, threads=[[store("x", 5), load("r", "x")]])
        res = explore(p, "sc")
        assert len(res.outcomes) == 1
        out = next(iter(res.outcomes))
        assert out.get("x") == 5
        assert out.reg(0, "r") == 5

    def test_unknown_model_rejected(self):
        p = Program(shared={"x": 0}, threads=[[store("x", 1)]])
        with pytest.raises(ValueError):
            Interpreter(p, "weird")

    def test_max_states_guard(self):
        big = Program(
            shared={f"v{i}": 0 for i in range(6)},
            threads=[[store(f"v{i}", 1) for i in range(6)] for _ in range(3)],
        )
        with pytest.raises(RuntimeError, match="max_states"):
            explore(big, "relaxed", max_states=50)

    def test_models_agree_on_race_free_program(self):
        p = SNIPPETS["lost_update_locked"].program
        for model in ("sc", "tso", "relaxed"):
            res = explore(p, model)
            assert res.shared_values("x") == {2}, model


class TestLostUpdate:
    def test_sc_allows_lost_update(self):
        res = explore(SNIPPETS["lost_update"].program, "sc")
        assert res.shared_values("x") == {1, 2}

    def test_lock_fixes_it(self):
        res = explore(SNIPPETS["lost_update_locked"].program, "sc")
        assert res.shared_values("x") == {2}
        assert not res.has_deadlock

    def test_frequencies_show_both(self):
        counts, _ = random_runs(SNIPPETS["lost_update"].program, "sc", runs=300, seed=1)
        values = {o.get("x") for o in counts}
        assert values == {1, 2}


class TestAtomicAdd:
    def test_atomic_counter_always_exact(self):
        for model in ("sc", "tso", "relaxed"):
            res = explore(SNIPPETS["lost_update_atomic"].program, model)
            assert res.shared_values("x") == {2}, model

    def test_atomic_add_drains_buffer(self):
        """An atomic RMW publishes the thread's buffered stores first."""
        from repro.memmodel import atomic_add, load, store

        p = Program(
            shared={"x": 0, "y": 0},
            threads=[
                [store("y", 7), atomic_add("x", 1)],
                [load("rx", "x"), exit_unless_stub("rx", 1), load("ry", "y")],
            ],
        )
        # under tso: if reader saw x==1, y's buffered store must be visible
        res = explore(p, "tso")
        assert not any(
            not o.deadlocked and o.reg(1, "rx") == 1 and o.reg(1, "ry") == 0
            for o in res.outcomes
        )


class TestStoreBuffering:
    BOTH_ZERO = {(0, "r0"): 0, (1, "r1"): 0}

    def test_sc_forbids_both_zero(self):
        res = explore(SNIPPETS["store_buffering"].program, "sc")
        assert not joint_regs(res, self.BOTH_ZERO)

    def test_tso_allows_both_zero(self):
        res = explore(SNIPPETS["store_buffering"].program, "tso")
        assert joint_regs(res, self.BOTH_ZERO)

    def test_fence_restores_sc(self):
        res = explore(SNIPPETS["store_buffering_fenced"].program, "tso")
        assert not joint_regs(res, self.BOTH_ZERO)

    def test_relaxed_also_allows(self):
        res = explore(SNIPPETS["store_buffering"].program, "relaxed")
        assert joint_regs(res, self.BOTH_ZERO)


class TestMessagePassing:
    STALE = {(1, "rf"): 1, (1, "rd"): 0}  # flag seen, data stale

    def test_sc_forbids_stale_read(self):
        res = explore(SNIPPETS["message_passing"].program, "sc")
        assert not joint_regs(res, self.STALE)

    def test_tso_forbids_stale_read(self):
        """FIFO buffers preserve store order: MP is safe under TSO."""
        res = explore(SNIPPETS["message_passing"].program, "tso")
        assert not joint_regs(res, self.STALE)

    def test_relaxed_allows_stale_read(self):
        res = explore(SNIPPETS["message_passing"].program, "relaxed")
        assert joint_regs(res, self.STALE)

    def test_volatile_fixes_relaxed(self):
        res = explore(SNIPPETS["message_passing_volatile"].program, "relaxed")
        assert not joint_regs(res, self.STALE)


class TestDirtyPublication:
    HALF_BUILT = {(1, "rref"): 1, (1, "ra"): 0}

    def test_relaxed_exposes_half_built_object(self):
        res = explore(SNIPPETS["dirty_publication"].program, "relaxed")
        assert joint_regs(res, self.HALF_BUILT)

    def test_volatile_publication_safe(self):
        res = explore(SNIPPETS["dirty_publication_volatile"].program, "relaxed")
        assert not joint_regs(res, self.HALF_BUILT)


class TestDeadlock:
    def test_abba_deadlocks(self):
        res = explore(SNIPPETS["deadlock_abba"].program, "sc")
        assert res.has_deadlock
        # and some interleavings complete fine — that's why it's insidious
        assert any(not o.deadlocked for o in res.outcomes)

    def test_ordered_never_deadlocks(self):
        res = explore(SNIPPETS["deadlock_ordered"].program, "sc")
        assert not res.has_deadlock
        assert res.shared_values("x") == {2}

    def test_deadlock_frequency_sampled(self):
        counts, _ = random_runs(SNIPPETS["deadlock_abba"].program, "sc", runs=200, seed=3)
        assert any(o.deadlocked for o in counts)


class TestModelHierarchy:
    """Weaker models allow a superset of outcomes."""

    @pytest.mark.parametrize(
        "name", ["lost_update", "store_buffering", "message_passing", "dirty_publication"]
    )
    def test_outcome_sets_nest(self, name):
        p = SNIPPETS[name].program
        sc = explore(p, "sc").outcomes
        tso = explore(p, "tso").outcomes
        relaxed = explore(p, "relaxed").outcomes
        assert sc <= tso <= relaxed

    def test_determinism(self):
        a = explore(SNIPPETS["store_buffering"].program, "tso")
        b = explore(SNIPPETS["store_buffering"].program, "tso")
        assert a.outcomes == b.outcomes
        assert a.states_explored == b.states_explored
