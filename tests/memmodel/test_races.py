"""Tests for the vector-clock race detector."""

import pytest

from repro.memmodel import SNIPPETS, RaceDetector, detect_races, random_runs
from repro.memmodel.interpreter import TraceEvent
from repro.memmodel.races import VectorClock


def traces_of(snippet_name, model="sc", runs=50, seed=0):
    _counts, traces = random_runs(
        SNIPPETS[snippet_name].program, model, runs=runs, seed=seed, collect_traces=True
    )
    return traces


class TestVectorClock:
    def test_tick_and_get(self):
        vc = VectorClock()
        assert vc.get(0) == 0
        vc.tick(0)
        assert vc.get(0) == 1

    def test_join_takes_max(self):
        a = VectorClock({0: 3, 1: 1})
        b = VectorClock({1: 5})
        a.join(b)
        assert a.get(0) == 3 and a.get(1) == 5

    def test_happens_before(self):
        a = VectorClock({0: 1})
        b = VectorClock({0: 2, 1: 1})
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_incomparable(self):
        a = VectorClock({0: 2})
        b = VectorClock({1: 2})
        assert not a.happens_before(b)
        assert not b.happens_before(a)

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a.get(0) == 1


class TestDetectorPrimitives:
    def test_write_write_race(self):
        det = RaceDetector()
        det.observe(TraceEvent(0, "write", "x"))
        det.observe(TraceEvent(1, "write", "x"))
        assert det.racy
        assert det.racy_variables() == {"x"}

    def test_write_read_race(self):
        det = RaceDetector()
        det.observe(TraceEvent(0, "write", "x"))
        det.observe(TraceEvent(1, "read", "x"))
        assert det.racy

    def test_read_read_no_race(self):
        det = RaceDetector()
        det.observe(TraceEvent(0, "read", "x"))
        det.observe(TraceEvent(1, "read", "x"))
        assert not det.racy

    def test_same_thread_no_race(self):
        det = RaceDetector()
        det.observe(TraceEvent(0, "write", "x"))
        det.observe(TraceEvent(0, "write", "x"))
        det.observe(TraceEvent(0, "read", "x"))
        assert not det.racy

    def test_lock_orders_accesses(self):
        det = RaceDetector()
        det.observe(TraceEvent(0, "lock", "m"))
        det.observe(TraceEvent(0, "write", "x"))
        det.observe(TraceEvent(0, "unlock", "m"))
        det.observe(TraceEvent(1, "lock", "m"))
        det.observe(TraceEvent(1, "write", "x"))
        det.observe(TraceEvent(1, "unlock", "m"))
        assert not det.racy

    def test_unrelated_locks_do_not_order(self):
        det = RaceDetector()
        det.observe(TraceEvent(0, "lock", "a"))
        det.observe(TraceEvent(0, "write", "x"))
        det.observe(TraceEvent(0, "unlock", "a"))
        det.observe(TraceEvent(1, "lock", "b"))
        det.observe(TraceEvent(1, "write", "x"))
        det.observe(TraceEvent(1, "unlock", "b"))
        assert det.racy

    def test_volatile_release_acquire_orders(self):
        det = RaceDetector()
        det.observe(TraceEvent(0, "write", "data"))
        det.observe(TraceEvent(0, "vwrite", "flag"))
        det.observe(TraceEvent(1, "vread", "flag"))
        det.observe(TraceEvent(1, "read", "data"))
        assert not det.racy

    def test_plain_flag_does_not_order(self):
        det = RaceDetector()
        det.observe(TraceEvent(0, "write", "data"))
        det.observe(TraceEvent(0, "write", "flag"))
        det.observe(TraceEvent(1, "read", "flag"))
        det.observe(TraceEvent(1, "read", "data"))
        assert det.racy
        assert {"data", "flag"} & det.racy_variables()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RaceDetector().observe(TraceEvent(0, "teleport", "x"))


class TestDetectorOnSnippets:
    """The project-8 story: buggy snippets race, fixed ones don't."""

    def test_lost_update_races(self):
        races = detect_races(traces_of("lost_update"))
        assert any(r.var == "x" for r in races)

    def test_locked_counter_race_free(self):
        assert detect_races(traces_of("lost_update_locked")) == []

    def test_message_passing_races(self):
        races = detect_races(traces_of("message_passing"))
        assert any(r.var == "data" for r in races)

    def test_volatile_message_passing_race_free(self):
        assert detect_races(traces_of("message_passing_volatile")) == []

    def test_dirty_publication_races(self):
        assert detect_races(traces_of("dirty_publication")) != []

    def test_volatile_publication_race_free(self):
        assert detect_races(traces_of("dirty_publication_volatile")) == []

    def test_racy_flag_matches_detector(self):
        """Snippet metadata agrees with the detector for every snippet.

        Note this checks ``racy``, not ``buggy``: store_buffering_fenced
        is outcome-correct yet formally racy, and the deadlock snippets
        are buggy without racing — the distinction is the lesson.
        """
        for name, snippet in SNIPPETS.items():
            races = detect_races(traces_of(name, runs=80, seed=11))
            if snippet.racy:
                assert races, f"{name} should race"
            else:
                assert races == [], f"{name} should be race-free"

    def test_fence_fixes_outcome_but_not_race(self):
        """The headline nuance, pinned explicitly."""
        fenced = SNIPPETS["store_buffering_fenced"]
        assert not fenced.buggy and fenced.racy
        assert detect_races(traces_of("store_buffering_fenced")) != []
        volatile = SNIPPETS["store_buffering_volatile"]
        assert not volatile.buggy and not volatile.racy
        assert detect_races(traces_of("store_buffering_volatile")) == []
