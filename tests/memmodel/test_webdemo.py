"""Tests for the interactive race-condition web pages (§V-B outcome)."""

import json
import re

import pytest

from repro.memmodel import SNIPPETS
from repro.memmodel.webdemo import render_snippet_page, write_demo_site


class TestRenderSnippetPage:
    def test_page_is_self_contained_html(self):
        page = render_snippet_page(SNIPPETS["lost_update"])
        assert page.startswith("<!DOCTYPE html>")
        assert "<script>" in page and "</script>" in page
        assert "http://" not in page and "https://" not in page  # no network

    def test_program_instructions_shown(self):
        page = render_snippet_page(SNIPPETS["lost_update"])
        assert "r = read(x)" in page
        assert "write(x, r)" in page

    def test_lesson_and_flags_shown(self):
        snippet = SNIPPETS["store_buffering_fenced"]
        page = render_snippet_page(snippet)
        assert "fences order" in page  # the lesson text
        assert "<b>buggy:</b> no" in page
        assert "racy (by happens-before):</b> yes" in page

    def test_schedules_embedded_for_all_models(self):
        page = render_snippet_page(SNIPPETS["store_buffering"])
        match = re.search(r"const SCHEDULES = (\{.*?\});\n", page, re.DOTALL)
        assert match, "SCHEDULES payload missing"
        schedules = json.loads(match.group(1))
        assert set(schedules) == {"sc", "tso", "relaxed"}
        for model, traces in schedules.items():
            assert "round-robin" in traces
            assert "thread-0-first" in traces
            # every step carries a machine state the widget can render
            for step in traces["round-robin"]:
                assert {"label", "pcs", "regs", "buffers", "mem"} <= set(step)

    def test_traces_reach_completion(self):
        page = render_snippet_page(SNIPPETS["message_passing"])
        schedules = json.loads(re.search(r"const SCHEDULES = (\{.*?\});\n", page, re.DOTALL).group(1))
        trace = schedules["sc"]["round-robin"]
        final = trace[-1]
        lengths = [2, 3]  # producer 2 instrs; consumer 3 (load, guard, load)
        assert final["pcs"] == lengths

    def test_outcome_sets_listed_per_model(self):
        page = render_snippet_page(SNIPPETS["lost_update"])
        assert "<h3>sc (" in page
        assert "<h3>tso (" in page
        assert "<h3>relaxed (" in page
        assert "x=1" in page and "x=2" in page  # both outcomes visible

    def test_deadlock_marked_bad(self):
        page = render_snippet_page(SNIPPETS["deadlock_abba"])
        assert 'class="bad"' in page
        assert "DEADLOCK" in page

    def test_html_escaping(self):
        # instruction text contains no raw angle brackets, but the guard
        # against injection should hold for names/lessons regardless
        page = render_snippet_page(SNIPPETS["message_passing_volatile"])
        assert "<script>alert" not in page


class TestSiteGeneration:
    def test_write_demo_site(self, tmp_path):
        paths = write_demo_site(tmp_path, names=["lost_update", "lost_update_locked"])
        names = {p.name for p in paths}
        assert names == {"lost_update.html", "lost_update_locked.html", "index.html"}
        for p in paths:
            assert p.exists()
            assert p.stat().st_size > 500

    def test_index_links_every_page(self, tmp_path):
        write_demo_site(tmp_path)
        index = (tmp_path / "index.html").read_text()
        for name in SNIPPETS:
            assert f'href="{name}.html"' in index

    def test_unknown_snippet_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            write_demo_site(tmp_path, names=["not_a_snippet"])

    def test_full_site_under_a_second_of_content(self, tmp_path):
        """All eleven pages generate; the biggest stays comfortably small
        (self-contained does not mean bloated)."""
        paths = write_demo_site(tmp_path)
        assert len(paths) == len(SNIPPETS) + 1
        assert max(p.stat().st_size for p in paths) < 300_000
