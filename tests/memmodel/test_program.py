"""Tests for the thread-program DSL."""

import pytest

from repro.memmodel import Program, add, fence, load, lock, store, unlock


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program(shared={}, threads=[])

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError, match="unknown shared variable"):
            Program(shared={"x": 0}, threads=[[load("r", "y")]])

    def test_unbalanced_lock_rejected(self):
        with pytest.raises(ValueError, match="never released"):
            Program(shared={"x": 0}, threads=[[lock("m"), store("x", 1)]])

    def test_unlock_unheld_rejected(self):
        with pytest.raises(ValueError, match="unheld"):
            Program(shared={"x": 0}, threads=[[unlock("m")]])

    def test_relock_rejected(self):
        with pytest.raises(ValueError, match="relock"):
            Program(shared={"x": 0}, threads=[[lock("m"), lock("m"), unlock("m"), unlock("m")]])

    def test_valid_program(self):
        p = Program(
            shared={"x": 0},
            threads=[[lock("m"), load("r", "x"), add("r", 1), store("x", "r"), unlock("m")]],
        )
        assert p.n_threads == 1
        assert p.total_instructions() == 5


class TestStringForms:
    def test_instruction_str(self):
        assert str(load("r", "x")) == "r = read(x)"
        assert str(store("x", 1)) == "write(x, 1)"
        assert str(add("r", 1)) == "r += 1"
        assert str(fence()) == "fence"
        assert str(lock("m")) == "lock(m)"

    def test_program_str(self):
        p = Program(shared={"x": 0}, threads=[[store("x", 1)]], name="demo")
        s = str(p)
        assert "demo" in s and "thread 0" in s
