"""Tests for blocking and concurrent queues."""

import threading

import pytest

from repro.concurrentlib import ArrayBlockingQueue, ConcurrentLinkedQueue


class TestArrayBlockingQueue:
    def test_fifo(self):
        q = ArrayBlockingQueue(10)
        for i in range(5):
            q.put(i)
        assert [q.take() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ArrayBlockingQueue(0)

    def test_put_blocks_when_full(self):
        q = ArrayBlockingQueue(1)
        q.put("a")
        assert q.put("b", timeout=0.02) is False

    def test_take_blocks_when_empty(self):
        q = ArrayBlockingQueue(1)
        with pytest.raises(TimeoutError):
            q.take(timeout=0.02)

    def test_offer_poll_nonblocking(self):
        q = ArrayBlockingQueue(1)
        assert q.offer("x") is True
        assert q.offer("y") is False
        assert q.poll() == "x"
        assert q.poll() is None

    def test_len_and_remaining(self):
        q = ArrayBlockingQueue(3)
        q.put(1)
        assert len(q) == 1
        assert q.remaining_capacity() == 2

    def test_producer_consumer_handoff(self):
        q = ArrayBlockingQueue(4)
        n = 200
        got = []

        def producer():
            for i in range(n):
                q.put(i, timeout=5)

        def consumer():
            for _ in range(n):
                got.append(q.take(timeout=5))

        threads = [threading.Thread(target=producer), threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert got == list(range(n))

    def test_none_is_a_valid_item(self):
        q = ArrayBlockingQueue(1)
        q.put(None)
        assert q.take(timeout=1) is None


class TestConcurrentLinkedQueue:
    def test_fifo(self):
        q = ConcurrentLinkedQueue()
        for i in range(5):
            q.offer(i)
        assert [q.poll() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_poll_empty_returns_none(self):
        assert ConcurrentLinkedQueue().poll() is None

    def test_peek(self):
        q = ConcurrentLinkedQueue([1, 2])
        assert q.peek() == 1
        assert q.poll() == 1  # peek did not consume

    def test_none_rejected(self):
        with pytest.raises(ValueError):
            ConcurrentLinkedQueue().offer(None)

    def test_len_and_is_empty(self):
        q = ConcurrentLinkedQueue()
        assert q.is_empty()
        q.offer("x")
        assert len(q) == 1

    def test_init_from_iterable(self):
        q = ConcurrentLinkedQueue("abc")
        assert q.drain() == ["a", "b", "c"]

    def test_concurrent_producers_consumers_no_loss(self):
        q = ConcurrentLinkedQueue()
        n_producers, per_producer = 4, 300
        consumed = []
        consumed_lock = threading.Lock()
        done_producing = threading.Event()

        def producer(pid):
            for i in range(per_producer):
                q.offer((pid, i))

        def consumer():
            while True:
                item = q.poll()
                if item is not None:
                    with consumed_lock:
                        consumed.append(item)
                elif done_producing.is_set() and q.is_empty():
                    return

        producers = [threading.Thread(target=producer, args=(p,)) for p in range(n_producers)]
        consumers = [threading.Thread(target=consumer) for _ in range(3)]
        for t in consumers + producers:
            t.start()
        for t in producers:
            t.join()
        done_producing.set()
        for t in consumers:
            t.join()
        assert len(consumed) == n_producers * per_producer
        assert len(set(consumed)) == len(consumed)  # no duplicates

    def test_per_producer_order_preserved(self):
        """FIFO per producer survives concurrency (queue-level guarantee)."""
        q = ConcurrentLinkedQueue()

        def producer(pid):
            for i in range(100):
                q.offer((pid, i))

        threads = [threading.Thread(target=producer, args=(p,)) for p in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        drained = q.drain()
        for pid in range(3):
            mine = [i for p, i in drained if p == pid]
            assert mine == sorted(mine)
