"""Tests for atomic variables."""

import threading


from repro.concurrentlib import AtomicBoolean, AtomicInteger, AtomicReference


class TestAtomicInteger:
    def test_initial_and_get(self):
        assert AtomicInteger().get() == 0
        assert AtomicInteger(5).get() == 5

    def test_increment_family(self):
        a = AtomicInteger(10)
        assert a.get_and_increment() == 10
        assert a.get() == 11
        assert a.increment_and_get() == 12

    def test_add_family(self):
        a = AtomicInteger()
        assert a.get_and_add(5) == 0
        assert a.add_and_get(5) == 10

    def test_cas_success_and_failure(self):
        a = AtomicInteger(7)
        assert a.compare_and_set(7, 8) is True
        assert a.compare_and_set(7, 9) is False
        assert a.get() == 8
        assert a.cas_failures == 1

    def test_update_and_get(self):
        a = AtomicInteger(3)
        assert a.update_and_get(lambda v: v * v) == 9

    def test_int_conversion(self):
        assert int(AtomicInteger(42)) == 42

    def test_no_lost_updates_under_threads(self):
        a = AtomicInteger()
        n_threads, per_thread = 8, 500

        def bump():
            for _ in range(per_thread):
                a.increment_and_get()

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert a.get() == n_threads * per_thread

    def test_unique_tickets_via_get_and_increment(self):
        """get_and_increment hands out each value exactly once."""
        a = AtomicInteger()
        seen = []
        lock = threading.Lock()

        def taker():
            got = [a.get_and_increment() for _ in range(100)]
            with lock:
                seen.extend(got)

        threads = [threading.Thread(target=taker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == list(range(400))


class TestAtomicBoolean:
    def test_default_false(self):
        assert AtomicBoolean().get() is False

    def test_one_shot_latch(self):
        """Exactly one thread wins compare_and_set(False, True)."""
        latch = AtomicBoolean()
        winners = []
        lock = threading.Lock()

        def attempt(i):
            if latch.compare_and_set(False, True):
                with lock:
                    winners.append(i)

        threads = [threading.Thread(target=attempt, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(winners) == 1

    def test_get_and_set(self):
        b = AtomicBoolean(True)
        assert b.get_and_set(False) is True
        assert b.get() is False

    def test_bool_conversion(self):
        assert bool(AtomicBoolean(True)) is True


class TestAtomicReference:
    def test_get_set(self):
        r = AtomicReference("a")
        assert r.get() == "a"
        r.set("b")
        assert r.get() == "b"

    def test_cas(self):
        r = AtomicReference("x")
        assert r.compare_and_set("x", "y") is True
        assert r.compare_and_set("x", "z") is False
        assert r.get() == "y"

    def test_cas_none_expected(self):
        r = AtomicReference()
        assert r.compare_and_set(None, "first") is True
        assert r.get() == "first"

    def test_get_and_set(self):
        r = AtomicReference(1)
        assert r.get_and_set(2) == 1

    def test_update_and_get(self):
        r = AtomicReference([1])
        assert r.update_and_get(lambda v: v + [2]) == [1, 2]
