"""Stress-harness runs over every real collection class."""

import pytest

from repro.concurrentlib import (
    ConcurrentHashSet,
    ConcurrentLinkedQueue,
    CopyOnWriteArrayList,
    StripedHashMap,
    SynchronizedDict,
    SynchronizedList,
    SynchronizedSet,
)
from repro.concurrentlib.stress import stress_list, stress_map, stress_queue, stress_set


class TestMapsUnderStress:
    @pytest.mark.parametrize("make", [SynchronizedDict, lambda: StripedHashMap(stripes=8)])
    def test_no_lost_updates(self, make):
        outcome = stress_map(make(), threads=4, ops_per_thread=400)
        assert outcome.consistent, (outcome.expected, outcome.observed)


class TestSetsUnderStress:
    @pytest.mark.parametrize("make", [SynchronizedSet, ConcurrentHashSet])
    def test_unique_winners_and_membership(self, make):
        outcome = stress_set(make(), threads=4, elements=200)
        assert outcome.consistent


class TestQueueUnderStress:
    def test_nothing_lost_fifo_per_producer(self):
        outcome = stress_queue(ConcurrentLinkedQueue(), producers=3, per_producer=300)
        assert outcome.consistent


class TestListsUnderStress:
    @pytest.mark.parametrize("make", [SynchronizedList, CopyOnWriteArrayList])
    def test_exact_multiset(self, make):
        outcome = stress_list(make(), threads=4, per_thread=60)
        assert outcome.consistent

    def test_plain_list_would_fail_the_same_bar(self):
        """Sanity: the invariant is strong enough to catch a lost append.

        (A plain list under CPython often *passes* thanks to the GIL, so
        instead of racing one we corrupt deliberately and check the
        harness notices.)"""

        class LossyList(SynchronizedList):
            def __init__(self):
                super().__init__()
                self._dropped = False

            def append(self, item):
                if not self._dropped:
                    self._dropped = True
                    return  # lose exactly one append
                super().append(item)

        outcome = stress_list(LossyList(), threads=2, per_thread=20)
        assert not outcome.consistent
