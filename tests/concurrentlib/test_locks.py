"""Tests for lock primitives."""

import threading
import time

import pytest

from repro.concurrentlib import FairLock, ReadWriteLock, UnfairLock


class TestUnfairLock:
    def test_mutual_exclusion(self):
        lock = UnfairLock()
        state = {"v": 0}

        def bump():
            for _ in range(200):
                with lock:
                    state["v"] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert state["v"] == 800
        assert lock.acquisitions == 800

    def test_timeout(self):
        lock = UnfairLock()
        lock.acquire()
        assert lock.acquire(timeout=0.01) is False
        lock.release()

    def test_locked(self):
        lock = UnfairLock()
        assert not lock.locked()
        with lock:
            assert lock.locked()


class TestFairLock:
    def test_mutual_exclusion(self):
        lock = FairLock()
        inside = {"n": 0, "max": 0}

        def enter():
            with lock:
                inside["n"] += 1
                inside["max"] = max(inside["max"], inside["n"])
                inside["n"] -= 1

        threads = [threading.Thread(target=enter) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert inside["max"] == 1

    def test_fifo_grant_order(self):
        """Tickets are served strictly in request order."""
        lock = FairLock()
        lock.acquire()  # hold so the others queue up
        started = []
        go = threading.Barrier(5)

        def contender(i):
            go.wait(timeout=5)
            time.sleep(i * 0.02)  # stagger request order deterministically
            started.append(i)
            with lock:
                pass

        threads = [threading.Thread(target=contender, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        go.wait(timeout=5)
        time.sleep(0.3)  # let all four request in staggered order
        lock.release()
        for t in threads:
            t.join()
        # grant_log[0] is the main thread's ticket 0; the rest follow FIFO
        assert lock.grant_log == sorted(lock.grant_log)

    def test_timeout_returns_false(self):
        lock = FairLock()
        lock.acquire()
        t0 = time.monotonic()
        assert lock.acquire(timeout=0.05) is False
        assert time.monotonic() - t0 < 1.0
        lock.release()


class TestReadWriteLock:
    def test_readers_share(self):
        rw = ReadWriteLock()
        n_readers = 4
        entered = threading.Barrier(n_readers, action=lambda: None)

        def reader():
            with rw.read():
                entered.wait(timeout=5)  # all inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(n_readers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rw.max_concurrent_readers == n_readers

    def test_writer_exclusive(self):
        rw = ReadWriteLock()
        log = []

        def writer(i):
            with rw.write():
                log.append(("start", i))
                time.sleep(0.01)
                log.append(("end", i))

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # writes never interleave: starts and ends strictly alternate
        for a, b in zip(log[::2], log[1::2]):
            assert a[0] == "start" and b[0] == "end" and a[1] == b[1]

    def test_writer_blocks_reader(self):
        rw = ReadWriteLock()
        rw.acquire_write()
        assert rw.acquire_read(timeout=0.05) is False
        rw.release_write()
        assert rw.acquire_read(timeout=1.0) is True
        rw.release_read()

    def test_reader_blocks_writer(self):
        rw = ReadWriteLock()
        rw.acquire_read()
        assert rw.acquire_write(timeout=0.05) is False
        rw.release_read()
        assert rw.acquire_write(timeout=1.0) is True
        rw.release_write()

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a queued writer gates later readers."""
        rw = ReadWriteLock()
        rw.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()

        def writer():
            writer_started.set()
            rw.acquire_write(timeout=5)
            rw.release_write()
            writer_done.set()

        t = threading.Thread(target=writer)
        t.start()
        writer_started.wait(timeout=5)
        time.sleep(0.05)  # writer is now waiting
        assert rw.acquire_read(timeout=0.05) is False  # gated by waiting writer
        rw.release_read()  # writer proceeds
        assert writer_done.wait(timeout=5)
        t.join()

    def test_release_without_hold_rejected(self):
        rw = ReadWriteLock()
        with pytest.raises(RuntimeError):
            rw.release_read()
        with pytest.raises(RuntimeError):
            rw.release_write()
