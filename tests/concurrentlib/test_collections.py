"""Tests for maps, lists and sets."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrentlib import (
    ConcurrentHashSet,
    CopyOnWriteArrayList,
    StripedHashMap,
    SynchronizedDict,
    SynchronizedList,
    SynchronizedSet,
)


@pytest.mark.parametrize("make_map", [SynchronizedDict, lambda: StripedHashMap(stripes=8)])
class TestMapContract:
    def test_get_put(self, make_map):
        m = make_map()
        assert m.get("k") is None
        assert m.get("k", 0) == 0
        assert m.put("k", 1) is None
        assert m.put("k", 2) == 1
        assert m.get("k") == 2

    def test_put_if_absent(self, make_map):
        m = make_map()
        assert m.put_if_absent("k", 1) is None
        assert m.put_if_absent("k", 2) == 1
        assert m.get("k") == 1

    def test_remove(self, make_map):
        m = make_map()
        m.put("k", 1)
        assert m.remove("k") == 1
        assert m.remove("k") is None
        assert "k" not in m

    def test_compute(self, make_map):
        m = make_map()
        assert m.compute("c", lambda _k, v: (v or 0) + 1) == 1
        assert m.compute("c", lambda _k, v: (v or 0) + 1) == 2

    def test_len_contains_snapshot(self, make_map):
        m = make_map()
        for i in range(20):
            m.put(i, i * i)
        assert len(m) == 20
        assert 7 in m
        assert m.snapshot() == {i: i * i for i in range(20)}

    def test_concurrent_compute_no_lost_updates(self, make_map):
        m = make_map()

        def bump():
            for i in range(100):
                m.compute(i % 10, lambda _k, v: (v or 0) + 1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(m.snapshot().values()) == 400


class TestStripedHashMap:
    def test_stripes_validation(self):
        with pytest.raises(ValueError):
            StripedHashMap(stripes=0)

    def test_keys_weakly_consistent(self):
        m = StripedHashMap(stripes=4)
        for i in range(10):
            m.put(i, i)
        assert sorted(m.keys()) == list(range(10))

    @given(st.dictionaries(st.integers(), st.integers(), max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_matches_plain_dict(self, data):
        m = StripedHashMap(stripes=3)
        for k, v in data.items():
            m.put(k, v)
        assert m.snapshot() == data


@pytest.mark.parametrize("make_list", [SynchronizedList, CopyOnWriteArrayList])
class TestListContract:
    def test_append_index_len(self, make_list):
        lst = make_list()
        lst.append("a")
        lst.append("b")
        assert len(lst) == 2
        assert lst[0] == "a"
        assert "b" in lst

    def test_remove(self, make_list):
        lst = make_list()
        lst.append(1)
        assert lst.remove(1) is True
        assert lst.remove(1) is False
        assert len(lst) == 0

    def test_snapshot(self, make_list):
        lst = make_list()
        for i in range(5):
            lst.append(i)
        assert lst.snapshot() == [0, 1, 2, 3, 4]

    def test_concurrent_appends_no_loss(self, make_list):
        lst = make_list()

        def producer(pid):
            for i in range(100):
                lst.append((pid, i))

        threads = [threading.Thread(target=producer, args=(p,)) for p in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(lst) == 400


class TestCopyOnWriteSpecifics:
    def test_iterator_is_snapshot(self):
        lst = CopyOnWriteArrayList([1, 2, 3])
        it = iter(lst)
        lst.append(4)
        assert list(it) == [1, 2, 3]  # iterator ignores later mutation

    def test_init_from_iterable(self):
        assert CopyOnWriteArrayList("ab").snapshot() == ["a", "b"]

    def test_copies_counted(self):
        lst = CopyOnWriteArrayList()
        for i in range(5):
            lst.append(i)
        lst.remove(0)
        assert lst.copies_made == 6

    def test_iteration_safe_during_concurrent_writes(self):
        lst = CopyOnWriteArrayList(range(100))
        errors = []

        def mutator():
            for i in range(100):
                lst.append(i)
                lst.remove(i)

        def iterator():
            try:
                for _ in range(50):
                    total = sum(1 for _ in lst)
                    assert total >= 100 - 100  # just iterate without blowing up
            except RuntimeError as e:  # pragma: no cover
                errors.append(e)

        threads = [threading.Thread(target=mutator), threading.Thread(target=iterator)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


@pytest.mark.parametrize("make_set", [SynchronizedSet, ConcurrentHashSet])
class TestSetContract:
    def test_add_and_membership(self, make_set):
        s = make_set()
        assert s.add(1) is True
        assert s.add(1) is False
        assert 1 in s
        assert len(s) == 1

    def test_discard(self, make_set):
        s = make_set()
        s.add("x")
        assert s.discard("x") is True
        assert s.discard("x") is False

    def test_snapshot(self, make_set):
        s = make_set()
        for i in range(10):
            s.add(i)
        assert s.snapshot() == set(range(10))

    def test_concurrent_adds_unique_winner(self, make_set):
        """add() returns True exactly once per distinct element."""
        s = make_set()
        wins = []
        lock = threading.Lock()

        def adder():
            local = [e for e in range(50) if s.add(e)]
            with lock:
                wins.extend(local)

        threads = [threading.Thread(target=adder) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(wins) == list(range(50))


class TestConcurrentHashSetSpecifics:
    def test_init_from_iterable_and_iter(self):
        s = ConcurrentHashSet([3, 1, 2])
        assert sorted(s) == [1, 2, 3]
