"""Tests for the contention model (project 9's performance substrate)."""

import pytest

from repro.concurrentlib.model import MODELS, run_collection_workload
from repro.executor import InlineExecutor, SimExecutor
from repro.machine import MachineSpec


def sim(cores=8):
    return SimExecutor(MachineSpec(name=f"m{cores}", cores=cores, dispatch_overhead=0.0))


def makespan(model_name, read_fraction, tasks=8, ops=100):
    ex = sim()
    run_collection_workload(
        ex,
        MODELS[model_name],
        tasks=tasks,
        ops_per_task=ops,
        read_fraction=read_fraction,
        seed=7,
    )
    return ex.elapsed()


class TestWorkloadMechanics:
    def test_counts_add_up(self):
        ex = InlineExecutor()
        result = run_collection_workload(ex, MODELS["synchronized"], tasks=4, ops_per_task=50)
        assert result.reads + result.writes == 200

    def test_read_fraction_respected_roughly(self):
        ex = InlineExecutor()
        result = run_collection_workload(
            ex, MODELS["synchronized"], tasks=8, ops_per_task=200, read_fraction=0.9
        )
        frac = result.reads / (result.reads + result.writes)
        assert 0.85 < frac < 0.95

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            run_collection_workload(InlineExecutor(), MODELS["cow"], read_fraction=1.5)

    def test_deterministic(self):
        assert makespan("striped-16", 0.5) == makespan("striped-16", 0.5)

    def test_all_models_run(self):
        for name in MODELS:
            ex = InlineExecutor()
            run_collection_workload(ex, MODELS[name], tasks=2, ops_per_task=10)


class TestPaperShapes:
    """The comparisons project 9 reports: who wins under which mix."""

    def test_striping_beats_global_lock_under_writes(self):
        assert makespan("striped-16", 0.0) < makespan("synchronized", 0.0)

    def test_more_stripes_help(self):
        assert makespan("striped-16", 0.0) <= makespan("striped-4", 0.0) + 1e-9

    def test_cow_wins_read_mostly(self):
        assert makespan("cow", 1.0) < makespan("synchronized", 1.0)

    def test_cow_loses_write_heavy(self):
        assert makespan("cow", 0.0) > makespan("striped-16", 0.0)

    def test_rwlock_near_free_for_pure_reads(self):
        assert makespan("rwlock", 1.0) < makespan("synchronized", 1.0)

    def test_synchronized_serialises_completely(self):
        """With a global lock, 8 tasks take ~8x one task's time."""
        one = makespan("synchronized", 0.5, tasks=1)
        eight = makespan("synchronized", 0.5, tasks=8)
        assert eight > 6 * one
