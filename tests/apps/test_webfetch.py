"""Tests for project 10: concurrent web access."""

import pytest

from repro.apps import make_website
from repro.apps.webfetch import fetch_all, optimal_connections, sweep_connections


class TestFetchAll:
    def test_validation(self):
        site = make_website(3, seed=1)
        with pytest.raises(ValueError):
            fetch_all(site, 0)

    def test_empty_site_rejected(self):
        from repro.apps.corpus import WebSite

        with pytest.raises(ValueError):
            fetch_all(WebSite(pages=(), bandwidth_bytes_per_s=1e6), 2)

    def test_report_accounting(self):
        site = make_website(10, seed=2)
        report = fetch_all(site, 4)
        assert report.n_pages == 10
        assert report.total_bytes == site.total_bytes
        assert report.makespan > 0
        assert report.throughput_bytes_per_s > 0

    def test_deterministic(self):
        site = make_website(8, seed=3)
        assert fetch_all(site, 3).makespan == fetch_all(site, 3).makespan

    def test_serial_lower_bound(self):
        """One connection pays every latency in sequence."""
        site = make_website(10, seed=4)
        r1 = fetch_all(site, 1)
        min_time = sum(p.server_latency for p in site.pages) + site.total_bytes / site.bandwidth_bytes_per_s
        assert r1.makespan >= min_time * 0.99

    def test_bandwidth_floor(self):
        """No concurrency can beat the shared-downlink transfer time."""
        site = make_website(10, seed=5)
        floor = site.total_bytes / site.bandwidth_bytes_per_s
        for k in (1, 4, 16):
            assert fetch_all(site, k).makespan >= floor * 0.99


class TestProjectShapes:
    """Project 10's question: how many connections should be opened?"""

    def test_more_connections_hide_latency(self):
        # latency-dominated site: huge latencies, tiny pages
        site = make_website(32, seed=6, latency_range=(0.5, 1.0), size_range=(1000, 2000))
        r1 = fetch_all(site, 1)
        r8 = fetch_all(site, 8)
        r32 = fetch_all(site, 32)
        assert r8.makespan < r1.makespan / 4
        assert r32.makespan <= r8.makespan

    def test_bandwidth_bound_plateaus(self):
        # bandwidth-dominated: tiny latencies, big pages
        site = make_website(
            32, seed=7, latency_range=(0.001, 0.002), size_range=(400_000, 600_000),
            bandwidth_bytes_per_s=1_000_000,
        )
        r1 = fetch_all(site, 1)
        r4 = fetch_all(site, 4)
        r32 = fetch_all(site, 32)
        # barely any win available: the downlink is the bottleneck
        assert r4.makespan > r1.makespan * 0.9
        assert r32.makespan > r1.makespan * 0.9

    def test_sweep_and_optimum(self):
        site = make_website(24, seed=8, latency_range=(0.2, 0.4))
        reports = sweep_connections(site, [1, 2, 4, 8, 16])
        assert [r.connections for r in reports] == [1, 2, 4, 8, 16]
        best = optimal_connections(reports)
        assert best > 1  # concurrency always helps a latency-laden site

    def test_optimal_connections_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_connections([])
