"""Tests for project 2: parallel quicksort three ways."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sorting import VARIANTS, quicksort, random_array
from repro.executor import InlineExecutor, SimExecutor
from repro.machine import MachineSpec


class TestCorrectness:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_sorts(self, executor, variant):
        data = random_array(500, seed=1)
        assert quicksort(executor, data, variant=variant) == sorted(data)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_empty_and_single(self, executor, variant):
        assert quicksort(executor, [], variant=variant) == []
        assert quicksort(executor, [7], variant=variant) == [7]

    def test_duplicates(self, executor):
        data = [3, 1, 3, 1, 3] * 40
        assert quicksort(executor, data, variant="ptask", cutoff=8) == sorted(data)

    def test_already_sorted(self, executor):
        data = list(range(300))
        assert quicksort(executor, data, variant="ptask") == data

    def test_reverse_sorted(self, executor):
        data = list(range(300, 0, -1))
        assert quicksort(executor, data, variant="threads") == sorted(data)

    def test_unknown_variant(self, executor):
        with pytest.raises(ValueError):
            quicksort(executor, [1], variant="bogo")

    def test_cutoff_validation(self, executor):
        with pytest.raises(ValueError):
            quicksort(executor, [1], cutoff=0)

    def test_input_not_mutated(self, executor):
        data = [3, 1, 2]
        quicksort(executor, data, variant="ptask")
        assert data == [3, 1, 2]

    @given(st.lists(st.integers(-10**6, 10**6), max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_sorted(self, xs):
        ex = InlineExecutor()
        for variant in VARIANTS:
            assert quicksort(ex, xs, variant=variant, cutoff=16) == sorted(xs)


class TestSpeedupShapes:
    """Virtual-time checks of the project's performance findings."""

    @staticmethod
    def elapsed(variant, cores, n=4000, cutoff=64):
        ex = SimExecutor(MachineSpec(name="m", cores=cores, dispatch_overhead=0.0))
        data = random_array(n, seed=5)
        quicksort(ex, data, variant=variant, cutoff=cutoff)
        return ex.elapsed()

    @pytest.mark.parametrize("variant", ["ptask", "pyjama", "threads"])
    def test_parallel_beats_sequential(self, variant):
        t_seq = self.elapsed("sequential", 8)
        t_par = self.elapsed(variant, 8)
        assert t_par < t_seq

    def test_speedup_grows_with_cores_then_flattens(self):
        t1 = self.elapsed("ptask", 1)
        t4 = self.elapsed("ptask", 4)
        t16 = self.elapsed("ptask", 16)
        t64 = self.elapsed("ptask", 64)
        assert t4 < t1
        assert t16 < t4
        # sublinear: the sequential partition prefix (Amdahl) bites
        assert t1 / t64 < 64 * 0.6

    def test_tiny_cutoff_hurts_with_overhead(self):
        """Task-per-two-elements drowns in dispatch overhead."""

        def with_overhead(cutoff):
            ex = SimExecutor(MachineSpec(name="m", cores=8, dispatch_overhead=5e-5))
            quicksort(ex, random_array(2000, seed=6), variant="ptask", cutoff=cutoff)
            return ex.elapsed()

        assert with_overhead(2) > with_overhead(64)
