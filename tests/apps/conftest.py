"""Shared app-test fixtures."""

import pytest

from repro.executor import InlineExecutor, SimExecutor, WorkStealingPool
from repro.machine import MachineSpec


def sim_machine(cores=4):
    return MachineSpec(name=f"sim{cores}", cores=cores, dispatch_overhead=0.0)


@pytest.fixture(params=["inline", "sim", "threads"])
def executor(request):
    if request.param == "inline":
        yield InlineExecutor()
    elif request.param == "sim":
        yield SimExecutor(sim_machine())
    else:
        pool = WorkStealingPool(workers=4, name="apps-test")
        yield pool
        pool.shutdown()


@pytest.fixture
def sim_executor():
    return SimExecutor(sim_machine())
