"""Tests for the synthetic corpus generators."""

import numpy as np
import pytest

from repro.apps import make_image_folder, make_pdf_corpus, make_text_corpus, make_website


class TestImageFolder:
    def test_count_and_names(self):
        images = make_image_folder(10, seed=1)
        assert len(images) == 10
        assert len({img.name for img in images}) == 10

    def test_deterministic(self):
        a = make_image_folder(5, seed=2)
        b = make_image_folder(5, seed=2)
        assert all(np.array_equal(x.pixels, y.pixels) for x, y in zip(a, b))

    def test_seed_changes_content(self):
        a = make_image_folder(3, seed=1)[0]
        b = make_image_folder(3, seed=2)[0]
        assert a.pixels.shape != b.pixels.shape or not np.array_equal(a.pixels, b.pixels)

    def test_sizes_within_bounds(self):
        for img in make_image_folder(30, seed=3, min_side=16, max_side=64):
            assert img.width >= 16 and img.height >= 16

    def test_sizes_are_skewed(self):
        """Mixed sizes: the biggest image dominates the mean (skew)."""
        images = make_image_folder(50, seed=4, min_side=16, max_side=128)
        pixels = sorted(img.n_pixels for img in images)
        assert pixels[-1] > 4 * pixels[len(pixels) // 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_image_folder(-1)
        with pytest.raises(ValueError):
            make_image_folder(1, min_side=10, max_side=5)


class TestTextCorpus:
    def test_structure(self):
        corpus = make_text_corpus(20, seed=1)
        assert len(corpus.files) == 20
        assert corpus.total_lines > 0
        assert all(f.path.endswith(".txt") for f in corpus.files)

    def test_needle_planted_count_matches(self):
        corpus = make_text_corpus(30, seed=2, hit_rate=0.05)
        actual = sum(
            1 for f in corpus.files for line in f.lines if corpus.needle in line
        )
        assert actual >= corpus.planted  # planted is a lower bound (random words could collide)
        assert corpus.planted > 0

    def test_subfolder_paths(self):
        corpus = make_text_corpus(20, seed=3, subfolders=2)
        subs = {f.path.split("/")[0] for f in corpus.files}
        assert subs <= {"sub0", "sub1"}

    def test_hit_rate_validation(self):
        with pytest.raises(ValueError):
            make_text_corpus(1, hit_rate=2.0)

    def test_deterministic(self):
        a = make_text_corpus(5, seed=9)
        b = make_text_corpus(5, seed=9)
        assert a == b


class TestPdfCorpus:
    def test_structure(self):
        corpus = make_pdf_corpus(10, seed=1)
        assert len(corpus.documents) == 10
        assert corpus.total_pages == sum(d.n_pages for d in corpus.documents)

    def test_page_counts_skewed(self):
        corpus = make_pdf_corpus(30, seed=2, pages_per_doc=(2, 100))
        counts = sorted(d.n_pages for d in corpus.documents)
        assert counts[-1] > 5 * max(1, counts[len(counts) // 2])

    def test_query_planted(self):
        corpus = make_pdf_corpus(10, seed=3, hit_rate=0.05)
        actual = sum(
            line.count(corpus.query)
            for d in corpus.documents
            for page in d.pages
            for line in page
        )
        assert actual >= corpus.planted > 0


class TestWebsite:
    def test_structure(self):
        site = make_website(25, seed=1)
        assert len(site.pages) == 25
        assert site.total_bytes == sum(p.size_bytes for p in site.pages)
        assert len({p.url for p in site.pages}) == 25

    def test_latency_and_size_ranges(self):
        site = make_website(40, seed=2, latency_range=(0.1, 0.2), size_range=(100, 200))
        for p in site.pages:
            assert 0.1 <= p.server_latency <= 0.2
            assert 100 <= p.size_bytes <= 200

    def test_deterministic(self):
        assert make_website(5, seed=7) == make_website(5, seed=7)
