"""Tests for project 4: folder text search with streaming results."""


from repro.apps import make_text_corpus
from repro.apps.corpus import TextFile
from repro.apps.textsearch import FolderSearch, Match, search_file
from repro.executor import SimExecutor
from repro.machine import MachineSpec


class TestSearchFile:
    def test_finds_lines(self):
        f = TextFile(path="a.txt", lines=("no hit", "the needle here", "needle again"))
        hits = search_file(f, "needle")
        assert [h.line_no for h in hits] == [2, 3]
        assert hits[0].path == "a.txt"

    def test_regex(self):
        f = TextFile(path="a.txt", lines=("abc123", "xyz", "a9"))
        hits = search_file(f, r"[a-z]\d+", regex=True)
        assert [h.line_no for h in hits] == [1, 3]

    def test_no_hits(self):
        f = TextFile(path="a.txt", lines=("x", "y"))
        assert search_file(f, "zebra") == []

    def test_match_str_is_grep_like(self):
        m = Match(path="dir/f.txt", line_no=3, line="hello")
        assert str(m) == "dir/f.txt:3: hello"


class TestFolderSearch:
    def test_finds_all_planted(self, executor):
        corpus = make_text_corpus(15, seed=1, hit_rate=0.05)
        results = FolderSearch(executor).search(corpus)
        assert len(results) >= corpus.planted > 0
        assert all(corpus.needle in m.line for m in results)

    def test_results_in_file_then_line_order(self, executor):
        corpus = make_text_corpus(10, seed=2, hit_rate=0.1)
        results = FolderSearch(executor).search(corpus)
        file_order = {f.path: i for i, f in enumerate(corpus.files)}
        keys = [(file_order[m.path], m.line_no) for m in results]
        assert keys == sorted(keys)

    def test_streaming_callback_sees_every_match(self, executor):
        corpus = make_text_corpus(10, seed=3, hit_rate=0.08)
        streamed = []
        searcher = FolderSearch(executor, on_match=streamed.append)
        results = searcher.search(corpus)
        assert sorted(str(m) for m in streamed) == sorted(str(m) for m in results)

    def test_regex_search(self, executor):
        corpus = make_text_corpus(5, seed=4)
        results = FolderSearch(executor).search(corpus, pattern=r"need.e", regex=True)
        assert all("needle" in m.line for m in results)

    def test_matches_sequential_grep(self, executor):
        corpus = make_text_corpus(8, seed=5, hit_rate=0.05)
        expected = [
            Match(f.path, i + 1, line)
            for f in corpus.files
            for i, line in enumerate(f.lines)
            if corpus.needle in line
        ]
        assert FolderSearch(executor).search(corpus) == expected

    def test_parallel_speedup_shape(self):
        corpus = make_text_corpus(40, seed=6)

        def elapsed(cores):
            ex = SimExecutor(MachineSpec(name="m", cores=cores, dispatch_overhead=0.0))
            FolderSearch(ex).search(corpus)
            return ex.elapsed()

        assert elapsed(8) < elapsed(1) / 3
