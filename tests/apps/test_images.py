"""Tests for project 1: thumbnail rendering."""

import numpy as np
import pytest

from repro.apps import make_image_folder
from repro.apps.corpus import SyntheticImage
from repro.apps.images import STRATEGIES, ThumbnailRenderer, scale_image, scaling_cost
from repro.executor import SimExecutor
from repro.machine import MachineSpec


class TestScaleImage:
    def test_downscale_dimensions(self):
        img = SyntheticImage("a", np.ones((100, 200)))
        thumb = scale_image(img, 50)
        assert max(thumb.width, thumb.height) == 50
        assert thumb.width == 50 and thumb.height == 25

    def test_mean_preserved_exactly_for_uniform(self):
        img = SyntheticImage("a", np.full((64, 64), 0.7))
        thumb = scale_image(img, 16)
        assert thumb.checksum == pytest.approx(0.7)

    def test_mean_approximately_preserved(self):
        rng = np.random.default_rng(0)
        img = SyntheticImage("a", rng.random((96, 128)))
        thumb = scale_image(img, 32)
        assert thumb.checksum == pytest.approx(float(img.pixels.mean()), abs=0.02)

    def test_no_upscale(self):
        img = SyntheticImage("a", np.ones((10, 10)))
        thumb = scale_image(img, 64)
        assert (thumb.width, thumb.height) == (10, 10)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            scale_image(SyntheticImage("a", np.ones((4, 4))), 0)

    def test_cost_proportional_to_pixels(self):
        small = SyntheticImage("s", np.ones((10, 10)))
        big = SyntheticImage("b", np.ones((100, 100)))
        assert scaling_cost(big) == pytest.approx(100 * scaling_cost(small))


class TestThumbnailRenderer:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_same_results(self, executor, strategy):
        images = make_image_folder(8, seed=1, max_side=48)
        renderer = ThumbnailRenderer(executor, target_side=16)
        thumbs = renderer.render(images, strategy=strategy)
        assert [t.name for t in thumbs] == [img.name for img in images]
        reference = [scale_image(img, 16) for img in images]
        assert thumbs == reference

    def test_unknown_strategy(self, executor):
        with pytest.raises(ValueError):
            ThumbnailRenderer(executor).render([], strategy="quantum")

    def test_interim_callback_fires_per_image(self, executor):
        images = make_image_folder(6, seed=2, max_side=32)
        seen = []
        renderer = ThumbnailRenderer(executor, target_side=8, on_thumbnail=seen.append)
        renderer.render(images, strategy="ptask")
        assert sorted(t.name for t in seen) == sorted(img.name for img in images)

    def test_parallel_speedup_shape(self):
        """The project's performance claim: more cores, faster rendering."""
        images = make_image_folder(24, seed=3, max_side=96)

        def time_on(cores, strategy):
            ex = SimExecutor(MachineSpec(name="m", cores=cores, dispatch_overhead=0.0))
            ThumbnailRenderer(ex, target_side=16).render(images, strategy=strategy)
            return ex.elapsed()

        t_seq = time_on(4, "sequential")
        t_par = time_on(4, "ptask")
        assert t_par < t_seq / 2  # real parallel win on 4 cores
        assert time_on(8, "ptask") < t_par  # scales further

    def test_farm_respects_worker_cap(self):
        images = make_image_folder(16, seed=4, min_side=32, max_side=32)
        ex = SimExecutor(MachineSpec(name="m", cores=8, dispatch_overhead=0.0))
        ThumbnailRenderer(ex, target_side=8).render(images, strategy="farm", workers=2)
        t2 = ex.elapsed()
        ex8 = SimExecutor(MachineSpec(name="m", cores=8, dispatch_overhead=0.0))
        ThumbnailRenderer(ex8, target_side=8).render(images, strategy="farm", workers=8)
        assert ex8.elapsed() < t2
