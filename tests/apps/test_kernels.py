"""Tests for project 3: computational kernels (FFT, matmul, MD, graphs, linalg)."""

import numpy as np
import pytest

from repro.apps.kernels import (
    LJSystem,
    bfs_levels,
    bfs_levels_parallel,
    fft,
    fft_parallel,
    jacobi,
    jacobi_parallel,
    matmul_blocked,
    matmul_parallel,
    md_step,
    md_step_parallel,
    pagerank,
    pagerank_parallel,
)
from repro.apps.kernels.fft import fft_cost
from repro.apps.kernels.graphs import random_graph
from repro.apps.kernels.linalg import diagonally_dominant_system
from repro.executor import SimExecutor
from repro.machine import MachineSpec
from repro.pyjama import Pyjama
from repro.util.rng import derive


def sim_omp(cores=4):
    return Pyjama(
        SimExecutor(MachineSpec(name=f"m{cores}", cores=cores, dispatch_overhead=0.0)),
        num_threads=cores,
    )


class TestFFT:
    def test_matches_numpy(self):
        rng = derive(0, "fft-test")
        x = rng.random(64) + 1j * rng.random(64)
        assert np.allclose(fft(x), np.fft.fft(x))

    def test_parallel_matches_numpy(self, executor):
        rng = derive(1, "fft-test")
        x = rng.random(32) + 1j * rng.random(32)
        omp = Pyjama(executor, num_threads=4)
        assert np.allclose(fft_parallel(x, omp), np.fft.fft(x))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            fft(np.ones(12))
        with pytest.raises(ValueError):
            fft(np.array([]))

    def test_impulse(self):
        x = np.zeros(16, dtype=complex)
        x[0] = 1.0
        assert np.allclose(fft(x), np.ones(16))

    def test_parallel_speedup_shape(self):
        rng = derive(2, "fft-test")
        x = rng.random(256)

        def elapsed(cores):
            omp = sim_omp(cores)
            fft_parallel(x, omp, schedule="dynamic")
            return omp.executor.elapsed()

        assert elapsed(8) < elapsed(1)

    def test_cost_model(self):
        assert fft_cost(8) == pytest.approx(3 * 4 * 2e-7)
        assert fft_cost(1) == 0.0


class TestMatmul:
    def test_blocked_matches_numpy(self):
        rng = derive(3, "mm")
        a, b = rng.random((37, 23)), rng.random((23, 41))
        assert np.allclose(matmul_blocked(a, b, block=8), a @ b)

    def test_parallel_matches_numpy(self, executor):
        rng = derive(4, "mm")
        a, b = rng.random((24, 24)), rng.random((24, 24))
        omp = Pyjama(executor, num_threads=4)
        assert np.allclose(matmul_parallel(a, b, omp, block=8), a @ b)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            matmul_blocked(np.ones((2, 3)), np.ones((4, 2)))

    def test_parallel_speedup_shape(self):
        rng = derive(5, "mm")
        a, b = rng.random((64, 64)), rng.random((64, 64))

        def elapsed(cores):
            omp = sim_omp(cores)
            matmul_parallel(a, b, omp, block=8)
            return omp.executor.elapsed()

        assert elapsed(8) < elapsed(1) / 4


class TestMD:
    def test_parallel_matches_sequential(self, executor):
        sys_a = LJSystem.random(20, seed=1)
        sys_b = LJSystem.random(20, seed=1)
        e_seq = md_step(sys_a)
        omp = Pyjama(executor, num_threads=4)
        e_par = md_step_parallel(sys_b, omp)
        assert e_par == pytest.approx(e_seq, rel=1e-9)
        assert np.allclose(sys_a.positions, sys_b.positions)
        assert np.allclose(sys_a.velocities, sys_b.velocities)

    def test_energy_finite_and_forces_move_particles(self):
        system = LJSystem.random(10, seed=2)
        before = system.positions.copy()
        energy = md_step(system)
        assert np.isfinite(energy)
        assert not np.allclose(system.positions, before)

    def test_positions_stay_in_box(self):
        system = LJSystem.random(15, seed=3, box=5.0)
        for _ in range(3):
            md_step(system)
        assert np.all(system.positions >= 0)
        assert np.all(system.positions < 5.0)

    def test_parallel_speedup_shape(self):
        def elapsed(cores):
            omp = sim_omp(cores)
            md_step_parallel(LJSystem.random(32, seed=4), omp, schedule="static")
            return omp.executor.elapsed()

        assert elapsed(8) < elapsed(1) / 4


class TestGraphs:
    def test_bfs_parallel_matches_sequential(self, executor):
        adj = random_graph(60, avg_degree=4, seed=1)
        omp = Pyjama(executor, num_threads=4)
        assert bfs_levels_parallel(adj, 0, omp) == bfs_levels(adj, 0)

    def test_bfs_levels_are_shortest_paths(self):
        adj = {0: [1, 2], 1: [0, 3], 2: [0, 3], 3: [1, 2, 4], 4: [3]}
        levels = bfs_levels(adj, 0)
        assert levels == {0: 0, 1: 1, 2: 1, 3: 2, 4: 3}

    def test_bfs_unknown_source(self):
        with pytest.raises(KeyError):
            bfs_levels({0: []}, 5)

    def test_pagerank_parallel_matches_sequential(self, executor):
        adj = random_graph(40, avg_degree=5, seed=2)
        omp = Pyjama(executor, num_threads=4)
        seq = pagerank(adj)
        par = pagerank_parallel(adj, omp)
        for node in adj:
            assert par[node] == pytest.approx(seq[node], rel=1e-6)

    def test_pagerank_sums_to_one(self):
        adj = random_graph(30, avg_degree=4, seed=3)
        ranks = pagerank(adj)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_pagerank_matches_networkx(self):
        import networkx as nx

        adj = random_graph(25, avg_degree=4, seed=4)
        g = nx.Graph((u, v) for u, vs in adj.items() for v in vs)
        g.add_nodes_from(adj)
        reference = nx.pagerank(g, alpha=0.85, tol=1e-10)
        mine = pagerank(adj, tol=1e-12, max_iters=500)
        for node in adj:
            assert mine[node] == pytest.approx(reference[node], abs=1e-5)


class TestJacobi:
    def test_solves_system(self):
        a, b = diagonally_dominant_system(20, seed=1)
        x, iters = jacobi(a, b, tol=1e-12)
        assert np.allclose(a @ x, b, atol=1e-8)
        assert iters < 500

    def test_parallel_matches_sequential(self, executor):
        a, b = diagonally_dominant_system(24, seed=2)
        omp = Pyjama(executor, num_threads=4)
        x_seq, it_seq = jacobi(a, b, tol=1e-12)
        x_par, it_par = jacobi_parallel(a, b, omp, tol=1e-12, block=8)
        assert it_par == it_seq
        assert np.allclose(x_par, x_seq)

    def test_parallel_speedup_shape(self):
        a, b = diagonally_dominant_system(64, seed=3)

        def elapsed(cores):
            omp = sim_omp(cores)
            jacobi_parallel(a, b, omp, tol=1e-10, block=4)
            return omp.executor.elapsed()

        assert elapsed(8) < elapsed(1) / 3
