"""Tests for project 7: PDF search granularity."""

import pytest

from repro.apps import make_pdf_corpus
from repro.apps.pdfsearch import GRANULARITIES, PdfSearcher
from repro.executor import SimExecutor
from repro.machine import MachineSpec


class TestCorrectness:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_all_granularities_find_same_hits(self, executor, granularity):
        corpus = make_pdf_corpus(6, seed=1, pages_per_doc=(2, 20), hit_rate=0.03)
        searcher = PdfSearcher(executor)
        hits = searcher.search(corpus, granularity=granularity)
        assert PdfSearcher.total_matches(hits) >= corpus.planted > 0
        # hits ordered by (doc, page)
        doc_order = {d.path: i for i, d in enumerate(corpus.documents)}
        keys = [(doc_order[h.path], h.page) for h in hits]
        assert keys == sorted(keys)

    def test_granularities_agree_exactly(self, executor):
        corpus = make_pdf_corpus(5, seed=2, pages_per_doc=(1, 15), hit_rate=0.05)
        searcher = PdfSearcher(executor)
        reference = searcher.search(corpus, granularity="per_file")
        for g in ("per_page", "per_chunk"):
            assert searcher.search(corpus, granularity=g) == reference

    def test_validation(self, executor):
        corpus = make_pdf_corpus(2, seed=3)
        with pytest.raises(ValueError):
            PdfSearcher(executor).search(corpus, granularity="per_word")
        with pytest.raises(ValueError):
            PdfSearcher(executor).search(corpus, granularity="per_chunk", chunk_pages=0)

    def test_streaming_hits(self, executor):
        corpus = make_pdf_corpus(4, seed=4, hit_rate=0.05)
        streamed = []
        searcher = PdfSearcher(executor, on_hit=streamed.append)
        hits = searcher.search(corpus, granularity="per_page")
        assert sorted((h.path, h.page) for h in streamed) == sorted((h.path, h.page) for h in hits)


class TestGranularityShapes:
    """Project 7's finding: per-page beats per-file on skewed corpora."""

    @staticmethod
    def elapsed(granularity, cores=8, overhead=0.0, seed=5):
        corpus = make_pdf_corpus(12, seed=seed, pages_per_doc=(2, 120))
        ex = SimExecutor(MachineSpec(name="m", cores=cores, dispatch_overhead=overhead))
        PdfSearcher(ex).search(corpus, granularity=granularity)
        return ex.elapsed()

    def test_per_page_beats_per_file_under_skew(self):
        assert self.elapsed("per_page") < self.elapsed("per_file")

    def test_per_chunk_between(self):
        t_file = self.elapsed("per_file")
        t_chunk = self.elapsed("per_chunk")
        t_page = self.elapsed("per_page")
        assert t_page <= t_chunk <= t_file

    def test_per_page_pays_more_dispatch_overhead(self):
        """With heavy per-task overhead the granularity choice reverses —
        the trade-off the project brief asks students to investigate."""
        heavy = 5e-3
        assert self.elapsed("per_page", overhead=heavy) > self.elapsed("per_chunk", overhead=heavy)
