"""Quality gate: every public item in the library carries a docstring.

Deliverable (e) requires doc comments on every public item; this
meta-test enforces it structurally, so documentation debt fails CI
instead of accumulating.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}  # CLI shim documented via --help


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        yield name, obj


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} has no docstring"


def _is_substantial(member) -> bool:
    """Methods this long carry behaviour a reader cannot infer from the
    name + class docstring alone; they must explain themselves."""
    try:
        return len(inspect.getsource(member).splitlines()) >= 10
    except (OSError, TypeError):
        return False


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not callable(member):
                    continue
                if isinstance(member, (staticmethod, classmethod)):
                    member = member.__func__
                if _is_substantial(member) and not getattr(member, "__doc__", None):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module.__name__}: undocumented public items: {undocumented}"
