"""Shared test fixtures.

The run-history store defaults to the repo's ``benchmarks/runs/``; any
test that exercises an auto-recording CLI command (``analyze``,
``compare``, ``serve``, ``chaos``) would otherwise append records to the
committed store.  Redirect the default to a session-scoped temp
directory — session-scoped so hypothesis-driven tests never trip the
function-scoped-fixture health check, and because no test should ever
see the real store anyway.  Tests that want a specific store still pass
``--store``/an explicit root, which wins over the env default.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_runs_store(tmp_path_factory):
    import os

    store_dir = tmp_path_factory.mktemp("runs-store")
    old = os.environ.get("REPRO_RUNS_STORE")
    os.environ["REPRO_RUNS_STORE"] = str(store_dir)
    yield store_dir
    if old is None:
        os.environ.pop("REPRO_RUNS_STORE", None)
    else:
        os.environ["REPRO_RUNS_STORE"] = old
