"""Tests for the sequential/parallel polymorphic-switch idiom."""

import pytest

from repro.ptask import Parallelizable


class SummerBase(Parallelizable):
    """Test double recording which variant ran."""

    def __init__(self, runtime, **kw):
        super().__init__(runtime, **kw)
        self.calls = []

    def run_sequential(self, xs):
        self.calls.append("seq")
        return sum(xs)

    def run_parallel(self, xs):
        self.calls.append("par")
        mid = len(xs) // 2
        left = self.runtime.spawn(sum, xs[:mid])
        return left.result(timeout=5) + sum(xs[mid:])


class TestParallelizable:
    def test_explicit_sequential(self, rt):
        s = SummerBase(rt)
        assert s(list(range(10)), mode="sequential") == 45
        assert s.calls == ["seq"]

    def test_explicit_parallel(self, rt):
        s = SummerBase(rt)
        assert s(list(range(10)), mode="parallel") == 45
        assert s.calls == ["par"]

    def test_auto_below_threshold(self, rt):
        s = SummerBase(rt, parallel_threshold=100)
        assert s(list(range(10))) == 45
        assert s.calls == ["seq"]

    def test_auto_at_threshold(self, rt):
        s = SummerBase(rt, parallel_threshold=10)
        assert s(list(range(10))) == 45
        assert s.calls == ["par"]

    def test_same_answer_both_modes(self, rt):
        s = SummerBase(rt)
        xs = list(range(33))
        assert s(xs, mode="sequential") == s(xs, mode="parallel")

    def test_unknown_mode_rejected(self, rt):
        with pytest.raises(ValueError):
            SummerBase(rt)([1], mode="quantum")

    def test_negative_threshold_rejected(self, rt):
        with pytest.raises(ValueError):
            SummerBase(rt, parallel_threshold=-1)

    def test_unsized_problem_goes_parallel(self, rt):
        class Gen(SummerBase):
            def run_sequential(self, n):
                self.calls.append("seq")
                return n

            def run_parallel(self, n):
                self.calls.append("par")
                return n

        g = Gen(rt)
        assert g(42) == 42
        assert g.calls == ["par"]

    def test_repr(self, rt):
        assert "SummerBase" in repr(SummerBase(rt))
