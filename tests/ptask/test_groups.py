"""Tests for task groups."""

import pytest

from repro.ptask import TaskGroup


class TestTaskGroup:
    def test_join_collects_in_add_order(self, rt):
        g = TaskGroup("g")
        for i in range(4):
            g.add(rt.spawn(lambda i=i: i * 2))
        assert g.join(timeout=5) == [0, 2, 4, 6]

    def test_add_returns_future(self, rt):
        g = TaskGroup()
        f = g.add(rt.spawn(lambda: 1))
        assert f.result(timeout=5) == 1

    def test_extend_and_len(self, rt):
        g = TaskGroup()
        g.extend([rt.spawn(lambda: 1), rt.spawn(lambda: 2)])
        assert len(g) == 2

    def test_join_settled_splits_failures(self, rt):
        def boom():
            raise RuntimeError("g")

        g = TaskGroup()
        g.add(rt.spawn(lambda: 1))
        g.add(rt.spawn(boom))
        g.add(rt.spawn(lambda: 3))
        values, errors = g.join_settled()
        assert values == [1, 3]
        assert len(errors) == 1
        assert isinstance(errors[0], RuntimeError)

    def test_join_raises_first_error(self, rt):
        def boom():
            raise KeyError("x")

        g = TaskGroup()
        g.add(rt.spawn(boom))
        with pytest.raises(KeyError):
            g.join(timeout=5)

    def test_done_and_pending(self, rt):
        g = TaskGroup()
        g.add(rt.spawn(lambda: 1))
        g.join(timeout=5)
        assert g.done()
        assert g.pending_count() == 0

    def test_on_each_done(self, rt):
        g = TaskGroup()
        seen = []
        for i in range(3):
            g.add(rt.spawn(lambda i=i: i))
        g.join(timeout=5)
        g.on_each_done(lambda f: seen.append(f.result()))
        assert sorted(seen) == [0, 1, 2]

    def test_empty_group(self):
        g = TaskGroup()
        assert g.done()
        assert g.join() == []
