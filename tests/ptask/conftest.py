"""Shared fixtures: every ptask test that can, runs on all three backends."""

import pytest

from repro.executor import InlineExecutor, SimExecutor, WorkStealingPool
from repro.machine import MachineSpec
from repro.ptask import ParallelTaskRuntime


def _sim_machine():
    return MachineSpec(name="test4", cores=4, dispatch_overhead=0.0)


@pytest.fixture(params=["inline", "sim", "threads"])
def rt(request):
    """A ParallelTaskRuntime on each backend."""
    if request.param == "inline":
        yield ParallelTaskRuntime(InlineExecutor())
    elif request.param == "sim":
        yield ParallelTaskRuntime(SimExecutor(_sim_machine()))
    else:
        pool = WorkStealingPool(workers=4, name="ptask-test")
        yield ParallelTaskRuntime(pool)
        pool.shutdown()


@pytest.fixture
def sim_rt():
    """A runtime on the simulated backend only (for timing assertions)."""
    return ParallelTaskRuntime(SimExecutor(_sim_machine()))


@pytest.fixture
def pool_rt():
    """A runtime on real threads only (for concurrency assertions)."""
    pool = WorkStealingPool(workers=4, name="ptask-pool")
    yield ParallelTaskRuntime(pool)
    pool.shutdown()
