"""Tests for the parallel-patterns library (paper §V-B outcome)."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import InlineExecutor, SimExecutor
from repro.machine import MachineSpec
from repro.ptask import (
    ParallelTaskRuntime,
    divide_and_conquer,
    parallel_map,
    parallel_reduce,
    pipeline,
    task_farm,
)


def fresh_inline_rt():
    return ParallelTaskRuntime(InlineExecutor())


class TestParallelMap:
    def test_order_preserved(self, rt):
        assert parallel_map(rt, lambda x: x * 3, [1, 2, 3]) == [3, 6, 9]

    def test_empty(self, rt):
        assert parallel_map(rt, lambda x: x, []) == []

    def test_grain_batches(self, rt):
        out = parallel_map(rt, lambda x: x + 1, list(range(10)), grain=3)
        assert out == list(range(1, 11))

    def test_grain_validation(self, rt):
        with pytest.raises(ValueError):
            parallel_map(rt, lambda x: x, [1], grain=0)

    def test_cost_fn_in_sim(self, sim_rt):
        parallel_map(sim_rt, lambda x: x, [1.0] * 8, cost_fn=lambda _x: 1.0)
        assert sim_rt.executor.elapsed() == pytest.approx(2.0)  # 8 units / 4 cores

    @given(st.lists(st.integers(), max_size=30), st.integers(min_value=1, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_matches_sequential_map(self, xs, grain):
        rt = fresh_inline_rt()
        assert parallel_map(rt, lambda v: v * v, xs, grain=grain) == [v * v for v in xs]


class TestParallelReduce:
    def test_sum(self, rt):
        assert parallel_reduce(rt, operator.add, list(range(10)), identity=0) == 45

    def test_no_identity(self, rt):
        assert parallel_reduce(rt, operator.add, [5, 6, 7]) == 18

    def test_empty_needs_identity(self, rt):
        with pytest.raises(ValueError):
            parallel_reduce(rt, operator.add, [])
        assert parallel_reduce(rt, operator.add, [], identity=0) == 0

    def test_max_reduction(self, rt):
        assert parallel_reduce(rt, max, [3, 9, 1, 7], grain=2) == 9

    def test_tree_parallelises_in_sim(self, sim_rt):
        parallel_reduce(
            sim_rt, operator.add, list(range(16)), identity=0, grain=2, cost_per_item=1.0
        )
        t = sim_rt.executor.elapsed()
        serial = 8 * 2.0 + 7 * 1.0  # leaves + combine nodes on one core
        assert t < serial  # the tree overlapped work

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_associative_op_matches_fold(self, xs, grain):
        rt = fresh_inline_rt()
        assert parallel_reduce(rt, operator.add, xs, identity=0, grain=grain) == sum(xs)

    @given(st.lists(st.sets(st.integers(0, 20)), min_size=1, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_object_reduction_set_union(self, sets):
        rt = fresh_inline_rt()
        out = parallel_reduce(rt, operator.or_, sets, identity=set())
        assert out == set().union(*sets)


class TestDivideAndConquer:
    @staticmethod
    def dac_sum(rt, xs, spawn_depth=3):
        return divide_and_conquer(
            rt,
            xs,
            is_base=lambda p: len(p) <= 2,
            solve_base=sum,
            divide=lambda p: (p[: len(p) // 2], p[len(p) // 2 :]),
            combine=lambda _p, parts: sum(parts),
            spawn_depth=spawn_depth,
        )

    def test_sum(self, rt):
        assert self.dac_sum(rt, list(range(64))) == sum(range(64))

    def test_base_case_direct(self, rt):
        assert self.dac_sum(rt, [1, 2]) == 3

    def test_spawn_depth_zero_goes_sequential(self, rt):
        assert self.dac_sum(rt, list(range(32)), spawn_depth=0) == sum(range(32))

    def test_sim_speedup(self):
        def run(cores):
            ex = SimExecutor(MachineSpec(name="m", cores=cores, dispatch_overhead=0.0))
            rt = ParallelTaskRuntime(ex)
            divide_and_conquer(
                rt,
                list(range(64)),
                is_base=lambda p: len(p) <= 4,
                solve_base=sum,
                divide=lambda p: (p[: len(p) // 2], p[len(p) // 2 :]),
                combine=lambda _p, parts: sum(parts),
                spawn_depth=10,
                base_cost=lambda p: float(len(p)),
            )
            return ex.elapsed()

        assert run(1) > run(8) * 2  # genuine speedup shape


class TestPipeline:
    def test_stages_compose(self, rt):
        out = pipeline(rt, [lambda x: x + 1, lambda x: x * 2], [1, 2, 3])
        assert out == [4, 6, 8]

    def test_single_stage(self, rt):
        assert pipeline(rt, [str], [1, 2]) == ["1", "2"]

    def test_no_stages_rejected(self, rt):
        with pytest.raises(ValueError):
            pipeline(rt, [], [1])

    def test_stage_costs_validated(self, rt):
        with pytest.raises(ValueError):
            pipeline(rt, [str], [1], stage_costs=[1.0, 2.0])

    def test_pipeline_overlaps_in_sim(self, sim_rt):
        """3 stages x 6 items: steady-state overlap beats serial."""
        pipeline(
            sim_rt,
            [lambda x: x, lambda x: x, lambda x: x],
            list(range(6)),
            stage_costs=[1.0, 1.0, 1.0],
        )
        t = sim_rt.executor.elapsed()
        assert t == pytest.approx(3 + 5, abs=0.5)  # fill + drain, not 18
        assert t < 18.0

    def test_empty_items(self, rt):
        assert pipeline(rt, [str], []) == []


class TestTaskFarm:
    def test_results_in_order(self, rt):
        assert task_farm(rt, lambda x: -x, [1, 2, 3], workers=2) == [-1, -2, -3]

    def test_workers_validation(self, rt):
        with pytest.raises(ValueError):
            task_farm(rt, lambda x: x, [1], workers=0)

    def test_lane_serialisation_in_sim(self, sim_rt):
        """2 lanes x 4 unit items on 4 cores: lanes cap parallelism at 2."""
        task_farm(sim_rt, lambda x: x, [1] * 4, workers=2, cost_fn=lambda _x: 1.0)
        assert sim_rt.executor.elapsed() == pytest.approx(2.0)

    def test_more_workers_than_items(self, rt):
        assert task_farm(rt, lambda x: x, [9], workers=8) == [9]
