"""Tests for the Parallel Task runtime across all backends."""

import pytest

from repro.executor import SimExecutor
from repro.machine import MachineSpec
from repro.ptask import ParallelTaskRuntime


class TestSpawn:
    def test_spawn_returns_future(self, rt):
        f = rt.spawn(lambda: 7)
        assert f.result(timeout=5) == 7

    def test_spawn_with_args(self, rt):
        f = rt.spawn(lambda a, b: a + b, 2, 3)
        assert f.result(timeout=5) == 5

    def test_spawn_exception(self, rt):
        def boom():
            raise ValueError("task error")

        f = rt.spawn(boom)
        with pytest.raises(ValueError, match="task error"):
            f.result(timeout=5)

    def test_nested_spawn(self, rt):
        def outer():
            return rt.spawn(lambda: 4).result(timeout=5) + 1

        assert rt.spawn(outer).result(timeout=5) == 5


class TestTaskDecorator:
    def test_decorator_plain(self, rt):
        @rt.task
        def double(x):
            return 2 * x

        assert double(5) == 10  # direct call stays synchronous
        assert double.spawn(5).result(timeout=5) == 10

    def test_decorator_with_cost(self, rt):
        @rt.task(cost=2.0)
        def work(x):
            return x

        assert work.spawn(3).result(timeout=5) == 3

    def test_decorator_with_cost_fn(self, rt):
        @rt.task(cost=lambda xs: float(len(xs)))
        def total(xs):
            return sum(xs)

        assert total.spawn([1, 2, 3]).result(timeout=5) == 6

    def test_cost_fn_drives_sim_time(self):
        ex = SimExecutor(MachineSpec(name="m1", cores=1, dispatch_overhead=0.0))
        rt = ParallelTaskRuntime(ex)

        @rt.task(cost=lambda xs: float(len(xs)))
        def total(xs):
            return sum(xs)

        total.spawn([1] * 5).result()
        assert ex.elapsed() == pytest.approx(5.0)

    def test_decorator_preserves_metadata(self, rt):
        @rt.task
        def documented(x):
            """Docstring survives."""
            return x

        assert documented.__name__ == "documented"
        assert "survives" in documented.__doc__


class TestDependences:
    def test_depends_on_ordering(self, rt):
        trace = []
        f1 = rt.spawn(lambda: trace.append("a"))
        f2 = rt.spawn(lambda: trace.append("b"), depends_on=[f1])
        f2.result(timeout=5)
        assert trace == ["a", "b"]

    def test_depends_on_failure_propagates(self, rt):
        def boom():
            raise RuntimeError("dep fail")

        bad = rt.spawn(boom)
        if bad.exception(timeout=5) is None:
            pytest.fail("dependency should have failed")
        f = rt.spawn(lambda: "x", depends_on=[bad])
        with pytest.raises(RuntimeError):
            f.result(timeout=5)

    def test_diamond_dependences_in_sim_time(self, sim_rt):
        ex = sim_rt.executor
        a = sim_rt.spawn(lambda: None, cost=1.0)
        b = sim_rt.spawn(lambda: None, cost=2.0, depends_on=[a])
        c = sim_rt.spawn(lambda: None, cost=2.0, depends_on=[a])
        d = sim_rt.spawn(lambda: None, cost=1.0, depends_on=[b, c])
        d.result()
        assert ex.elapsed() == pytest.approx(4.0)


class TestNotify:
    def test_publish_routes_to_handler(self, rt):
        seen = []

        def task_body():
            for i in range(3):
                rt.publish(i)
            return "done"

        f = rt.spawn(task_body, notify=seen.append)
        assert f.result(timeout=5) == "done"
        assert seen == [0, 1, 2]

    def test_publish_without_handler_is_dropped(self, rt):
        f = rt.spawn(lambda: rt.publish("nobody") or 1)
        assert f.result(timeout=5) == 1

    def test_publish_outside_task_is_dropped(self, rt):
        rt.publish("from main")  # must not raise

    def test_handler_cleaned_up_after_task(self, rt):
        f = rt.spawn(lambda: rt.publish("x"), notify=lambda v: None)
        f.result(timeout=5)
        assert rt._notify_handlers == {}

    def test_notify_with_edt_dispatches_there(self):
        class FakeEdt:
            def __init__(self):
                self.calls = []

            def invoke_later(self, fn, *args):
                self.calls.append((fn, args))
                fn(*args)

        from repro.executor import InlineExecutor

        edt = FakeEdt()
        rt = ParallelTaskRuntime(InlineExecutor(), edt=edt)
        seen = []
        rt.spawn(lambda: rt.publish(9), notify=seen.append).result()
        assert seen == [9]
        assert len(edt.calls) == 1


class TestAsyncErrors:
    def test_on_error_handler_invoked(self, rt):
        caught = []

        def boom():
            raise KeyError("handled")

        f = rt.spawn(boom, on_error=caught.append)
        assert f.exception(timeout=5) is not None
        assert len(caught) == 1
        assert isinstance(caught[0], KeyError)

    def test_on_error_not_invoked_on_success(self, rt):
        caught = []
        rt.spawn(lambda: 1, on_error=caught.append).result(timeout=5)
        assert caught == []


class TestBarrierSync:
    def test_barrier_sync_collects_results(self, rt):
        futures = [rt.spawn(lambda i=i: i * 10) for i in range(5)]
        assert rt.barrier_sync(futures) == [0, 10, 20, 30, 40]
