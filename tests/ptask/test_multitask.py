"""Tests for multi-task expansion and aggregate futures."""

import operator

import pytest

from repro.ptask.multitask import MultiTaskFuture


class TestSpawnMulti:
    def test_results_in_item_order(self, rt):
        mt = rt.spawn_multi(lambda x: x * x, [1, 2, 3, 4])
        assert mt.results(timeout=5) == [1, 4, 9, 16]

    def test_item_and_index(self, rt):
        mt = rt.spawn_multi(lambda item, i: (i, item), ["a", "b"])
        assert mt.results(timeout=5) == [(0, "a"), (1, "b")]

    def test_empty_items(self, rt):
        mt = rt.spawn_multi(lambda x: x, [])
        assert len(mt) == 0
        assert mt.results() == []
        assert mt.done()

    def test_cost_fn(self, sim_rt):
        mt = sim_rt.spawn_multi(lambda x: x, [3, 1, 2], cost_fn=float)
        mt.results()
        # 3+1+2 work units on 4 cores: bounded below by max item
        assert sim_rt.executor.elapsed() >= 3.0 - 1e-9

    def test_partial_failure(self, rt):
        def picky(x):
            if x == 2:
                raise ValueError("two!")
            return x

        mt = rt.spawn_multi(picky, [1, 2, 3])
        excs = mt.exceptions()
        assert excs[0] is None and excs[2] is None
        assert isinstance(excs[1], ValueError)
        assert mt.successful_results() == [1, 3]
        with pytest.raises(ValueError):
            mt.results(timeout=5)

    def test_notify_shared_across_subtasks(self, rt):
        seen = []

        def body(x):
            rt.publish(x)
            return x

        mt = rt.spawn_multi(body, [10, 20, 30], notify=seen.append)
        mt.results(timeout=5)
        assert sorted(seen) == [10, 20, 30]


class TestMultiTaskFuture:
    def test_progress_counting(self, rt):
        mt = rt.spawn_multi(lambda x: x, [1, 2, 3])
        mt.results(timeout=5)
        assert mt.completed_count() == 3
        assert mt.done()

    def test_indexing_and_iter(self, rt):
        mt = rt.spawn_multi(lambda x: x + 1, [0, 1, 2])
        assert mt[0].result(timeout=5) == 1
        assert [f.result(timeout=5) for f in mt] == [1, 2, 3]

    def test_reduce(self, rt):
        mt = rt.spawn_multi(lambda x: x, [1, 2, 3, 4])
        assert mt.reduce(operator.add) == 10
        assert mt.reduce(operator.add, initial=100) == 110

    def test_result_alias(self, rt):
        mt = rt.spawn_multi(lambda x: x, [5])
        assert mt.result(timeout=5) == [5]

    def test_repr_shows_progress(self):
        from repro.executor.future import Future

        done = Future("d")
        done.set_result(1)
        pending = Future("p")
        mt = MultiTaskFuture([done, pending], name="m")
        assert "1/2" in repr(mt)
