"""Tests for task-safe classes (project 6).

The key scenarios come straight from the project brief: thread-keyed
constructs misbehave under a task runtime; task-keyed ones don't.
"""

import threading

import pytest

from repro.executor import InlineExecutor, WorkStealingPool
from repro.ptask import ParallelTaskRuntime, TaskLocal, TaskSafeAccumulator, TaskSafeCollector, TaskSafeLock


class TestTaskLocal:
    def test_per_task_isolation(self, rt):
        tl = TaskLocal(rt.executor, default_factory=list)

        def body(i):
            tl.get().append(i)
            return tuple(tl.get())

        results = [rt.spawn(body, i).result(timeout=5) for i in range(4)]
        # each task saw only its own value, never a shared list
        assert results == [(0,), (1,), (2,), (3,)]

    def test_threadlocal_leaks_where_tasklocal_does_not(self):
        """The motivating bug: one worker thread runs many tasks, so a
        thread-local carries state across tasks; a task-local never does."""
        with WorkStealingPool(workers=1, name="leak") as pool:
            thread_local = threading.local()
            task_local = TaskLocal(pool, default_factory=lambda: "fresh")

            def observe_thread_local():
                seen = getattr(thread_local, "v", "fresh")
                thread_local.v = "dirty"
                return seen

            def observe_task_local():
                seen = task_local.get()
                task_local.set("dirty")
                return seen

            first = pool.submit(observe_thread_local).result(timeout=5)
            second = pool.submit(observe_thread_local).result(timeout=5)
            assert first == "fresh" and second == "dirty"  # the leak

            t_first = pool.submit(observe_task_local).result(timeout=5)
            t_second = pool.submit(observe_task_local).result(timeout=5)
            assert t_first == t_second == "fresh"  # no leak

    def test_get_without_default_raises(self, rt):
        tl = TaskLocal(rt.executor)
        with pytest.raises(LookupError):
            rt.spawn(tl.get).result(timeout=5)

    def test_set_then_get(self, rt):
        tl = TaskLocal(rt.executor)

        def body():
            tl.set(99)
            return tl.get()

        assert rt.spawn(body).result(timeout=5) == 99

    def test_clear_and_is_set(self, rt):
        tl = TaskLocal(rt.executor, default_factory=int)

        def body():
            tl.set(5)
            assert tl.is_set()
            tl.clear()
            return tl.is_set()

        assert rt.spawn(body).result(timeout=5) is False

    def test_live_tasks_observability(self, rt):
        tl = TaskLocal(rt.executor)

        def body():
            tl.set(1)

        rt.spawn(body).result(timeout=5)
        rt.spawn(body).result(timeout=5)
        assert tl.live_tasks() == 2  # values linger until cleared


class TestTaskSafeLock:
    def test_reentrant_within_task(self, rt):
        lock = TaskSafeLock(rt.executor)

        def body():
            with lock:
                with lock:  # same task re-enters fine
                    return lock.owner

        owner = rt.spawn(body).result(timeout=5)
        assert owner is not None

    def test_release_restores_unowned(self, rt):
        lock = TaskSafeLock(rt.executor)

        def body():
            with lock:
                pass
            return lock.owner

        assert rt.spawn(body).result(timeout=5) is None

    def test_release_by_non_owner_rejected(self, rt):
        lock = TaskSafeLock(rt.executor)
        with pytest.raises(RuntimeError, match="release"):
            rt.spawn(lock.release).result(timeout=5)

    def test_nested_task_deadlock_detected(self):
        """A nested task (inline nesting models helping) acquiring its
        parent's lock is detected as a deadlock, not a silent re-entry."""
        ex = InlineExecutor()
        rt = ParallelTaskRuntime(ex)
        lock = TaskSafeLock(ex)

        def parent():
            with lock:
                return rt.spawn(child).exception()

        def child():
            with lock:  # parent above us holds it: certain deadlock
                return "entered"

        exc = rt.spawn(parent).result(timeout=5)
        assert isinstance(exc, RuntimeError)
        assert "deadlock" in str(exc)

    def test_rlock_admits_nested_task_the_trap(self):
        """Counterpart: a thread-reentrant RLock lets the nested task into
        the parent's critical section — the bug task-safe classes fix."""
        ex = InlineExecutor()
        rt = ParallelTaskRuntime(ex)
        rlock = threading.RLock()

        def parent():
            with rlock:
                return rt.spawn(child).result(timeout=5)

        def child():
            got = rlock.acquire(blocking=False)
            if got:
                rlock.release()
            return got

        assert rt.spawn(parent).result(timeout=5) is True  # silently admitted

    def test_mutual_exclusion_across_worker_tasks(self):
        with WorkStealingPool(workers=4, name="tsl") as pool:
            lock = TaskSafeLock(pool)
            state = {"v": 0}

            def bump():
                with lock:
                    v = state["v"]
                    state["v"] = v + 1

            pool.wait_all([pool.submit(bump) for _ in range(50)])
            assert state["v"] == 50

    def test_acquire_timeout(self):
        with WorkStealingPool(workers=2, name="tslt") as pool:
            lock = TaskSafeLock(pool)
            started = threading.Event()
            release = threading.Event()

            def holder():
                with lock:
                    started.set()
                    release.wait(timeout=5)

            f = pool.submit(holder)
            started.wait(timeout=5)
            assert pool.submit(lambda: lock.acquire(timeout=0.05)).result(timeout=5) is False
            release.set()
            f.result(timeout=5)


class TestTaskSafeAccumulator:
    def test_sums_across_tasks(self, rt):
        acc = TaskSafeAccumulator(rt.executor)
        futures = [rt.spawn(acc.add, 2.0) for _ in range(10)]
        rt.barrier_sync(futures)
        assert acc.value() == 20.0

    def test_initial_value(self, rt):
        acc = TaskSafeAccumulator(rt.executor, initial=100.0)
        rt.spawn(acc.add, 1.0).result(timeout=5)
        assert acc.value() == 101.0

    def test_reset(self, rt):
        acc = TaskSafeAccumulator(rt.executor, initial=5.0)
        rt.spawn(acc.add, 1.0).result(timeout=5)
        acc.reset()
        assert acc.value() == 0.0

    def test_no_lost_updates_under_real_threads(self):
        with WorkStealingPool(workers=4, name="acc") as pool:
            acc = TaskSafeAccumulator(pool)

            def work():
                for _ in range(100):
                    acc.add(1.0)

            pool.wait_all([pool.submit(work) for _ in range(8)])
            assert acc.value() == 800.0


class TestTaskSafeCollector:
    def test_collect_is_deterministic_by_task_order(self, rt):
        col = TaskSafeCollector(rt.executor)

        def body(i):
            col.append(i * 10)
            col.append(i * 10 + 1)

        futures = [rt.spawn(body, i) for i in range(3)]
        rt.barrier_sync(futures)
        assert col.collect() == [0, 1, 10, 11, 20, 21]

    def test_extend(self, rt):
        col = TaskSafeCollector(rt.executor)
        rt.spawn(lambda: col.extend([1, 2, 3])).result(timeout=5)
        assert col.collect() == [1, 2, 3]

    def test_task_count_and_clear(self, rt):
        col = TaskSafeCollector(rt.executor)
        rt.barrier_sync([rt.spawn(col.append, i) for i in range(4)])
        assert col.task_count() == 4
        col.clear()
        assert col.collect() == []

    def test_determinism_under_real_threads(self):
        """Same program, same result, despite nondeterministic timing."""

        def run():
            with WorkStealingPool(workers=4, name="det") as pool:
                col = TaskSafeCollector(pool)
                pool.wait_all([pool.submit(lambda i=i: col.append(i)) for i in range(20)])
                return col.collect()

        assert run() == run()
