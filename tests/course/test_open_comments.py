"""Tests for the open-comments model (the §V-A qualitative data)."""

import pytest

from repro.course.survey import (
    PAPER_COMMENTS,
    OpenComment,
    sample_open_comments,
    theme_counts,
)


class TestPaperQuotes:
    def test_all_five_quotes_present_and_verbatim(self):
        assert len(PAPER_COMMENTS) == 5
        assert all(c.verbatim for c in PAPER_COMMENTS)
        texts = " ".join(c.text for c in PAPER_COMMENTS)
        assert "good practice" in texts
        assert "interaction with all of the groups" in texts
        assert "very helpful" in texts
        assert "presentation skills" in texts
        assert "more research oriented discussion" in texts

    def test_quote_themes(self):
        themes = [c.theme for c in PAPER_COMMENTS]
        assert themes.count("project") == 2
        assert "presentations" in themes
        assert "discussions" in themes
        assert "more-research-time" in themes


class TestSampling:
    def test_includes_every_verbatim_quote(self):
        comments = sample_open_comments(20, seed=1)
        verbatims = [c for c in comments if c.verbatim]
        assert sorted(c.text for c in verbatims) == sorted(c.text for c in PAPER_COMMENTS)

    def test_count_and_determinism(self):
        a = sample_open_comments(15, seed=2)
        b = sample_open_comments(15, seed=2)
        assert len(a) == 15
        assert a == b

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            sample_open_comments(3)

    def test_synthetic_comments_theme_tagged(self):
        comments = sample_open_comments(30, seed=3)
        known_themes = {
            "presentations", "discussions", "project", "more-research-time", "tools",
        }
        assert all(c.theme in known_themes for c in comments)

    def test_order_is_shuffled(self):
        comments = sample_open_comments(25, seed=4)
        assert [c.verbatim for c in comments[:5]] != [True] * 5  # not all up front


class TestThemeCounts:
    def test_rollup(self):
        counts = theme_counts(
            [OpenComment("a", "x"), OpenComment("a", "y"), OpenComment("b", "z")]
        )
        assert counts == {"a": 2, "b": 1}

    def test_rollup_of_sample_covers_paper_themes(self):
        counts = theme_counts(sample_open_comments(40, seed=5))
        assert counts["project"] >= 2
        assert counts["more-research-time"] >= 1
