"""Tests for the assessment scheme (§III-C)."""

import pytest

from repro.course import ASSESSMENT_SCHEME, AssessmentScheme, GradeBook, form_groups, make_cohort
from repro.course.assessment import StudentMarks, moderation_factor
from repro.vcs import Repository


class TestScheme:
    def test_paper_weights(self):
        s = ASSESSMENT_SCHEME
        assert (s.test1, s.seminar, s.test2, s.implementation, s.report) == (25, 20, 10, 25, 20)

    def test_weights_total_100(self):
        assert sum(ASSESSMENT_SCHEME.components().values()) == 100

    def test_only_25_percent_individual_lecture_material(self):
        """The paper's own observation about the scheme."""
        assert ASSESSMENT_SCHEME.individual_lecture_weight == 25.0

    def test_group_work_dominates(self):
        assert ASSESSMENT_SCHEME.group_weight == 65.0

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            AssessmentScheme(test1=50.0)  # totals 125


class TestStudentMarks:
    def test_final_weighted(self):
        marks = StudentMarks(test1=80, seminar=90, test2=70, implementation=85, report=88)
        expected = (80 * 25 + 90 * 20 + 70 * 10 + 85 * 25 + 88 * 20) / 100
        assert marks.final() == pytest.approx(expected)

    def test_perfect_scores(self):
        assert StudentMarks(100, 100, 100, 100, 100).final() == 100.0

    def test_range_validation(self):
        with pytest.raises(ValueError):
            StudentMarks(101, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            StudentMarks(0, -1, 0, 0, 0)


class TestModeration:
    def test_equal_contributors_keep_full_mark(self):
        assert moderation_factor(1 / 3, 1 / 3, 3) == 1.0

    def test_above_equal_share_capped_at_one(self):
        assert moderation_factor(0.6, 0.6, 3) == 1.0

    def test_free_rider_scaled_down(self):
        f = moderation_factor(0.02, 0.05, 3)
        assert 0.0 < f < 1.0

    def test_zero_contribution_zero_factor(self):
        assert moderation_factor(0.0, 0.0, 3) == 0.0

    def test_leniency_region(self):
        """'In most cases, students within a team were awarded equal
        marks': moderate imbalance does not reduce anyone's mark."""
        assert moderation_factor(0.25, 0.30, 3) == 1.0


class TestGradeBook:
    def test_grade_group_end_to_end(self):
        students = make_cohort(3, seed=1)
        group = form_groups(students, seed=1)[0]
        repo = Repository()
        # two members contribute, one does not
        repo.commit(group.members[0].student_id, "m", {"src/a.py": "x\n" * 50})
        repo.commit(group.members[1].student_id, "m", {"src/b.py": "y\n" * 50})
        marks = GradeBook().grade_group(
            group,
            test1={m.student_id: 80.0 for m in group.members},
            seminar={m.student_id: 85.0 for m in group.members},
            test2={m.student_id: 75.0 for m in group.members},
            implementation_group_mark=90.0,
            report_group_mark=88.0,
            repo=repo,
        )
        contributors = [group.members[0].student_id, group.members[1].student_id]
        slacker = group.members[2].student_id
        for sid in contributors:
            assert marks[sid].implementation == pytest.approx(90.0)
        assert marks[slacker].implementation < 90.0
        # the report mark is a group mark regardless
        assert all(m.report == 88.0 for m in marks.values())
