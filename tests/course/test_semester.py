"""Tests for the end-to-end semester simulation (§V-B outcomes)."""

import pytest

from repro.course import SemesterConfig, TOPICS, run_semester
from repro.vcs import contribution_shares


@pytest.fixture(scope="module")
def semester():
    return run_semester(SemesterConfig(n_students=60, seed=2013))


class TestStructuralOutcomes:
    def test_cohort_and_groups(self, semester):
        assert len(semester.students) == 60
        assert len(semester.groups) == 20

    def test_every_group_allocated_two_per_topic(self, semester):
        assert semester.allocation.unallocated == []
        for topic in TOPICS:
            assert len(semester.allocation.groups_on_topic(topic.number)) == 2

    def test_every_group_has_a_repo_with_history(self, semester):
        assert set(semester.repos) == {g.group_id for g in semester.groups}
        for repo in semester.repos.values():
            assert repo.head >= 1

    def test_repos_pass_parc_hygiene(self, semester):
        for gid, report in semester.hygiene.items():
            assert report.clean, f"{gid}: {report}"

    def test_same_topic_groups_produce_different_work(self, semester):
        """'different groups on the same topic still produced considerably
        different results' — their histories are not identical."""
        for topic in TOPICS:
            a, b = semester.allocation.groups_on_topic(topic.number)
            assert semester.repos[a].checkout() != semester.repos[b].checkout() or (
                semester.repos[a].head != semester.repos[b].head
            )


class TestGradingOutcomes:
    def test_every_student_graded(self, semester):
        assert set(semester.marks) == {s.student_id for s in semester.students}

    def test_grades_in_range(self, semester):
        for g in semester.grade_distribution():
            assert 0.0 <= g <= 100.0

    def test_grades_vary(self, semester):
        grades = semester.grade_distribution()
        assert grades[-1] - grades[0] > 10.0

    def test_contribution_visible_per_member(self, semester):
        """The instructors' §IV-A claim: member contributions readable
        from the subversion history."""
        group = semester.groups[0]
        shares = contribution_shares(semester.repos[group.group_id])
        member_ids = {m.student_id for m in group.members}
        assert set(shares) <= member_ids
        assert sum(shares.values()) == pytest.approx(1.0)


class TestPaperReportedOutcomes:
    def test_survey_regenerates_951_figures(self, semester):
        assert [s.agreement_percent for s in semester.survey] == [95, 95, 92]

    def test_masters_students_continue_with_parc(self, semester):
        """§V-B: 'many of those completing SoftEng 751 decide to complete
        such a project with PARC the following semester'."""
        continuing = semester.masters_continuing()
        masters = [s for s in semester.students if s.masters]
        assert len(continuing) > 0
        assert len(continuing) >= len(masters) // 3

    def test_deterministic(self):
        a = run_semester(SemesterConfig(n_students=30, seed=7))
        b = run_semester(SemesterConfig(n_students=30, seed=7))
        assert a.allocation.assignments == b.allocation.assignments
        assert a.grade_distribution() == b.grade_distribution()
