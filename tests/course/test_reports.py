"""Tests for the generated instructor reports."""

import pytest

from repro.course import SemesterConfig, run_semester
from repro.course.reports import course_report, group_report


@pytest.fixture(scope="module")
def semester():
    # n=60 so the survey percentages are exactly representable (95/95/92)
    return run_semester(SemesterConfig(n_students=60, seed=7))


class TestGroupReport:
    def test_contains_members_topic_and_grades(self, semester):
        gid = semester.groups[0].group_id
        report = group_report(semester, gid)
        assert gid in report
        for member in semester.groups[0].members:
            assert member.student_id in report
        assert "topic:" in report
        assert "svn churn share" in report
        assert "surviving lines (blame)" in report

    def test_surviving_lines_positive_for_contributors(self, semester):
        from repro.vcs import contribution_shares

        group = semester.groups[0]
        report = group_report(semester, group.group_id)
        shares = contribution_shares(semester.repos[group.group_id])
        top = max(shares, key=shares.get)  # type: ignore[arg-type]
        # the top contributor's row shows a non-zero surviving-line count
        row = next(line for line in report.splitlines() if line.startswith(top))
        assert any(int(tok) > 0 for tok in row.split("|")[2].split() if tok.isdigit())

    def test_unknown_group_rejected(self, semester):
        with pytest.raises(KeyError):
            group_report(semester, "g99")

    def test_deterministic(self, semester):
        gid = semester.groups[1].group_id
        assert group_report(semester, gid) == group_report(semester, gid)


class TestCourseReport:
    def test_contains_all_sections(self, semester):
        report = course_report(semester)
        assert "semester report" in report
        assert "per-topic activity" in report
        assert "student evaluation" in report
        assert "masters continuing with PARC" in report

    def test_every_topic_listed(self, semester):
        report = course_report(semester)
        for n in range(1, 11):
            assert f"{n}. " in report

    def test_survey_percentages_present(self, semester):
        report = course_report(semester)
        assert "95" in report and "92" in report
