"""Tests for the research-teaching nexus model (Figure 1)."""

from repro.course import (
    NEXUS_QUADRANTS,
    SOFTENG751_ACTIVITIES,
    ContentEmphasis,
    Participation,
    TeachingActivity,
    classify,
)
from repro.course.nexus import quadrant_coverage


class TestModel:
    def test_four_quadrants(self):
        assert set(NEXUS_QUADRANTS.values()) == {
            "research-led",
            "research-oriented",
            "research-tutored",
            "research-based",
        }

    def test_healey_assignments(self):
        """The quadrant definitions from Healey's model."""
        assert (
            NEXUS_QUADRANTS[(Participation.AUDIENCE, ContentEmphasis.RESEARCH_CONTENT)]
            == "research-led"
        )
        assert (
            NEXUS_QUADRANTS[(Participation.PARTICIPANTS, ContentEmphasis.PROCESSES_PROBLEMS)]
            == "research-based"
        )

    def test_classify(self):
        act = TeachingActivity("x", Participation.PARTICIPANTS, ContentEmphasis.RESEARCH_CONTENT)
        assert classify(act) == "research-tutored"


class TestSoftEng751Placement:
    """§III-E's claims about where the course sits on the model."""

    def test_lectures_are_research_led(self):
        by_name = {a.name: a for a in SOFTENG751_ACTIVITIES}
        assert by_name["core-concept lectures"].quadrant == "research-led"
        assert by_name["latest-research lectures"].quadrant == "research-led"

    def test_project_is_research_based(self):
        by_name = {a.name: a for a in SOFTENG751_ACTIVITIES}
        assert by_name["group research project"].quadrant == "research-based"

    def test_presentations_are_research_tutored(self):
        by_name = {a.name: a for a in SOFTENG751_ACTIVITIES}
        assert by_name["group seminar presentations"].quadrant == "research-tutored"
        assert by_name["class discussions"].quadrant == "research-tutored"

    def test_research_oriented_deliberately_empty(self):
        """'The one thing really missing in SoftEng 751 is some explicit
        emphasis on the research methodology' — by design."""
        coverage = quadrant_coverage()
        assert coverage["research-oriented"] == []

    def test_three_quadrants_covered(self):
        coverage = quadrant_coverage()
        covered = [q for q, acts in coverage.items() if acts]
        assert sorted(covered) == ["research-based", "research-led", "research-tutored"]

    def test_every_quadrant_key_present(self):
        assert set(quadrant_coverage()) == set(NEXUS_QUADRANTS.values())
