"""Tests for the doodle-poll allocation (§III-D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.course import DoodlePoll, TOPICS, form_groups, make_cohort


def groups_of(n_students, seed=0):
    return form_groups(make_cohort(n_students, seed=seed), seed=seed)


class TestPaperScenario:
    """'almost 60 students ... 3 per group ... 10 topics x 2 groups'."""

    def test_twenty_groups_all_allocated(self):
        groups = groups_of(60)
        assert len(groups) == 20
        result = DoodlePoll().run(groups, seed=1)
        assert len(result.assignments) == 20
        assert result.unallocated == []

    def test_exactly_two_groups_per_topic(self):
        result = DoodlePoll().run(groups_of(60), seed=2)
        for topic in TOPICS:
            assert len(result.groups_on_topic(topic.number)) == 2

    def test_first_in_first_served(self):
        """The earliest-arriving group always gets its first choice."""
        poll = DoodlePoll()
        entries = poll.make_entries(groups_of(60), seed=3)
        earliest = min(entries, key=lambda e: (e.arrival, e.group.group_id))
        result = poll.allocate(entries)
        assert result.assignments[earliest.group.group_id] == earliest.preferences[0]
        assert result.achieved_rank[earliest.group.group_id] == 0

    def test_most_groups_get_top_choices(self):
        result = DoodlePoll().run(groups_of(60), seed=4)
        assert result.mean_achieved_rank < 2.0
        assert result.first_choice_fraction() > 0.4


class TestMechanics:
    def test_double_response_rejected(self):
        poll = DoodlePoll()
        groups = groups_of(6)
        entries = poll.make_entries(groups, seed=5)
        with pytest.raises(ValueError, match="twice"):
            poll.allocate(entries + [entries[0]])

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DoodlePoll(capacity_per_topic=0)

    def test_oversubscription_leaves_unallocated(self):
        """25 groups, 10x2 slots: exactly 5 must miss out."""
        groups = groups_of(75)
        result = DoodlePoll().run(groups, seed=6)
        assert len(result.assignments) == 20
        assert len(result.unallocated) == 5

    def test_deterministic(self):
        groups = groups_of(30)
        a = DoodlePoll().run(groups, seed=7)
        b = DoodlePoll().run(groups, seed=7)
        assert a.assignments == b.assignments

    def test_preferences_are_full_permutations(self):
        entries = DoodlePoll().make_entries(groups_of(9), seed=8)
        for e in entries:
            assert sorted(e.preferences) == sorted(t.number for t in TOPICS)


class TestInvariants:
    @given(st.integers(min_value=0, max_value=80), st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_capacity_never_exceeded(self, n_students, seed):
        groups = groups_of(max(n_students, 0), seed=seed)
        result = DoodlePoll().run(groups, seed=seed)
        for topic in TOPICS:
            assert len(result.groups_on_topic(topic.number)) <= result.capacity
        # every group appears exactly once across assignments + unallocated
        seen = set(result.assignments) | set(result.unallocated)
        assert len(seen) == len(groups)
        assert len(result.assignments) + len(result.unallocated) == len(groups)

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=15, deadline=None)
    def test_nobody_unallocated_when_supply_sufficient(self, n_students):
        groups = groups_of(n_students)
        if len(groups) <= 20:
            result = DoodlePoll().run(groups, seed=9)
            assert result.unallocated == []
