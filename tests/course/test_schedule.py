"""Tests for the course structure (Figure 2)."""

import pytest

from repro.course import SOFTENG751_SCHEDULE, WeekUse, build_semester
from repro.course.schedule import schedule_rows


class TestPaperStructure:
    """Figure 2's exact shape, pinned."""

    def test_fourteen_calendar_weeks(self):
        assert len(SOFTENG751_SCHEDULE) == 14  # 12 teaching + 2 break

    def test_twelve_teaching_weeks(self):
        assert sum(1 for w in SOFTENG751_SCHEDULE if WeekUse.BREAK not in w.uses) == 12

    def test_first_five_weeks_instructor_led(self):
        teaching = [w for w in SOFTENG751_SCHEDULE if w.number > 0]
        for w in teaching[:5]:
            assert w.uses == (WeekUse.INSTRUCTOR_TEACHING,)

    def test_week6_is_test1(self):
        week6 = next(w for w in SOFTENG751_SCHEDULE if w.number == 6)
        assert WeekUse.ASSESSMENT in week6.uses
        assert "test 1" in week6.notes

    def test_break_after_week6(self):
        labels = [w.label for w in SOFTENG751_SCHEDULE]
        i6 = labels.index("week 6")
        assert SOFTENG751_SCHEDULE[i6 + 1].uses == (WeekUse.BREAK,)
        assert SOFTENG751_SCHEDULE[i6 + 2].uses == (WeekUse.BREAK,)

    def test_weeks_7_to_10_student_presentations(self):
        for n in (7, 8, 9, 10):
            week = next(w for w in SOFTENG751_SCHEDULE if w.number == n)
            assert WeekUse.STUDENT_TEACHING in week.uses
            assert WeekUse.PROJECT in week.uses

    def test_week11_is_test2(self):
        week11 = next(w for w in SOFTENG751_SCHEDULE if w.number == 11)
        assert WeekUse.ASSESSMENT in week11.uses
        assert "test 2" in week11.notes

    def test_week12_project_due(self):
        week12 = next(w for w in SOFTENG751_SCHEDULE if w.number == 12)
        assert week12.uses == (WeekUse.PROJECT,)
        assert "due" in week12.notes

    def test_codes_render(self):
        rows = schedule_rows()
        assert rows[0][1] == "IT"
        assert any(code == "ST+P" for _l, code, _n in rows)


class TestBuilder:
    def test_custom_shape(self):
        weeks = build_semester(4, 1, 4)
        assert len(weeks) == 9
        assert sum(1 for w in weeks if WeekUse.BREAK in w.uses) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            build_semester(-1, 2, 6)
