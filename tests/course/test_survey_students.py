"""Tests for the Likert survey (§V-A), cohort and group formation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.course import (
    PAPER_QUESTIONS,
    LikertQuestion,
    form_groups,
    make_cohort,
    run_survey,
)
from repro.course.survey import Likert, _apportion


class TestPaperNumbers:
    """The reported agreement figures, regenerated from responses."""

    def test_95_95_92(self):
        summaries = run_survey(n_respondents=60, seed=0)
        assert [s.agreement_percent for s in summaries] == [95, 95, 92]

    def test_robust_across_seeds(self):
        for seed in range(5):
            summaries = run_survey(n_respondents=60, seed=seed)
            assert [s.agreement_percent for s in summaries] == [95, 95, 92]

    def test_robust_across_cohort_sizes(self):
        """'almost 60 students': the figures hold to within a point for
        nearby sizes (some percentages are unrepresentable at e.g. n=57,
        where agreement can only be 52/57=91% or 53/57=93%)."""
        for n in (57, 58, 60, 62):
            summaries = run_survey(n_respondents=n, seed=1)
            for measured, target in zip(summaries, (95, 95, 92)):
                assert abs(measured.agreement_percent - target) <= 1

    def test_counts_sum_to_n(self):
        for s in run_survey(n_respondents=60):
            assert s.n == 60

    def test_mean_score_high(self):
        for s in run_survey(n_respondents=60):
            assert s.mean_score > 4.0  # overwhelmingly positive

    def test_question_texts_from_paper(self):
        texts = [q.text for q in PAPER_QUESTIONS]
        assert "The objectives of the lectures were clearly explained" in texts
        assert "The class discussions were effective in helping me learn" in texts


class TestSurveyMechanics:
    def test_bad_distribution_rejected(self):
        with pytest.raises(ValueError):
            LikertQuestion("q", (0.5, 0.5, 0.5, 0.0, 0.0))

    def test_negative_respondents_rejected(self):
        with pytest.raises(ValueError):
            run_survey(n_respondents=-1)

    def test_zero_respondents(self):
        for s in run_survey(n_respondents=0):
            assert s.n == 0
            assert s.agreement == 0.0

    def test_proportion_accessor(self):
        s = run_survey(n_respondents=100, seed=2)[0]
        assert s.proportion(Likert.STRONGLY_AGREE) > 0.4

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_apportion_exact(self, n):
        counts = _apportion((0.0, 0.02, 0.03, 0.40, 0.55), n)
        assert sum(counts) == n
        assert all(c >= 0 for c in counts)


class TestCohort:
    def test_size_and_ids_unique(self):
        cohort = make_cohort(60, seed=1)
        assert len(cohort) == 60
        assert len({s.student_id for s in cohort}) == 60

    def test_deterministic(self):
        assert make_cohort(10, seed=3) == make_cohort(10, seed=3)

    def test_ability_in_unit_interval(self):
        assert all(0 <= s.ability <= 1 for s in make_cohort(100, seed=4))

    def test_masters_fraction_rough(self):
        cohort = make_cohort(200, seed=5, masters_fraction=0.25)
        frac = sum(s.masters for s in cohort) / 200
        assert 0.15 < frac < 0.35

    def test_validation(self):
        with pytest.raises(ValueError):
            make_cohort(-1)
        with pytest.raises(ValueError):
            make_cohort(10, masters_fraction=1.5)


class TestGroups:
    def test_sixty_students_twenty_triples(self):
        groups = form_groups(make_cohort(60, seed=1), seed=1)
        assert len(groups) == 20
        assert all(g.size == 3 for g in groups)

    def test_everyone_in_exactly_one_group(self):
        cohort = make_cohort(61, seed=2)
        groups = form_groups(cohort, seed=2)
        ids = [m.student_id for g in groups for m in g.members]
        assert sorted(ids) == sorted(s.student_id for s in cohort)

    def test_remainder_absorbed(self):
        groups = form_groups(make_cohort(61, seed=3), seed=3)
        assert sorted(g.size for g in groups)[-1] == 4  # one group of 4

    def test_empty_cohort(self):
        assert form_groups([], seed=1) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            form_groups(make_cohort(6), group_size=0)
