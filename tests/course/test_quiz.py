"""Tests for the generated Test 1 (core concepts quiz)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.course.quiz import Quiz, QuizQuestion, generate_quiz, grade, simulate_student_answers
from repro.util.stats import amdahl_speedup


class TestGeneration:
    def test_deterministic(self):
        a = generate_quiz(seed=5)
        b = generate_quiz(seed=5)
        assert a == b

    def test_different_seeds_different_papers(self):
        assert generate_quiz(seed=1) != generate_quiz(seed=2)

    def test_covers_every_topic(self):
        quiz = generate_quiz(seed=3, n_questions=10)
        topics = quiz.topics()
        assert {"amdahl", "work-span", "schedules", "memory-model"} <= topics
        assert topics & {"speedup", "efficiency"}  # the timing generator fires too

    def test_too_few_questions_rejected(self):
        with pytest.raises(ValueError):
            generate_quiz(n_questions=3)

    def test_answers_are_finite(self):
        for q in generate_quiz(seed=7, n_questions=20).questions:
            assert q.answer == q.answer  # not NaN
            assert abs(q.answer) < 1e6

    def test_amdahl_questions_verifiable(self):
        """Question answers agree with the library they were built from."""
        for q in generate_quiz(seed=11, n_questions=20).questions:
            if q.topic == "amdahl":
                # parse f and p back out of the prompt and recompute
                words = q.prompt.split()
                f = float(words[words.index("fraction") + 1].rstrip("."))
                p = int(words[words.index("on") + 1])
                assert q.answer == pytest.approx(amdahl_speedup(f, p))


class TestGrading:
    def test_perfect_answers_score_100(self):
        quiz = generate_quiz(seed=1)
        assert grade(quiz, [q.answer for q in quiz.questions]) == 100.0

    def test_all_wrong_scores_0(self):
        quiz = generate_quiz(seed=1)
        assert grade(quiz, [q.answer + 100.0 for q in quiz.questions]) == 0.0

    def test_tolerance_accepts_rounding(self):
        q = QuizQuestion(topic="t", prompt="p", answer=5.925, tolerance=1e-2)
        assert q.is_correct(5.93)
        assert not q.is_correct(6.2)

    def test_discrete_question_exact_only(self):
        q = QuizQuestion(topic="t", prompt="p", answer=4.0, tolerance=0.0)
        assert q.is_correct(4.0)
        assert not q.is_correct(4.4)

    def test_wrong_answer_count_rejected(self):
        quiz = generate_quiz(seed=1)
        with pytest.raises(ValueError):
            grade(quiz, [1.0])


class TestStudentModel:
    def test_ability_monotone_in_expectation(self):
        quiz = generate_quiz(seed=2, n_questions=15)

        def mean_mark(ability):
            marks = [
                grade(quiz, simulate_student_answers(quiz, ability, seed=s)) for s in range(30)
            ]
            return sum(marks) / len(marks)

        weak, strong = mean_mark(0.2), mean_mark(0.95)
        assert strong > weak + 20

    def test_deterministic_per_seed(self):
        quiz = generate_quiz(seed=2)
        a = simulate_student_answers(quiz, 0.7, seed=9)
        b = simulate_student_answers(quiz, 0.7, seed=9)
        assert a == b

    def test_ability_validation(self):
        quiz = generate_quiz(seed=2)
        with pytest.raises(ValueError):
            simulate_student_answers(quiz, 1.5)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_marks_always_in_range(self, ability, seed):
        quiz = generate_quiz(seed=4)
        mark = grade(quiz, simulate_student_answers(quiz, ability, seed=seed))
        assert 0.0 <= mark <= 100.0
