"""Tests for the work-stealing thread pool (real concurrency)."""

import threading
import time

import pytest

from repro.executor import WorkStealingPool
from repro.executor.base import ExecutorShutdown


@pytest.fixture
def pool():
    p = WorkStealingPool(workers=4, name="test")
    yield p
    p.shutdown()


class TestBasicExecution:
    def test_submit_and_result(self, pool):
        assert pool.submit(lambda: 21 * 2).result(timeout=5) == 42

    def test_args_kwargs(self, pool):
        f = pool.submit(lambda a, b=0: a - b, 10, b=4)
        assert f.result(timeout=5) == 6

    def test_exception_propagates(self, pool):
        def boom():
            raise ValueError("pool boom")

        with pytest.raises(ValueError, match="pool boom"):
            pool.submit(boom).result(timeout=5)

    def test_many_tasks(self, pool):
        futures = [pool.submit(lambda i=i: i * i) for i in range(200)]
        assert [f.result(timeout=10) for f in futures] == [i * i for i in range(200)]

    def test_runs_on_worker_threads(self, pool):
        names = {pool.submit(lambda: threading.current_thread().name).result(timeout=5) for _ in range(20)}
        assert all(n.startswith("test-w") for n in names)

    def test_map(self, pool):
        futures = pool.map(lambda x: x + 1, list(range(10)))
        assert pool.wait_all(futures) == list(range(1, 11))


class TestRecursiveForkJoin:
    def test_nested_join_does_not_deadlock(self):
        """Recursive fib on a pool smaller than the task tree: helping."""
        with WorkStealingPool(workers=2, name="fj") as pool:

            def fib(n):
                if n < 2:
                    return n
                left = pool.submit(fib, n - 1)
                right = pool.submit(fib, n - 2)
                return left.result(timeout=30) + right.result(timeout=30)

            assert pool.submit(fib, 10).result(timeout=30) == 55

    def test_single_worker_fork_join(self):
        """Even one worker completes a fork-join program via helping."""
        with WorkStealingPool(workers=1, name="one") as pool:

            def tree(depth):
                if depth == 0:
                    return 1
                children = [pool.submit(tree, depth - 1) for _ in range(2)]
                return sum(c.result(timeout=30) for c in children)

            assert pool.submit(tree, 5).result(timeout=30) == 32

    def test_helping_is_counted(self):
        with WorkStealingPool(workers=2, name="help") as pool:

            def parent():
                kids = [pool.submit(lambda: 1) for _ in range(50)]
                return sum(k.result(timeout=30) for k in kids)

            assert pool.submit(parent).result(timeout=30) == 50
        assert pool.stats.tasks_executed == 51


class TestDependencies:
    def test_after_ordering(self, pool):
        order = []
        gate = threading.Event()

        def first():
            gate.wait(timeout=5)
            order.append("first")

        def second():
            order.append("second")

        f1 = pool.submit(first)
        f2 = pool.submit(second, after=[f1])
        gate.set()
        f2.result(timeout=5)
        assert order == ["first", "second"]

    def test_after_many(self, pool):
        deps = [pool.submit(lambda i=i: i) for i in range(10)]
        f = pool.submit(lambda: "done", after=deps)
        assert f.result(timeout=5) == "done"

    def test_after_failure_propagates(self, pool):
        def boom():
            raise RuntimeError("dep")

        bad = pool.submit(boom)
        f = pool.submit(lambda: "never", after=[bad])
        with pytest.raises(RuntimeError, match="dep"):
            f.result(timeout=5)


class TestSynchronisation:
    def test_critical_mutual_exclusion(self, pool):
        counter = {"v": 0, "max_inside": 0, "inside": 0}

        def bump():
            with pool.critical("c"):
                counter["inside"] += 1
                counter["max_inside"] = max(counter["max_inside"], counter["inside"])
                v = counter["v"]
                time.sleep(0.0005)
                counter["v"] = v + 1
                counter["inside"] -= 1

        futures = [pool.submit(bump) for _ in range(30)]
        pool.wait_all(futures)
        assert counter["v"] == 30
        assert counter["max_inside"] == 1

    def test_barrier_synchronises(self, pool):
        reached = []
        after = []

        def member(i):
            reached.append(i)
            pool.barrier("team", parties=4)
            after.append((i, len(reached)))

        futures = [pool.submit(member, i) for i in range(4)]
        pool.wait_all(futures)
        # nobody passed the barrier before all four arrived
        assert all(n == 4 for _, n in after)

    def test_barrier_parties_exceeding_workers_rejected(self, pool):
        f = pool.submit(lambda: pool.barrier("big", parties=99))
        with pytest.raises(RuntimeError, match="deadlock"):
            f.result(timeout=5)

    def test_barrier_parties_mismatch_rejected(self, pool):
        futures = [pool.submit(lambda: pool.barrier("mix", parties=2)) for _ in range(2)]
        pool.wait_all(futures)
        f = pool.submit(lambda: pool.barrier("mix", parties=3))
        with pytest.raises(RuntimeError, match="reused"):
            f.result(timeout=5)


class TestComputeModes:
    def test_sleep_mode_takes_time(self):
        with WorkStealingPool(workers=1, compute_mode="sleep", time_scale=0.05) as pool:
            start = time.monotonic()
            pool.submit(lambda: pool.compute(1.0)).result(timeout=5)
            assert time.monotonic() - start >= 0.045

    def test_spin_mode_takes_time(self):
        with WorkStealingPool(workers=1, compute_mode="spin", time_scale=0.02) as pool:
            start = time.monotonic()
            pool.submit(lambda: pool.compute(1.0)).result(timeout=5)
            assert time.monotonic() - start >= 0.015

    def test_noop_mode_fast(self, pool):
        start = time.monotonic()
        pool.submit(lambda: pool.compute(100.0)).result(timeout=5)
        assert time.monotonic() - start < 1.0

    def test_negative_cost_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.compute(-1)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            WorkStealingPool(workers=1, compute_mode="warp")


class TestLifecycle:
    def test_shutdown_idempotent(self):
        pool = WorkStealingPool(workers=2)
        pool.shutdown()
        pool.shutdown()

    def test_submit_after_shutdown_rejected(self):
        pool = WorkStealingPool(workers=2)
        pool.shutdown()
        with pytest.raises(ExecutorShutdown):
            pool.submit(lambda: 1)

    def test_queued_work_drains_before_shutdown(self):
        pool = WorkStealingPool(workers=2)
        futures = [pool.submit(lambda i=i: i) for i in range(100)]
        pool.shutdown()
        assert [f.result(timeout=1) for f in futures] == list(range(100))

    def test_task_id_distinct_per_task(self, pool):
        ids = pool.wait_all([pool.submit(pool.task_id) for _ in range(20)])
        assert len(set(ids)) == 20
        assert pool.task_id() == 0  # main thread is task 0

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            WorkStealingPool(workers=0)

    def test_stats_per_worker_sum(self):
        with WorkStealingPool(workers=3) as pool:
            pool.wait_all([pool.submit(lambda: None) for _ in range(30)])
        assert sum(pool.stats.per_worker_executed) == pool.stats.tasks_executed == 30


def _square(x):
    return x * x


class TestSubmitMany:
    def test_matches_submit_loop(self, pool):
        futures = pool.submit_many(_square, [(i,) for i in range(50)])
        assert pool.wait_all(futures) == [i * i for i in range(50)]

    def test_order_preserved(self, pool):
        futures = pool.submit_many(lambda a, b: a - b, [(10, i) for i in range(8)])
        assert [f.result(timeout=5) for f in futures] == [10 - i for i in range(8)]

    def test_empty_batch(self, pool):
        assert pool.submit_many(_square, []) == []

    def test_costs_length_validated(self, pool):
        with pytest.raises(ValueError):
            pool.submit_many(_square, [(1,), (2,)], costs=[0.1])

    def test_rejected_after_shutdown(self):
        pool = WorkStealingPool(workers=2)
        pool.shutdown()
        with pytest.raises(ExecutorShutdown):
            pool.submit_many(_square, [(1,)])

    def test_submit_many_from_worker_thread(self, pool):
        def fan_out():
            futures = pool.submit_many(_square, [(i,) for i in range(10)])
            return [f.result(timeout=10) for f in futures]

        assert pool.submit(fan_out).result(timeout=10) == [i * i for i in range(10)]

    def test_inline_default_implementation(self):
        from repro.executor.factory import create

        with create("inline") as ex:
            futures = ex.submit_many(_square, [(i,) for i in range(5)])
            assert [f.result() for f in futures] == [0, 1, 4, 9, 16]
