"""Tests for the shared Future."""

import threading

import pytest

from repro.executor.future import CancelledError, Future, FutureError


class TestCompletion:
    def test_result_roundtrip(self):
        f = Future("f")
        f.set_result(42)
        assert f.done()
        assert f.result() == 42
        assert f.exception() is None

    def test_exception_roundtrip(self):
        f = Future("f")
        f.set_exception(ValueError("bad"))
        assert f.done()
        with pytest.raises(ValueError, match="bad"):
            f.result()
        assert isinstance(f.exception(), ValueError)

    def test_double_completion_rejected(self):
        f = Future()
        f.set_result(1)
        with pytest.raises(FutureError):
            f.set_result(2)
        with pytest.raises(FutureError):
            f.set_exception(RuntimeError())

    def test_set_exception_requires_exception(self):
        f = Future()
        with pytest.raises(TypeError):
            f.set_exception("not an exception")  # type: ignore[arg-type]

    def test_none_is_a_valid_result(self):
        f = Future()
        f.set_result(None)
        assert f.done()
        assert f.result() is None


class TestBlocking:
    def test_result_timeout(self):
        f = Future("slow")
        with pytest.raises(TimeoutError):
            f.result(timeout=0.01)

    def test_peek_pending_raises(self):
        f = Future()
        with pytest.raises(FutureError):
            f.peek()

    def test_peek_done(self):
        f = Future()
        f.set_result("v")
        assert f.peek() == "v"

    def test_result_unblocks_across_threads(self):
        f = Future()
        results = []

        def consumer():
            results.append(f.result(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        f.set_result("hello")
        t.join(timeout=5.0)
        assert results == ["hello"]


class TestCallbacks:
    def test_callback_after_completion_runs_immediately(self):
        f = Future()
        f.set_result(1)
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.result()))
        assert seen == [1]

    def test_callback_before_completion(self):
        f = Future()
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.result()))
        assert seen == []
        f.set_result(9)
        assert seen == [9]

    def test_callbacks_run_in_registration_order(self):
        f = Future()
        order = []
        for i in range(5):
            f.add_done_callback(lambda _f, i=i: order.append(i))
        f.set_result(None)
        assert order == [0, 1, 2, 3, 4]

    def test_callback_runs_exactly_once(self):
        f = Future()
        count = [0]
        f.add_done_callback(lambda _f: count.__setitem__(0, count[0] + 1))
        f.set_result(None)
        assert count[0] == 1

    def test_callback_on_failure(self):
        f = Future()
        seen = []
        f.add_done_callback(lambda fut: seen.append(type(fut.exception())))
        f.set_exception(KeyError("k"))
        assert seen == [KeyError]

    def test_meta_dict(self):
        f = Future()
        f.meta["last_sid"] = 7
        assert f.meta["last_sid"] == 7


class TestCancellation:
    def test_cancel_pending(self):
        f = Future(name="job")
        assert f.cancel("not needed")
        assert f.cancelled() and f.done()
        with pytest.raises(CancelledError, match="not needed"):
            f.result()

    def test_cancel_is_once_only(self):
        f = Future()
        assert f.cancel()
        assert not f.cancel()

    def test_cancel_after_completion_fails(self):
        f = Future()
        f.set_result(1)
        assert not f.cancel()
        assert not f.cancelled()
        assert f.result() == 1

    def test_cancel_with_exception_instance(self):
        boom = RuntimeError("custom reason")
        f = Future()
        f.cancel(boom)
        assert type(f.exception()) is RuntimeError
        with pytest.raises(RuntimeError, match="custom reason"):
            f.result()

    def test_cancel_runs_done_callbacks(self):
        f = Future()
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.cancelled()))
        f.cancel()
        assert seen == [True]

    def test_try_start_claims_pending(self):
        f = Future()
        assert f.try_start()
        assert f.running() and not f.done()
        assert not f.try_start()  # already claimed

    def test_try_start_beats_cancel(self):
        f = Future()
        assert f.try_start()
        assert not f.cancel()  # the running task owns the future now
        f.set_result("ran")
        assert f.result() == "ran"

    def test_exception_returns_cancellation_without_raising(self):
        f = Future()
        f.cancel("why")
        assert isinstance(f.exception(), CancelledError)

    def test_fail_if_pending_races_cancel(self):
        f = Future()
        assert f.cancel()
        assert not f.fail_if_pending(RuntimeError("stranded"))
        assert f.cancelled()

    def test_fail_if_pending_on_pending(self):
        f = Future()
        assert f.fail_if_pending(RuntimeError("stranded"))
        assert not f.cancelled()
        with pytest.raises(RuntimeError, match="stranded"):
            f.result()


class TestPerWaiterException:
    def test_waiters_get_distinct_instances(self):
        """Regression: re-raising the one stored instance let concurrent
        waiters mutate a single shared traceback."""
        f = Future()
        try:
            raise ValueError("boom")
        except ValueError as exc:
            f.set_exception(exc)
        stored = f.exception()
        raised = []
        for _ in range(2):
            with pytest.raises(ValueError, match="boom"):
                f.result()
            try:
                f.result()
            except ValueError as exc:
                raised.append(exc)
        assert raised[0] is not stored
        assert raised[1] is not stored
        assert raised[0] is not raised[1]

    def test_copy_preserves_cause_and_traceback(self):
        f = Future()
        try:
            try:
                raise KeyError("inner")
            except KeyError as cause:
                raise ValueError("outer") from cause
        except ValueError as exc:
            f.set_exception(exc)
        try:
            f.result()
        except ValueError as raised:
            assert isinstance(raised.__cause__, KeyError)
            assert raised.__traceback__ is not None
        stored = f.exception()
        assert isinstance(stored.__cause__, KeyError)

    def test_concurrent_result_from_threads(self):
        f = Future()
        try:
            raise RuntimeError("shared")
        except RuntimeError as exc:
            f.set_exception(exc)
        got = []
        lock = threading.Lock()

        def wait():
            try:
                f.result()
            except RuntimeError as exc:
                with lock:
                    got.append(exc)

        threads = [threading.Thread(target=wait) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(got) == 8
        assert len({id(e) for e in got}) == 8  # one copy per waiter
