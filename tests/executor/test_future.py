"""Tests for the shared Future."""

import threading

import pytest

from repro.executor.future import Future, FutureError


class TestCompletion:
    def test_result_roundtrip(self):
        f = Future("f")
        f.set_result(42)
        assert f.done()
        assert f.result() == 42
        assert f.exception() is None

    def test_exception_roundtrip(self):
        f = Future("f")
        f.set_exception(ValueError("bad"))
        assert f.done()
        with pytest.raises(ValueError, match="bad"):
            f.result()
        assert isinstance(f.exception(), ValueError)

    def test_double_completion_rejected(self):
        f = Future()
        f.set_result(1)
        with pytest.raises(FutureError):
            f.set_result(2)
        with pytest.raises(FutureError):
            f.set_exception(RuntimeError())

    def test_set_exception_requires_exception(self):
        f = Future()
        with pytest.raises(TypeError):
            f.set_exception("not an exception")  # type: ignore[arg-type]

    def test_none_is_a_valid_result(self):
        f = Future()
        f.set_result(None)
        assert f.done()
        assert f.result() is None


class TestBlocking:
    def test_result_timeout(self):
        f = Future("slow")
        with pytest.raises(TimeoutError):
            f.result(timeout=0.01)

    def test_peek_pending_raises(self):
        f = Future()
        with pytest.raises(FutureError):
            f.peek()

    def test_peek_done(self):
        f = Future()
        f.set_result("v")
        assert f.peek() == "v"

    def test_result_unblocks_across_threads(self):
        f = Future()
        results = []

        def consumer():
            results.append(f.result(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        f.set_result("hello")
        t.join(timeout=5.0)
        assert results == ["hello"]


class TestCallbacks:
    def test_callback_after_completion_runs_immediately(self):
        f = Future()
        f.set_result(1)
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.result()))
        assert seen == [1]

    def test_callback_before_completion(self):
        f = Future()
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.result()))
        assert seen == []
        f.set_result(9)
        assert seen == [9]

    def test_callbacks_run_in_registration_order(self):
        f = Future()
        order = []
        for i in range(5):
            f.add_done_callback(lambda _f, i=i: order.append(i))
        f.set_result(None)
        assert order == [0, 1, 2, 3, 4]

    def test_callback_runs_exactly_once(self):
        f = Future()
        count = [0]
        f.add_done_callback(lambda _f: count.__setitem__(0, count[0] + 1))
        f.set_result(None)
        assert count[0] == 1

    def test_callback_on_failure(self):
        f = Future()
        seen = []
        f.add_done_callback(lambda fut: seen.append(type(fut.exception())))
        f.set_exception(KeyError("k"))
        assert seen == [KeyError]

    def test_meta_dict(self):
        f = Future()
        f.meta["last_sid"] = 7
        assert f.meta["last_sid"] == 7
