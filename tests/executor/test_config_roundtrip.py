"""ExecutorConfig <-> plain dict round-trips, property-tested."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import ExecutorConfig
from repro.machine.spec import PARC64, MachineSpec
from repro.obs import TraceRecorder
from repro.resilience import FaultPlan

_OPTIONS_BY_KIND = {
    "inline": {},
    "threads": {"compute_mode": st.sampled_from(["noop", "sleep"]), "time_scale": st.floats(0.01, 10)},
    "sim": {"policy": st.sampled_from(["earliest", "random"])},
    "processes": {"prefetch": st.integers(1, 8), "shm_threshold": st.integers(1, 1 << 20)},
}

_machines = st.builds(
    MachineSpec,
    name=st.text(min_size=1, max_size=12),
    cores=st.integers(1, 128),
    speed=st.floats(0.1, 8.0),
    dispatch_overhead=st.floats(0.0, 1e-2),
    memory_bandwidth_penalty=st.floats(0.0, 0.5),
    cross_core_penalty=st.floats(0.0, 1e-3),
    description=st.text(max_size=20),
)

_faults = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**31),
    failure_rate=st.floats(0.0, 1.0),
    task_failure_rate=st.floats(0.0, 1.0),
    latency_spike_rate=st.floats(0.0, 1.0),
)


@st.composite
def _configs(draw):
    kind = draw(st.sampled_from(sorted(_OPTIONS_BY_KIND)))
    option_strats = _OPTIONS_BY_KIND[kind]
    chosen = draw(
        st.lists(st.sampled_from(sorted(option_strats)), unique=True)
        if option_strats
        else st.just([])
    )
    options = {key: draw(option_strats[key]) for key in chosen}
    cores = draw(st.none() | st.integers(1, 64)) if kind != "inline" else draw(st.none() | st.just(1))
    machine = draw(st.none() | _machines) if kind != "inline" else None
    return ExecutorConfig(
        kind=kind,
        cores=cores,
        machine=machine,
        faults=draw(st.none() | _faults),
        options=options,
    )


@settings(max_examples=60, deadline=None)
@given(cfg=_configs())
def test_to_dict_from_dict_round_trips(cfg):
    data = cfg.to_dict()
    # the snapshot is plain data: JSON-ish types only
    assert set(data) == {"kind", "cores", "machine", "faults", "options"}
    rebuilt = ExecutorConfig.from_dict(data)
    assert rebuilt == cfg
    # and a second trip is exact too (serialisation is a fixpoint)
    assert rebuilt.to_dict() == data


def test_aliases_normalise_before_serialising():
    cfg = ExecutorConfig(kind="mp", cores=2)
    assert cfg.kind == "processes"
    assert ExecutorConfig.from_dict(cfg.to_dict()).kind == "processes"


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match=r"unknown ExecutorConfig keys \['colour'\]"):
        ExecutorConfig.from_dict({"kind": "inline", "colour": "red"})


def test_from_dict_requires_kind():
    with pytest.raises(ValueError, match="missing the required 'kind'"):
        ExecutorConfig.from_dict({"cores": 2})


def test_from_dict_rejects_non_dict():
    with pytest.raises(ValueError, match="expects a dict"):
        ExecutorConfig.from_dict(["inline"])


def test_from_dict_rejects_bad_machine():
    with pytest.raises(ValueError, match="bad machine spec"):
        ExecutorConfig.from_dict({"kind": "sim", "machine": {"warp": 9}})


def test_from_dict_rejects_bad_faults():
    with pytest.raises(ValueError, match="bad fault plan"):
        ExecutorConfig.from_dict({"kind": "inline", "faults": {"chaos": True}})


def test_from_dict_rejects_non_dict_options():
    with pytest.raises(ValueError, match="options must be a dict"):
        ExecutorConfig.from_dict({"kind": "threads", "options": ["compute_mode"]})


def test_unknown_options_rejected_eagerly():
    with pytest.raises(ValueError, match=r"options \['warp'\] not understood by the 'threads'"):
        ExecutorConfig(kind="threads", options={"warp": 9})


def test_live_trace_recorder_refuses_to_serialise():
    cfg = ExecutorConfig(kind="inline", trace=TraceRecorder())
    with pytest.raises(ValueError, match="cannot be serialised"):
        cfg.to_dict()


def test_machine_survives_round_trip_exactly():
    cfg = ExecutorConfig(kind="sim", machine=PARC64, cores=16)
    rebuilt = ExecutorConfig.from_dict(cfg.to_dict())
    assert rebuilt.machine == PARC64
    assert rebuilt.resolved_machine() == cfg.resolved_machine()
