"""The processes backend: results, shm plane, traces, lifecycle.

Everything submitted here is a module-level function from the ``repro``
package (or NumPy), so the spawn-started workers can unpickle tasks
without importing the test module — the same spawn-safety discipline the
backend asks of applications.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.apps.kernels.matmul import matmul_tasks
from repro.apps.sorting import quicksort_chunks
from repro.executor import ExecutorShutdown, create
from repro.obs import TraceRecorder
from repro.resilience import (
    CancelledError,
    CancelToken,
    DeadlineExceeded,
    FaultPlan,
    InjectedFault,
)


@pytest.fixture(scope="module")
def pool():
    """One shared 2-worker pool: spawn cost is paid once per module."""
    with create("processes", cores=2) as ex:
        yield ex


class TestResults:
    def test_submit_returns_results(self, pool):
        futures = [pool.submit(np.sum, np.arange(i + 1), name=f"s{i}") for i in range(6)]
        assert [int(f.result()) for f in futures] == [0, 1, 3, 6, 10, 15]

    def test_exceptions_propagate(self, pool):
        f = pool.submit(np.linalg.inv, np.zeros((2, 2)), name="singular")
        with pytest.raises(np.linalg.LinAlgError):
            f.result()

    def test_matmul_through_the_shm_plane(self, pool):
        rng = np.random.default_rng(0)
        a, b = rng.random((160, 160)), rng.random((160, 160))  # > shm threshold
        assert np.allclose(matmul_tasks(a, b, pool, block=40), a @ b)

    def test_quicksort_chunks(self, pool):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 10_000, size=50_000)
        assert np.array_equal(quicksort_chunks(pool, values, chunks=4), np.sort(values))

    def test_map_preserves_order(self, pool):
        futures = pool.map(np.sum, [np.arange(n) for n in (3, 1, 2)])
        assert [int(f.result()) for f in futures] == [3, 0, 1]

    def test_cores_reported(self, pool):
        assert pool.cores == 2

    def test_barrier_unsupported(self, pool):
        with pytest.raises(RuntimeError, match="no cross-process barriers"):
            pool.barrier("phase", 2)

    def test_negative_deadline_rejected(self, pool):
        with pytest.raises(ValueError, match="deadline"):
            pool.submit(np.sum, np.arange(3), deadline=-1.0)


class TestTraceShards:
    def test_merged_trace_attributes_work_to_worker_processes(self):
        recorder = TraceRecorder()
        with create("processes", cores=2, trace=recorder) as ex:
            futures = [ex.submit(np.sum, np.arange(64), name=f"t{i}") for i in range(8)]
            for f in futures:
                f.result()
        events = recorder.events()
        submits = [e for e in events if e.kind == "submit"]
        spans = [e for e in events if e.kind == "task" and e.phase == "B"]
        assert len(submits) == 8
        assert len(spans) == 8
        # every executed span carries its worker lane and worker pid
        assert {e.worker for e in spans} <= {0, 1}
        pids = {e.attrs.get("pid") for e in spans}
        assert pids and None not in pids
        counters = recorder.metrics.snapshot()
        assert counters.get("procs.submitted") == 8
        assert counters.get("procs.tasks_executed") == 8


class TestLifecycle:
    def test_cancel_while_queued(self):
        with create("processes", cores=1, prefetch=1) as ex:
            blocker = ex.submit(time.sleep, 0.4, name="blocker")
            token = CancelToken("stop")
            queued = [ex.submit(time.sleep, 0.2, name=f"q{i}", cancel=token) for i in range(4)]
            token.cancel("user clicked stop")
            for f in queued:
                with pytest.raises(CancelledError):
                    f.result(timeout=10)
            assert blocker.result(timeout=10) is None

    def test_deadline_on_queued_task(self):
        with create("processes", cores=1, prefetch=1) as ex:
            ex.submit(time.sleep, 0.5, name="hog")
            ex.submit(time.sleep, 0.5, name="hog2")
            late = ex.submit(time.sleep, 0.05, name="late", deadline=0.15)
            with pytest.raises(DeadlineExceeded):
                late.result(timeout=10)

    def test_seeded_faults_are_deterministic_across_processes(self):
        plan = FaultPlan(seed=7, task_failure_rate=0.4)

        def outcomes():
            with create("processes", cores=2, faults=plan) as ex:
                futures = [ex.submit(np.sum, np.arange(4), name=f"t{i}") for i in range(12)]
                out = []
                for f in futures:
                    try:
                        f.result(timeout=30)
                        out.append("ok")
                    except InjectedFault:
                        out.append("fault")
                return out

        first, second = outcomes(), outcomes()
        assert first == second
        assert "fault" in first and "ok" in first

    def test_shutdown_without_drain_strands_queued_tasks(self):
        ex = create("processes", cores=1, prefetch=1)
        ex.submit(time.sleep, 0.3, name="running")
        stranded = [ex.submit(time.sleep, 0.2, name=f"s{i}") for i in range(4)]
        ex.shutdown(drain=False)
        hit = 0
        for f in stranded:
            try:
                f.result(timeout=5)
            except ExecutorShutdown:
                hit += 1
        assert hit == len(stranded)

    def test_submit_after_shutdown_raises(self):
        ex = create("processes", cores=1)
        ex.shutdown()
        with pytest.raises(ExecutorShutdown):
            ex.submit(np.sum, np.arange(3))


class TestConfigSurface:
    def test_unknown_option_rejected_without_spawning(self):
        with pytest.raises(ValueError, match="not understood by the 'processes'"):
            create("processes", cores=2, steal_seed=3)

    def test_alias_creates_processes(self):
        ex = create("mp", cores=1)
        try:
            assert type(ex).__name__ == "ProcessPool"
        finally:
            ex.shutdown()
