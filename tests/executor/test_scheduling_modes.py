"""Tests for the pool's structural ablation: stealing vs central queue."""

import pytest

from repro.executor import WorkStealingPool


def run_nested_workload(pool, fanout=20, grandchildren=5):
    """A worker-spawns-children workload: the case the deques exist for."""

    def child(i):
        grand = [pool.submit(lambda j=j: j, name=f"g{i}.{j}") for j in range(grandchildren)]
        return sum(g.result(timeout=30) for g in grand)

    def parent():
        kids = [pool.submit(child, i) for i in range(fanout)]
        return sum(k.result(timeout=30) for k in kids)

    expected = fanout * sum(range(grandchildren))
    assert pool.submit(parent).result(timeout=30) == expected


class TestCentralMode:
    def test_results_identical_to_stealing(self):
        with WorkStealingPool(workers=3, scheduling="central", name="c") as pool:
            run_nested_workload(pool)
        with WorkStealingPool(workers=3, scheduling="stealing", name="s") as pool:
            run_nested_workload(pool)

    def test_central_mode_never_steals(self):
        with WorkStealingPool(workers=4, scheduling="central", name="c2") as pool:
            run_nested_workload(pool)
        assert pool.stats.steals == 0  # nothing in local deques to steal

    def test_stealing_mode_uses_local_deques(self):
        """Nested submits land on the submitting worker's own deque; with
        several workers competing, steals occur (structurally, not by luck:
        the parent blocks-and-helps while others must steal to start)."""
        with WorkStealingPool(workers=4, scheduling="stealing", name="s2") as pool:
            run_nested_workload(pool, fanout=40, grandchildren=8)
            stats = pool.stats
        assert stats.tasks_executed == 1 + 40 + 40 * 8

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            WorkStealingPool(workers=1, scheduling="telepathy")

    def test_work_spread_across_workers(self):
        """Both designs spread non-trivial work over several workers.

        Tasks sleep briefly (releasing the GIL) so that no single worker
        can drain the queue alone even on a one-core host.
        """
        import time

        for mode in ("central", "stealing"):
            with WorkStealingPool(workers=4, scheduling=mode, name=f"w-{mode}") as pool:
                pool.wait_all([pool.submit(time.sleep, 0.002) for _ in range(100)])
            busy = [n for n in pool.stats.per_worker_executed if n > 0]
            assert len(busy) >= 2, mode  # more than one worker participated
