"""The open backend registry: registration, aliases, capabilities, KINDS."""

from __future__ import annotations

import pytest

from repro.executor import (
    KINDS,
    ExecutorConfig,
    InlineExecutor,
    available,
    backend_aliases,
    backend_override,
    create,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.executor.registry import BackendCapabilities


def _build_fake(cfg):
    ex = InlineExecutor(trace=cfg.trace, faults=cfg.faults)
    ex.config_seen = cfg  # lets tests assert what the builder received
    return ex


@pytest.fixture
def fake_backend():
    backend = register_backend(
        "fakeback",
        _build_fake,
        capabilities=BackendCapabilities(real_parallel=True, barriers=False),
        options=("colour",),
        aliases=("fb", "fakey"),
        summary="test double",
    )
    yield backend
    unregister_backend("fakeback")


class TestBuiltins:
    def test_builtins_registered(self):
        assert set(available()) >= {"inline", "threads", "sim", "processes"}

    def test_builtin_aliases(self):
        aliases = backend_aliases()
        assert aliases["pool"] == "threads"
        assert aliases["simulated"] == "sim"
        assert aliases["mp"] == "processes"

    def test_capability_declarations(self):
        assert get_backend("sim").capabilities.virtual_time
        assert not get_backend("sim").capabilities.real_parallel
        procs = get_backend("processes").capabilities
        assert procs.real_parallel and procs.out_of_process and not procs.barriers
        assert get_backend("inline").single_core

    def test_describe_lists_enabled_flags(self):
        text = get_backend("processes").capabilities.describe()
        assert "+real-parallel" in text and "+out-of-process" in text
        assert "+barriers" not in text

    def test_get_backend_resolves_aliases(self):
        assert get_backend("thread").name == "threads"
        assert get_backend("virtual").name == "sim"


class TestRegistration:
    def test_registered_backend_is_creatable(self, fake_backend):
        ex = create("fakeback", colour="red")
        assert ex.config_seen.kind == "fakeback"
        assert ex.config_seen.options == {"colour": "red"}
        assert ex.submit(lambda: 41).result() == 41

    def test_aliases_create_too(self, fake_backend):
        assert create("fb").config_seen.kind == "fakeback"
        assert create("fakey").config_seen.kind == "fakeback"

    def test_kinds_view_is_live(self, fake_backend):
        assert "fakeback" in KINDS
        assert KINDS == tuple(available())
        assert len(KINDS) == len(available())
        assert KINDS[-1] == "fakeback"  # registration order

    def test_unregister_removes_kind_and_aliases(self, fake_backend):
        unregister_backend("fakeback")
        try:
            with pytest.raises(ValueError, match="unknown executor kind 'fakeback'"):
                create("fakeback")
            with pytest.raises(ValueError, match="unknown executor kind 'fb'"):
                create("fb")
        finally:  # leave the fixture something to tear down
            register_backend("fakeback", _build_fake, aliases=("fb", "fakey"))

    def test_duplicate_name_rejected(self, fake_backend):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("fakeback", _build_fake)

    def test_alias_collision_rejected(self, fake_backend):
        with pytest.raises(ValueError, match="collides"):
            register_backend("otherback", _build_fake, aliases=("fb",))
        assert "otherback" not in available()

    def test_alias_shadowing_backend_name_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            register_backend("shadower", _build_fake, aliases=("inline",))

    def test_replace_swaps_registration(self, fake_backend):
        register_backend("fakeback", _build_fake, aliases=("fb2",), replace=True)
        aliases = backend_aliases()
        assert aliases.get("fb2") == "fakeback"
        assert "fb" not in aliases  # old aliases dropped on replace
        register_backend(
            "fakeback", _build_fake, aliases=("fb", "fakey"), replace=True
        )  # restore for teardown

    def test_name_must_be_identifier(self):
        with pytest.raises(ValueError, match="identifier"):
            register_backend("no good", _build_fake)

    def test_unregister_unknown_raises(self):
        with pytest.raises(ValueError, match="not registered"):
            unregister_backend("neverwas")


class TestUnknownKindError:
    def test_error_lists_backends_and_aliases(self):
        with pytest.raises(ValueError) as err:
            create("gpu")
        message = str(err.value)
        assert "unknown executor kind 'gpu'" in message
        for name in ("inline", "threads", "sim", "processes"):
            assert name in message
        assert "mp" in message and "simulated" in message  # aliases listed


class TestBackendOverride:
    def test_redirects_redirectable_kinds(self):
        with backend_override(kind="inline"):
            ex = create("threads", cores=3)
        assert isinstance(ex, InlineExecutor)

    def test_cores_override(self):
        with backend_override(cores=2):
            ex = create("threads", cores=6)
        try:
            assert ex.cores == 2
        finally:
            ex.shutdown()

    def test_sim_call_sites_untouched(self):
        from repro.executor import SimExecutor

        with backend_override(kind="inline"):
            ex = create("sim", cores=4)
        assert isinstance(ex, SimExecutor)

    def test_drops_options_target_does_not_accept(self):
        # threads-specific compute_mode must not blow up the inline target
        with backend_override(kind="inline"):
            ex = create("threads", cores=2, compute_mode="sleep")
        assert isinstance(ex, InlineExecutor)

    def test_override_cannot_target_virtual_time(self):
        with pytest.raises(ValueError, match="virtual-time"):
            with backend_override(kind="sim"):
                pass

    def test_override_restored_after_block(self):
        from repro.executor import WorkStealingPool

        with backend_override(kind="inline"):
            pass
        ex = create("threads", cores=2)
        try:
            assert isinstance(ex, WorkStealingPool)
        finally:
            ex.shutdown()

    def test_override_is_config_validated(self, fake_backend):
        cfg = ExecutorConfig(kind="threads", cores=2)
        with backend_override(kind="fakeback"):
            from repro.executor.factory import _apply_override

            redirected = _apply_override(cfg)
        assert redirected.kind == "fakeback"
        assert redirected.cores == 2
