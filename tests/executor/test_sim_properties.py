"""Property-based tests of the virtual-time executor.

Random fork-join programs are generated and executed; the schedule must
satisfy the classic work-span facts for greedy scheduling:

* ``T_p >= T_inf``  (span bound)
* ``T_p >= T_1 / p``  (work bound)
* ``T_p <= T_1 / p + T_inf``  (Graham's greedy bound)
* ``T_p <= T_1``  (never worse than serial)

plus value equivalence with the inline reference on every program.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import InlineExecutor, SimExecutor
from repro.machine import MachineSpec


def machine(cores):
    return MachineSpec(name=f"m{cores}", cores=cores, dispatch_overhead=0.0)


# A random fork-join program: a tree where each node carries its own
# compute cost and a list of children; parents join all children.
node_st = st.deferred(
    lambda: st.tuples(
        st.floats(min_value=0.0, max_value=3.0),  # own cost
        st.lists(node_st, max_size=3),  # children
    )
)
tree_st = st.tuples(st.floats(min_value=0.0, max_value=3.0), st.lists(node_st, max_size=4))


def run_tree(ex, tree):
    """Execute the tree on executor ``ex``; returns total node count."""
    cost, children = tree

    def node(subtree):
        c, kids = subtree
        ex.compute(c)
        futures = [ex.submit(node, kid) for kid in kids]
        return 1 + sum(f.result() for f in futures)

    return ex.submit(node, tree, name="root").result()


class TestWorkSpanBounds:
    @given(tree_st, st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_greedy_bounds(self, tree, cores):
        ex = SimExecutor(machine(cores))
        run_tree(ex, tree)
        sched = ex.schedule()
        t1 = sched.total_work
        tinf = sched.critical_path
        tp = sched.makespan
        eps = 1e-9 + 1e-9 * t1
        assert tp >= tinf - eps
        assert tp >= t1 / cores - eps
        assert tp <= t1 / cores + tinf + eps  # Graham
        assert tp <= t1 + eps

    @given(tree_st)
    @settings(max_examples=30, deadline=None)
    def test_single_core_equals_work(self, tree):
        ex = SimExecutor(machine(1))
        run_tree(ex, tree)
        sched = ex.schedule()
        assert sched.makespan == pytest.approx(sched.total_work)

    @given(tree_st, st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_values_match_inline(self, tree, cores):
        inline_count = run_tree(InlineExecutor(), tree)
        sim_count = run_tree(SimExecutor(machine(cores)), tree)
        assert sim_count == inline_count

    @given(tree_st, st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_rescheduling_consistent(self, tree, cores):
        """schedule() is pure: same recording, same numbers, any order."""
        ex = SimExecutor(machine(2))
        run_tree(ex, tree)
        a = ex.schedule(machine(cores)).makespan
        _ = ex.schedule(machine(1)).makespan
        b = ex.schedule(machine(cores)).makespan
        assert a == b

    @given(tree_st, st.sampled_from(["earliest", "affinity"]))
    @settings(max_examples=30, deadline=None)
    def test_policies_respect_bounds(self, tree, policy):
        ex = SimExecutor(machine(4), policy=policy)
        run_tree(ex, tree)
        sched = ex.schedule()
        eps = 1e-9 + 1e-9 * sched.total_work
        assert sched.makespan <= sched.total_work / 4 + sched.critical_path + eps


class TestCriticalSectionProperties:
    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=10),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_one_lock_serialises_to_sum(self, costs, cores):
        """N tasks doing only critical work on one lock: makespan >= sum."""
        ex = SimExecutor(machine(cores))

        def work(c):
            with ex.critical("L"):
                ex.compute(c)

        for c in costs:
            ex.submit(work, c)
        assert ex.elapsed() >= sum(costs) - 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_distinct_locks_parallelise(self, costs):
        """Each task on its own lock: makespan bounded by max, not sum."""
        ex = SimExecutor(machine(len(costs)))

        def work(i, c):
            with ex.critical(f"L{i}"):
                ex.compute(c)

        for i, c in enumerate(costs):
            ex.submit(work, i, c)
        assert ex.elapsed() == pytest.approx(max(costs))

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_lock_chain_acyclic_with_nested_spawns(self, n_tasks, n_crits):
        """Locks + nested spawns never produce a cyclic schedule graph."""
        ex = SimExecutor(machine(4))

        def child():
            with ex.critical("shared"):
                ex.compute(0.1)

        def parent():
            for _ in range(n_crits):
                with ex.critical("shared"):
                    ex.compute(0.1)
            ex.submit(child).result()

        for _ in range(n_tasks):
            ex.submit(parent)
        ex.schedule()  # raises on a cycle


class TestBarrierProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_barrier_rounds_bound(self, parties, rounds, cores):
        """k rounds of equal work with barriers: makespan >= k * slowest."""
        ex = SimExecutor(machine(cores))

        def member():
            for r in range(rounds):
                ex.compute(1.0)
                ex.barrier("b", parties=parties)

        for _ in range(parties):
            ex.submit(member)
        t = ex.elapsed()
        per_round = 1.0 if cores >= parties else (parties / cores)
        assert t >= rounds * 1.0 - 1e-9
        assert t >= rounds * parties / cores - 1e-9
        assert t <= rounds * parties + 1e-9  # never worse than full serial
