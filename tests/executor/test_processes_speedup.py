"""CI smoke: the processes backend delivers *measured* speedup.

This is the one test in the repository that asserts wall-clock numbers,
so it is deliberately forgiving: it skips cleanly on single-core hosts
(the growth container has one core), uses a pure-Python GIL-bound kernel
(BLAS already escapes the GIL, so numpy work would not demonstrate the
point), and asserts only ``> 1.0`` with generous task sizes.  The CI
workflow runs it on multi-core runners as the processes-backend smoke
job.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.apps.kernels.matmul import matmul_tasks
from repro.executor import create

multicore = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="needs >= 2 physical cores to measure speedup"
)


def burn(n: int) -> int:
    """A GIL-bound busy kernel: pure-Python arithmetic, no C escapes."""
    acc = 0
    for i in range(n):
        acc = (acc + i * i) % 1_000_003
    return acc


def _wall(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@multicore
def test_gil_bound_kernel_speeds_up_on_two_workers():
    n = 600_000  # ~40ms per task on a typical CI core
    tasks = 8
    expected = [burn(n)] * tasks  # deterministic: same input each task

    def inline_run():
        return [burn(n) for _ in range(tasks)]

    with create("processes", cores=2) as pool:
        # warm the workers (numpy import, first unpickle) off the clock
        for f in [pool.submit(burn, 10, name=f"warm{i}") for i in range(2)]:
            f.result()

        def pool_run():
            return [f.result() for f in [pool.submit(burn, n, name=f"b{i}") for i in range(tasks)]]

        t_inline = _wall(lambda: None or inline_run())
        t_pool = _wall(pool_run)
        results = pool_run()

    assert results == expected
    speedup = t_inline / t_pool
    assert speedup > 1.0, (
        f"processes backend should beat inline on >=2 cores: inline {t_inline:.3f}s, "
        f"pool {t_pool:.3f}s (speedup {speedup:.2f}x)"
    )


@multicore
def test_matmul_panels_not_slower_than_serial_transport_bound():
    """The shm plane keeps numpy payload transport from eating the win.

    BLAS kernels are fast relative to IPC, so this asserts a loose bound
    (no worse than 2x slower) rather than speedup — the GIL-bound test
    above is the speedup gate; this one guards transport regressions.
    """
    rng = np.random.default_rng(0)
    a, b = rng.random((1024, 1024)), rng.random((1024, 1024))
    t0 = time.perf_counter()
    serial = a @ b
    t_serial = time.perf_counter() - t0
    with create("processes", cores=2) as pool:
        for f in [pool.submit(burn, 10, name=f"warm{i}") for i in range(2)]:
            f.result()
        t0 = time.perf_counter()
        out = matmul_tasks(a, b, pool, block=256)
        t_pool = time.perf_counter() - t0
    assert np.allclose(out, serial)
    assert t_pool < max(2.0 * t_serial, t_serial + 1.0), (
        f"transport overhead blew up: serial {t_serial:.3f}s, pool {t_pool:.3f}s"
    )
