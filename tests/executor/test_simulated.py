"""Tests for the virtual-time executor."""

import pytest

from repro.executor import SimExecutor
from repro.machine import MachineSpec


def machine(cores, **kw):
    kw.setdefault("dispatch_overhead", 0.0)
    return MachineSpec(name=f"m{cores}", cores=cores, **kw)


class TestValues:
    def test_values_match_inline_semantics(self):
        ex = SimExecutor(machine(4))
        f = ex.submit(lambda a, b: a * b, 6, 7, cost=1.0)
        assert f.result() == 42

    def test_exceptions_surface_at_result(self):
        ex = SimExecutor(machine(4))

        def boom():
            raise KeyError("k")

        f = ex.submit(boom, cost=1.0)
        assert f.done()
        with pytest.raises(KeyError):
            f.result()

    def test_nested_tasks(self):
        ex = SimExecutor(machine(4))

        def outer():
            inner = ex.submit(lambda: 5, cost=1.0)
            return inner.result() * 2

        assert ex.submit(outer, cost=0.5).result() == 10


class TestTiming:
    def test_independent_tasks_parallelise(self):
        ex = SimExecutor(machine(4))
        for _ in range(8):
            ex.submit(lambda: None, cost=1.0)
        assert ex.elapsed() == pytest.approx(2.0)

    def test_single_core_serialises(self):
        ex = SimExecutor(machine(1))
        for _ in range(8):
            ex.submit(lambda: None, cost=1.0)
        assert ex.elapsed() == pytest.approx(8.0)

    def test_join_creates_serial_dependency(self):
        """main waits for A, then spawns B: A and B cannot overlap."""
        ex = SimExecutor(machine(4))
        fa = ex.submit(lambda: "a", cost=2.0)
        fa.result()
        ex.submit(lambda: "b", cost=2.0)
        assert ex.elapsed() == pytest.approx(4.0)

    def test_no_join_allows_overlap(self):
        ex = SimExecutor(machine(4))
        ex.submit(lambda: "a", cost=2.0)
        ex.submit(lambda: "b", cost=2.0)
        assert ex.elapsed() == pytest.approx(2.0)

    def test_compute_adds_to_current_task(self):
        ex = SimExecutor(machine(1))

        def work():
            ex.compute(3.0)

        ex.submit(work)
        assert ex.elapsed() == pytest.approx(3.0)

    def test_after_dependency_serialises(self):
        ex = SimExecutor(machine(4))
        fa = ex.submit(lambda: None, cost=1.0, name="a")
        ex.submit(lambda: None, cost=1.0, name="b", after=[fa])
        assert ex.elapsed() == pytest.approx(2.0)

    def test_foreign_after_future_rejected(self):
        from repro.executor.future import Future

        ex = SimExecutor(machine(2))
        foreign = Future("foreign")
        foreign.set_result(None)
        with pytest.raises(RuntimeError, match="SimExecutor"):
            ex.submit(lambda: None, after=[foreign])

    def test_rescheduling_on_other_machines(self):
        """One recording, many machines: the core-sweep primitive."""
        ex = SimExecutor(machine(1))
        for _ in range(16):
            ex.submit(lambda: None, cost=1.0)
        times = {p: ex.schedule(machine(p)).makespan for p in (1, 2, 4, 8, 16)}
        assert times[1] == pytest.approx(16.0)
        assert times[4] == pytest.approx(4.0)
        assert times[16] == pytest.approx(1.0)

    def test_fork_join_speedup_shape(self):
        """Recursive fork-join shows sublinear-but-real speedup."""

        def build(ex):
            def node(depth):
                if depth == 0:
                    ex.compute(1.0)
                    return 1
                left = ex.submit(node, depth - 1)
                right = ex.submit(node, depth - 1)
                return left.result() + right.result()

            root = ex.submit(node, 4)
            assert root.result() == 16
            return ex

        t1 = build(SimExecutor(machine(1))).elapsed()
        t8 = build(SimExecutor(machine(8))).elapsed()
        assert t1 == pytest.approx(16.0)
        assert t8 < t1 / 3  # real speedup
        assert t8 >= 1.0  # bounded by span


class TestCritical:
    def test_critical_sections_serialise(self):
        ex = SimExecutor(machine(4))

        def work():
            with ex.critical("shared"):
                ex.compute(1.0)

        for _ in range(4):
            ex.submit(work)
        # 4 critical sections on the same lock cannot overlap.
        assert ex.elapsed() == pytest.approx(4.0)

    def test_distinct_locks_do_not_serialise(self):
        ex = SimExecutor(machine(4))

        def work(i):
            with ex.critical(f"lock{i}"):
                ex.compute(1.0)

        for i in range(4):
            ex.submit(work, i)
        assert ex.elapsed() == pytest.approx(1.0)

    def test_work_outside_critical_still_parallel(self):
        ex = SimExecutor(machine(4))

        def work():
            ex.compute(2.0)
            with ex.critical("l"):
                ex.compute(0.5)

        for _ in range(4):
            ex.submit(work)
        t = ex.elapsed()
        assert t < 2.0 + 4 * 0.5 + 0.5  # overlap of the parallel part
        assert t >= 2.0 + 4 * 0.5 - 1e-9  # lock chain after own work


class TestBarrier:
    def test_barrier_synchronises_team(self):
        """Post-barrier work cannot start before every pre-barrier part."""
        ex = SimExecutor(machine(4))

        def member(i):
            ex.compute(float(i + 1))  # staggered pre-barrier work: 1..4
            ex.barrier("b", parties=4)
            ex.compute(1.0)

        for i in range(4):
            ex.submit(member, i)
        # slowest pre-barrier is 4.0; then 1.0 post-barrier each in parallel
        assert ex.elapsed() == pytest.approx(5.0)

    def test_cyclic_barrier_reuse(self):
        ex = SimExecutor(machine(2))

        def member():
            for _ in range(3):
                ex.compute(1.0)
                ex.barrier("loop", parties=2)

        ex.submit(member)
        ex.submit(member)
        assert ex.elapsed() == pytest.approx(3.0)
        assert ex.pending_barriers() == []

    def test_incomplete_barrier_detected(self):
        ex = SimExecutor(machine(2))

        def member():
            ex.barrier("b", parties=2)

        ex.submit(member)  # only one of two parties ever arrives
        with pytest.raises(RuntimeError, match="barrier"):
            ex.schedule()

    def test_surplus_arrival_leaves_pending_rendezvous(self):
        """A third task at a 2-party barrier starts a rendezvous that never
        completes — a real program would hang there, and schedule() says so."""
        ex = SimExecutor(machine(4))
        for _ in range(3):
            ex.submit(lambda: ex.barrier("b", parties=2))
        assert ex.pending_barriers() == ["b"]
        with pytest.raises(RuntimeError, match="barrier"):
            ex.schedule()

    def test_shrinking_parties_rejected(self):
        """Inconsistent parties within one rendezvous is a program bug."""
        ex = SimExecutor(machine(4))
        ex.submit(lambda: ex.barrier("b", parties=3))
        ex.submit(lambda: ex.barrier("b", parties=3))
        f = ex.submit(lambda: ex.barrier("b", parties=2))
        assert isinstance(f.exception(), RuntimeError)

    def test_generations_tracked_per_task(self):
        """Each member's k-th arrival joins rendezvous generation k, so a
        fast member cannot complete a rendezvous with itself."""
        ex = SimExecutor(machine(2))

        def member():
            ex.barrier("g", parties=2)
            ex.barrier("g", parties=2)

        ex.submit(member)  # arrives twice before the second member exists
        assert ex.pending_barriers() == ["g"]
        ex.submit(member)
        assert ex.pending_barriers() == []


class TestTaskIdentity:
    def test_task_ids_nest(self):
        ex = SimExecutor(machine(2))
        seen = []

        def outer():
            seen.append(ex.task_id())
            ex.submit(lambda: seen.append(ex.task_id()))
            seen.append(ex.task_id())

        assert ex.task_id() == 0
        ex.submit(outer)
        assert ex.task_id() == 0
        assert seen[0] == seen[2] != seen[1]
