"""The create() factory and its declarative twin ExecutorConfig."""

import pytest

from repro.executor import (
    ExecutorConfig,
    InlineExecutor,
    SimExecutor,
    ThreadPoolExecutor,
    WorkStealingPool,
    create,
)
from repro.machine import PARC8, PARC64
from repro.obs import TraceRecorder, use


class TestCreateKinds:
    def test_inline(self):
        ex = create("inline")
        assert isinstance(ex, InlineExecutor)
        assert ex.cores == 1

    def test_threads_defaults(self):
        with create("threads") as pool:
            assert isinstance(pool, WorkStealingPool)
            assert pool.cores == 4

    def test_threads_cores_and_options(self):
        with create("threads", cores=2, compute_mode="sleep", name="t") as pool:
            assert pool.cores == 2
            assert pool.compute_mode == "sleep"
            assert pool.name == "t"

    def test_sim_default_machine_is_parc64(self):
        ex = create("sim")
        assert isinstance(ex, SimExecutor)
        assert ex.machine.name == PARC64.name
        assert ex.cores == 64

    def test_sim_cores_rescale_machine(self):
        ex = create("sim", cores=16)
        assert ex.cores == 16

    def test_sim_explicit_machine(self):
        ex = create("sim", machine=PARC8)
        assert ex.machine == PARC8

    def test_sim_machine_plus_cores_rescales(self):
        ex = create("sim", machine=PARC8, cores=2)
        assert ex.cores == 2

    def test_sim_policy_passthrough(self):
        assert create("sim", policy="affinity").policy == "affinity"

    def test_aliases(self):
        with create("pool", cores=1) as pool:
            assert isinstance(pool, WorkStealingPool)
        assert isinstance(create("simulated"), SimExecutor)

    def test_threadpoolexecutor_is_an_alias(self):
        assert ThreadPoolExecutor is WorkStealingPool


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            create("gpu")

    def test_bad_cores(self):
        with pytest.raises(ValueError, match="cores"):
            create("threads", cores=0)

    def test_inline_rejects_cores(self):
        with pytest.raises(ValueError, match="single-core"):
            create("inline", cores=2)

    def test_inline_rejects_machine(self):
        with pytest.raises(ValueError, match="machine"):
            create("inline", machine=PARC8)

    def test_unknown_option_names_the_accepted_set(self):
        with pytest.raises(ValueError, match="compute_mode"):
            create("threads", cores=1, granularity=3)
        with pytest.raises(ValueError, match="policy"):
            create("sim", granularity=3)

    def test_validation_is_eager_on_config(self):
        with pytest.raises(ValueError):
            ExecutorConfig(kind="nope")


class TestConfig:
    def test_config_normalises_aliases(self):
        assert ExecutorConfig(kind="virtual").kind == "sim"

    def test_config_is_comparable_and_rebuildable(self):
        cfg = ExecutorConfig(kind="sim", cores=8)
        assert cfg == ExecutorConfig(kind="sim", cores=8)
        a, b = cfg.build(), cfg.build()
        assert a is not b
        assert a.machine == b.machine

    def test_threads_worker_count_from_machine(self):
        with ExecutorConfig(kind="threads", machine=PARC8).build() as pool:
            assert pool.cores == 8


class TestTraceInjection:
    def test_explicit_trace_reaches_every_backend(self):
        rec = TraceRecorder()
        assert create("inline", trace=rec).trace is rec
        assert create("sim", trace=rec).trace is rec
        with create("threads", cores=1, trace=rec) as pool:
            assert pool.trace is rec

    def test_ambient_trace_reaches_every_backend(self):
        rec = TraceRecorder()
        with use(rec):
            assert create("inline").trace is rec
            assert create("sim").trace is rec

    def test_backends_work_end_to_end(self):
        """The factory path runs the same program on all three backends."""
        results = {}
        for kind in ("inline", "threads", "sim"):
            ex = create(kind, cores=2) if kind != "inline" else create(kind)
            fs = [ex.submit(lambda i=i: i * i, cost=1.0) for i in range(8)]
            results[kind] = [f.result() for f in fs]
            if kind == "threads":
                ex.shutdown()
        assert results["inline"] == results["threads"] == results["sim"]
