"""Tests for the sequential reference executor."""

import pytest

from repro.executor import InlineExecutor


class TestInlineExecutor:
    def test_submit_runs_immediately(self):
        ex = InlineExecutor()
        seen = []
        f = ex.submit(lambda: seen.append(1) or "r")
        assert seen == [1]
        assert f.done()
        assert f.result() == "r"

    def test_exception_captured(self):
        ex = InlineExecutor()

        def boom():
            raise ValueError("x")

        f = ex.submit(boom)
        assert f.done()
        with pytest.raises(ValueError):
            f.result()

    def test_args_kwargs(self):
        ex = InlineExecutor()
        f = ex.submit(lambda a, b=0: a + b, 1, b=2)
        assert f.result() == 3

    def test_after_done_dependency_ok(self):
        ex = InlineExecutor()
        f1 = ex.submit(lambda: 1)
        f2 = ex.submit(lambda: 2, after=[f1])
        assert f2.result() == 2

    def test_after_failed_dependency_propagates(self):
        ex = InlineExecutor()

        def boom():
            raise RuntimeError("dep failed")

        f1 = ex.submit(boom)
        ran = []
        f2 = ex.submit(lambda: ran.append(1), after=[f1])
        assert ran == []  # dependent never ran
        with pytest.raises(RuntimeError, match="dep failed"):
            f2.result()

    def test_nested_submits(self):
        ex = InlineExecutor()

        def outer():
            inner = ex.submit(lambda: 10)
            return inner.result() + 1

        assert ex.submit(outer).result() == 11

    def test_task_id_unique_and_nested(self):
        ex = InlineExecutor()
        ids = []

        def outer():
            ids.append(ex.task_id())
            ex.submit(lambda: ids.append(ex.task_id()))
            ids.append(ex.task_id())

        assert ex.task_id() == 0
        ex.submit(outer)
        assert ex.task_id() == 0
        assert len(ids) == 3
        assert ids[0] == ids[2]  # restored after nested task
        assert ids[1] != ids[0]

    def test_compute_validates(self):
        ex = InlineExecutor()
        with pytest.raises(ValueError):
            ex.compute(-1)
        ex.compute(5.0)  # no-op

    def test_critical_is_reentrant_noop(self):
        ex = InlineExecutor()
        with ex.critical("a"):
            with ex.critical("a"):
                pass

    def test_barrier_counts_arrivals(self):
        ex = InlineExecutor()
        for _ in range(4):
            ex.barrier("k", parties=4)
        # a full rendezvous completed; internal count back to zero
        assert ex._barrier_counts["k"] == 0

    def test_barrier_validates_parties(self):
        with pytest.raises(ValueError):
            InlineExecutor().barrier("k", parties=0)

    def test_map_preserves_order(self):
        ex = InlineExecutor()
        futures = ex.map(lambda x: x * x, [1, 2, 3, 4])
        assert [f.result() for f in futures] == [1, 4, 9, 16]

    def test_wait_all(self):
        ex = InlineExecutor()
        futures = ex.map(lambda x: x + 1, [0, 1, 2])
        assert ex.wait_all(futures) == [1, 2, 3]

    def test_context_manager(self):
        with InlineExecutor() as ex:
            assert ex.submit(lambda: 1).result() == 1
