"""Golden-report stability: tracing must be a pure observer.

The hot-path work in the executor, sim kernel and tracer is only safe if
it never perturbs the deterministic artefacts the repo commits.  These
tests pin that down for one representative sim ablation: the rendered
terminal report must match the committed golden byte-for-byte whether or
not an ambient trace recorder is installed, and the analysis metrics the
baseline gate consumes must match the committed ``baselines.json`` entry
exactly (the sim runs in virtual time, so they are reproducible to the
last digit, not approximately).
"""

import json
from pathlib import Path

import repro.bench as bench
from repro.obs import TraceRecorder, use

REPORTS = Path(__file__).resolve().parents[2] / "benchmarks" / "reports"


def _golden_text(exp_id: str) -> str:
    return (REPORTS / f"{exp_id}.txt").read_text()


class TestTracedVsUntracedGoldens:
    def test_untraced_report_matches_committed_golden(self):
        exp = bench.get_experiment("abl_sched")
        result = exp()
        assert result.render() + "\n" == _golden_text("abl_sched")

    def test_traced_report_matches_committed_golden(self):
        exp = bench.get_experiment("abl_sched")
        recorder = TraceRecorder()
        with use(recorder):
            result = exp()
        assert result.render() + "\n" == _golden_text("abl_sched")
        # the recorder actually observed the run — it was not a no-op
        assert recorder.events()

    def test_traced_analysis_metrics_match_committed_baseline(self):
        store = json.loads((REPORTS / "baselines.json").read_text())
        committed = store["experiments"]["abl_sched"]
        exp = bench.get_experiment("abl_sched")
        with use(TraceRecorder()):
            result = exp()
        assert result.analysis is not None
        current = result.analysis.baseline_metrics()
        # virtual-time run: every gated metric reproduces exactly.  The
        # analysis may export metrics newer than the stored baseline
        # (the gate only compares stored keys), so subset — not equality.
        assert committed.items() <= current.items()
