"""Tests for the experiment registry and the registered experiment set."""

import pytest

import repro.bench as bench
from repro.bench.harness import Experiment, ExperimentResult, register
from repro.executor import create
from repro.obs import TraceAnalysis, TraceRecorder, use
from repro.util.tables import Table


@register("test-obs-tiny-sim", "tiny traced sim workload", "obs fixture")
def _tiny_sim_experiment():
    ex = create("sim", cores=2)
    for _ in range(4):
        ex.submit(lambda: None, cost=1.0).result()
    schedule = ex.schedule()
    t = Table(["makespan"], title="tiny")
    t.add_row([schedule.makespan])
    return ExperimentResult(exp_id="test-obs-tiny-sim", tables=(t,))


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        ids = {e.exp_id for e in bench.all_experiments()}
        expected = {
            "fig1", "fig2", "tab_systems", "tab_assess", "tab_alloc", "tab_likert", "sem",
            "proj1", "proj2", "proj3", "proj4", "proj5",
            "proj6", "proj7", "proj8", "proj9", "proj10",
            "abl_sched", "abl_policy", "abl_amdahl",
        }
        assert expected <= ids

    def test_every_experiment_has_paper_ref_and_title(self):
        for exp in bench.all_experiments():
            assert exp.paper_ref
            assert exp.title

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            bench.get_experiment("nope")

    def test_duplicate_registration_rejected(self):
        @register("test-dup-xyz", "t", "ref")
        def _exp():
            return ExperimentResult(exp_id="test-dup-xyz", tables=())

        with pytest.raises(ValueError, match="already registered"):
            register("test-dup-xyz", "t2", "ref2")(lambda: None)

    def test_mismatched_result_id_rejected(self):
        @register("test-mismatch-xyz", "t", "ref")
        def _exp():
            return ExperimentResult(exp_id="other", tables=())

        with pytest.raises(ValueError, match="tagged"):
            _exp()


class TestExperimentResult:
    def test_render_contains_tables_and_notes(self):
        t = Table(["a"], title="T")
        t.add_row([1])
        result = ExperimentResult(exp_id="x", tables=(t,), notes="hello")
        out = result.render()
        assert "experiment x" in out
        assert "T" in out
        assert "notes: hello" in out

    def test_untraced_run_attaches_no_analytics(self):
        result = _tiny_sim_experiment()
        assert result.metrics is None
        assert result.analysis is None
        assert result.render_analysis() == ""

    def test_traced_run_attaches_analysis(self):
        with use(TraceRecorder()):
            result = _tiny_sim_experiment()
        assert isinstance(result.analysis, TraceAnalysis)
        assert result.analysis.primary is not None
        assert result.analysis.primary.exact  # sim emits authoritative summaries
        assert result.analysis.primary.work == pytest.approx(4.0)
        assert "trace analysis:" in result.render_analysis()

    def test_report_byte_identical_with_tracing_on_or_off(self):
        """The zero-cost guarantee: installing a recorder must not change
        a single byte of the rendered bench report."""
        plain = _tiny_sim_experiment().render()
        with use(TraceRecorder()):
            traced = _tiny_sim_experiment()
        assert traced.render() == plain

    def test_topics_bench_mapping_is_real(self):
        """Every topic's declared bench target file actually exists."""
        from pathlib import Path

        from repro.course import TOPICS

        root = Path(__file__).parent.parent.parent
        for topic in TOPICS:
            assert (root / topic.bench).exists(), topic.bench
            assert __import__("importlib").import_module(topic.module), topic.module
