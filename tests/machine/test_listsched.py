"""Tests for the greedy list scheduler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import MachineSpec, SegmentGraph, simulate_schedule


def machine(cores, **kw):
    kw.setdefault("dispatch_overhead", 0.0)
    return MachineSpec(name=f"m{cores}", cores=cores, **kw)


def independent(costs):
    g = SegmentGraph()
    for i, c in enumerate(costs):
        g.add(task_id=i, name=f"s{i}", cost=c)
    return g


class TestBasicScheduling:
    def test_empty_graph(self):
        r = simulate_schedule(SegmentGraph(), machine(4))
        assert r.makespan == 0.0
        assert r.n_segments == 0

    def test_single_segment(self):
        g = independent([2.0])
        r = simulate_schedule(g, machine(4))
        assert r.makespan == 2.0

    def test_perfect_split(self):
        g = independent([1.0] * 8)
        r = simulate_schedule(g, machine(4))
        assert r.makespan == pytest.approx(2.0)
        assert r.speedup_vs_serial == pytest.approx(4.0)
        assert r.utilization == pytest.approx(1.0)

    def test_serial_chain_no_speedup(self):
        g = SegmentGraph()
        prev = None
        for i in range(5):
            prev = g.add(0, f"s{i}", 1.0, deps=[prev.sid] if prev else [])
        r = simulate_schedule(g, machine(8))
        assert r.makespan == pytest.approx(5.0)
        assert r.speedup_vs_serial == pytest.approx(1.0)

    def test_one_core_serialises(self):
        g = independent([1.0, 2.0, 3.0])
        r = simulate_schedule(g, machine(1))
        assert r.makespan == pytest.approx(6.0)

    def test_speed_scales_makespan(self):
        g = independent([4.0])
        r = simulate_schedule(g, machine(1, speed=2.0))
        assert r.makespan == pytest.approx(2.0)

    def test_dispatch_overhead_charged_per_segment(self):
        g = independent([1.0, 1.0])
        m = MachineSpec(name="m", cores=1, dispatch_overhead=0.5)
        r = simulate_schedule(g, m)
        assert r.makespan == pytest.approx(3.0)

    def test_zero_cost_segments_free(self):
        g = SegmentGraph()
        g.add(0, "z", 0.0)
        m = MachineSpec(name="m", cores=1, dispatch_overhead=0.5)
        r = simulate_schedule(g, m)
        assert r.makespan == 0.0


class TestDependencies:
    def test_diamond_honours_precedence(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(1, "b", 2.0, deps=[a.sid])
        c = g.add(2, "c", 2.0, deps=[a.sid])
        d = g.add(0, "d", 1.0, deps=[b.sid, c.sid])
        r = simulate_schedule(g, machine(4))
        assert r.makespan == pytest.approx(4.0)  # 1 + 2 (parallel) + 1
        # starts respect finishes of deps
        assert r.starts[b.sid] >= r.finishes[a.sid]
        assert r.starts[d.sid] >= max(r.finishes[b.sid], r.finishes[c.sid])

    def test_forward_dep_schedules_correctly(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(1, "b", 1.0)
        g.add_dep(a.sid, b.sid)
        r = simulate_schedule(g, machine(2))
        assert r.starts[a.sid] >= r.finishes[b.sid]

    def test_cycle_raises(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(0, "b", 1.0, deps=[a.sid])
        g.add_dep(a.sid, b.sid)
        with pytest.raises((RuntimeError, ValueError)):
            simulate_schedule(g, machine(2))


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            simulate_schedule(SegmentGraph(), machine(2), policy="magic")

    def test_affinity_prefers_dep_core(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(0, "b", 1.0, deps=[a.sid])
        r = simulate_schedule(g, machine(4), policy="affinity")
        assert r.cores[a.sid] == r.cores[b.sid]

    def test_both_policies_valid_schedules(self):
        g = SegmentGraph()
        roots = [g.add(i, f"r{i}", 1.0) for i in range(4)]
        for i, root in enumerate(roots):
            g.add(i, f"c{i}", 2.0, deps=[root.sid])
        for policy in ("earliest", "affinity"):
            r = simulate_schedule(g, machine(4), policy=policy)
            for seg in g:
                for d in seg.deps:
                    assert r.starts[seg.sid] >= r.finishes[d] - 1e-12


class TestInvariants:
    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=16),
    )
    def test_makespan_bounds(self, costs, cores):
        """Greedy schedule: span <= makespan <= work; 2-approx bound."""
        g = independent(costs)
        r = simulate_schedule(g, machine(cores))
        work = sum(costs)
        assert r.makespan >= max(costs) - 1e-9  # at least the longest segment
        assert r.makespan <= work + 1e-9  # never worse than serial
        # Graham bound for independent tasks: makespan <= work/p + max
        assert r.makespan <= work / cores + max(costs) + 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    def test_no_core_overlap(self, costs, cores):
        g = independent(costs)
        r = simulate_schedule(g, machine(cores))
        by_core: dict[int, list[tuple[float, float]]] = {}
        for sid in range(len(costs)):
            by_core.setdefault(r.cores[sid], []).append((r.starts[sid], r.finishes[sid]))
        for intervals in by_core.values():
            intervals.sort()
            for (s1, f1), (s2, _f2) in zip(intervals, intervals[1:]):
                assert s2 >= f1 - 1e-9

    @given(st.integers(min_value=1, max_value=64))
    def test_monotone_in_cores(self, cores):
        """More cores never hurts for independent equal tasks."""
        g = independent([1.0] * 32)
        r1 = simulate_schedule(g, machine(cores))
        r2 = simulate_schedule(g, machine(cores + 1))
        assert r2.makespan <= r1.makespan + 1e-9

    def test_deterministic(self):
        g = independent([0.3, 1.7, 0.9, 2.2, 1.1])
        a = simulate_schedule(g, machine(3))
        b = simulate_schedule(g, machine(3))
        assert a.starts == b.starts
        assert a.cores == b.cores
