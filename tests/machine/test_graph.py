"""Tests for segment graphs (work/span, topology, forward edges)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.graph import SegmentGraph


def chain(costs):
    g = SegmentGraph()
    prev = None
    for i, c in enumerate(costs):
        seg = g.add(task_id=0, name=f"s{i}", cost=c, deps=[prev.sid] if prev else [])
        prev = seg
    return g


class TestConstruction:
    def test_add_assigns_sequential_ids(self):
        g = SegmentGraph()
        assert g.add(0, "a", 1.0).sid == 0
        assert g.add(0, "b", 1.0).sid == 1
        assert len(g) == 2

    def test_negative_cost_rejected(self):
        g = SegmentGraph()
        with pytest.raises(ValueError):
            g.add(0, "a", -1.0)

    def test_dep_on_future_segment_rejected_at_add(self):
        g = SegmentGraph()
        with pytest.raises(ValueError):
            g.add(0, "a", 1.0, deps=[5])

    def test_add_cost_accumulates(self):
        g = SegmentGraph()
        s = g.add(0, "a", 1.0)
        g.add_cost(s.sid, 2.5)
        assert g[s.sid].cost == 3.5

    def test_add_cost_negative_rejected(self):
        g = SegmentGraph()
        s = g.add(0, "a", 1.0)
        with pytest.raises(ValueError):
            g.add_cost(s.sid, -0.5)

    def test_add_dep_forward_edge_allowed(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(1, "b", 1.0)
        g.add_dep(a.sid, b.sid)  # forward edge: a depends on b
        assert b.sid in g[a.sid].deps
        g.validate()  # still acyclic

    def test_add_dep_self_rejected(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        with pytest.raises(ValueError):
            g.add_dep(a.sid, a.sid)

    def test_add_dep_deduplicates(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(0, "b", 1.0, deps=[a.sid])
        g.add_dep(b.sid, a.sid)
        assert g[b.sid].deps.count(a.sid) == 1

    def test_cycle_detected(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(0, "b", 1.0, deps=[a.sid])
        g.add_dep(a.sid, b.sid)  # creates a <-> b cycle
        with pytest.raises(ValueError, match="cycle"):
            g.validate()


class TestWorkSpan:
    def test_chain_span_equals_work(self):
        g = chain([1.0, 2.0, 3.0])
        assert g.total_work() == 6.0
        assert g.critical_path() == 6.0
        assert g.parallelism() == pytest.approx(1.0)

    def test_independent_segments_span_is_max(self):
        g = SegmentGraph()
        for c in [1.0, 5.0, 2.0]:
            g.add(0, "s", c)
        assert g.total_work() == 8.0
        assert g.critical_path() == 5.0
        assert g.parallelism() == pytest.approx(8.0 / 5.0)

    def test_diamond(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(1, "b", 2.0, deps=[a.sid])
        c = g.add(2, "c", 4.0, deps=[a.sid])
        g.add(0, "d", 1.0, deps=[b.sid, c.sid])
        assert g.total_work() == 8.0
        assert g.critical_path() == 6.0  # a -> c -> d

    def test_empty_graph(self):
        g = SegmentGraph()
        assert g.total_work() == 0.0
        assert g.critical_path() == 0.0
        assert g.parallelism() == 1.0

    def test_zero_cost_work_parallelism_inf(self):
        g = SegmentGraph()
        g.add(0, "a", 1.0)
        g.add(0, "b", 0.0)
        # span from the 1-cost segment
        assert g.critical_path() == 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30))
    def test_span_never_exceeds_work(self, costs):
        g = SegmentGraph()
        for c in costs:
            g.add(0, "s", c)
        assert g.critical_path() <= g.total_work() + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=30))
    def test_chain_parallelism_is_one(self, costs):
        g = chain(costs)
        assert g.parallelism() == pytest.approx(1.0)


class TestTopologicalOrder:
    def test_respects_deps(self):
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(0, "b", 1.0)
        g.add_dep(a.sid, b.sid)  # a after b
        order = g.topological_order()
        assert order.index(b.sid) < order.index(a.sid)

    def test_complete_order(self):
        g = SegmentGraph()
        for i in range(10):
            g.add(0, f"s{i}", 1.0)
        assert sorted(g.topological_order()) == list(range(10))
