"""Tests for machine specifications and the PARC catalogue."""

import pytest

from repro.machine import PARC8, PARC16, PARC64, PARC_MACHINES, MachineSpec


class TestMachineSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(name="bad", cores=0)
        with pytest.raises(ValueError):
            MachineSpec(name="bad", cores=1, speed=0.0)
        with pytest.raises(ValueError):
            MachineSpec(name="bad", cores=1, dispatch_overhead=-1)

    def test_segment_duration_scales_with_speed(self):
        fast = MachineSpec(name="fast", cores=1, speed=2.0)
        slow = MachineSpec(name="slow", cores=1, speed=0.5)
        assert fast.segment_duration(1.0) == 0.5
        assert slow.segment_duration(1.0) == 2.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            PARC64.segment_duration(-1.0)

    def test_bandwidth_penalty(self):
        m = MachineSpec(name="m", cores=4, memory_bandwidth_penalty=0.1)
        assert m.segment_duration(1.0, concurrency=1) == 1.0
        assert m.segment_duration(1.0, concurrency=3) == pytest.approx(1.2)

    def test_bandwidth_penalty_capped_at_2x(self):
        m = MachineSpec(name="m", cores=64, memory_bandwidth_penalty=0.1)
        assert m.segment_duration(1.0, concurrency=64) == pytest.approx(2.0)

    def test_with_cores(self):
        m = PARC64.with_cores(4)
        assert m.cores == 4
        assert m.speed == PARC64.speed
        assert "4c" in m.name

    def test_frozen(self):
        with pytest.raises(Exception):
            PARC64.cores = 128  # type: ignore[misc]


class TestParcCatalogue:
    """The catalogue mirrors the paper's §III-B systems list."""

    def test_paper_core_counts(self):
        assert PARC64.cores == 64
        assert PARC16.cores == 16
        assert PARC8.cores == 8

    def test_catalogue_complete(self):
        names = set(PARC_MACHINES)
        assert {"parc64", "parc16", "parc8", "lab-quad", "android-tablet", "android-phone"} <= names

    def test_opteron_is_reference_speed(self):
        assert PARC64.speed == 1.0

    def test_relative_clocks(self):
        # 2.4 GHz Xeon vs 2.1 GHz Opteron; 1.86 GHz Xeon is slower.
        assert PARC16.speed > 1.0
        assert PARC8.speed < 1.0

    def test_descriptions_mention_hardware(self):
        assert "Opteron" in PARC64.description
        assert "Xeon" in PARC16.description
        assert "Xeon" in PARC8.description
