"""Tests for the cross-core communication penalty in the machine model."""

import pytest

from repro.machine import MachineSpec, SegmentGraph, simulate_schedule


def machine(cores, penalty):
    return MachineSpec(
        name="m", cores=cores, dispatch_overhead=0.0, cross_core_penalty=penalty
    )


def chain(n, cost=1.0):
    g = SegmentGraph()
    prev = None
    for i in range(n):
        prev = g.add(0, f"s{i}", cost, deps=[prev.sid] if prev else [])
    return g


class TestPenaltySemantics:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            machine(2, -1.0)

    def test_single_core_never_pays(self):
        g = chain(5)
        base = simulate_schedule(g, machine(1, 0.0)).makespan
        with_penalty = simulate_schedule(g, machine(1, 0.5)).makespan
        assert with_penalty == pytest.approx(base)

    def test_chain_on_one_core_pays_nothing_under_affinity(self):
        g = chain(6)
        r = simulate_schedule(g, machine(4, 0.5), policy="affinity")
        assert len(set(r.cores)) == 1  # stayed put
        assert r.makespan == pytest.approx(6.0)

    def test_forced_migration_pays(self):
        """Two independent producers feeding one consumer: at least one
        producer ran elsewhere, so the consumer pays at least once."""
        g = SegmentGraph()
        a = g.add(0, "a", 1.0)
        b = g.add(1, "b", 1.0)
        g.add(2, "c", 1.0, deps=[a.sid, b.sid])
        r = simulate_schedule(g, machine(2, 0.25))
        assert r.makespan == pytest.approx(1.0 + 1.0 + 0.25)

    def test_zero_cost_deps_transfer_free(self):
        """Bookkeeping segments (spawn/join markers) carry no data."""
        g = SegmentGraph()
        marker = g.add(0, "spawn", 0.0)
        g.add(1, "w1", 1.0, deps=[marker.sid])
        g.add(2, "w2", 1.0, deps=[marker.sid])
        r = simulate_schedule(g, machine(2, 0.5))
        assert r.makespan == pytest.approx(1.0)

    def test_affinity_beats_earliest_under_penalty(self):
        """Two interleaved chains on two cores with staggered costs."""
        g = SegmentGraph()
        for c, cost in enumerate((1.0, 1.5, 0.7)):
            prev = None
            for _ in range(4):
                prev = g.add(c, "s", cost, deps=[prev.sid] if prev else [])
        m = machine(2, 0.6)
        t_earliest = simulate_schedule(g, m, policy="earliest").makespan
        t_affinity = simulate_schedule(g, m, policy="affinity").makespan
        assert t_affinity <= t_earliest
