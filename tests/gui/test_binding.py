"""Tests for progress/label bindings to multi-task futures."""

import pytest

from repro.executor import WorkStealingPool
from repro.gui import EventDispatchThread, Label, ProgressBar, bind_progress, bind_status_label
from repro.ptask import ParallelTaskRuntime


@pytest.fixture
def edt():
    e = EventDispatchThread("bind-edt")
    yield e
    e.stop()


@pytest.fixture
def rt():
    pool = WorkStealingPool(workers=3, name="bind-pool")
    yield ParallelTaskRuntime(pool)
    pool.shutdown()


class TestBindProgress:
    def test_bar_reaches_complete(self, edt, rt):
        mt = rt.spawn_multi(lambda x: x, list(range(8)))
        bar = ProgressBar(edt, maximum=8)
        done = []
        bind_progress(mt, bar, edt, on_complete=lambda: done.append(True))
        mt.results(timeout=10)
        edt.drain()
        assert bar.complete
        assert bar.value == 8
        assert done == [True]

    def test_exactly_one_increment_per_task(self, edt, rt):
        mt = rt.spawn_multi(lambda x: x, list(range(5)))
        bar = ProgressBar(edt, maximum=5)
        bind_progress(mt, bar, edt)
        mt.results(timeout=10)
        edt.drain()
        assert bar.history == [1, 2, 3, 4, 5]

    def test_too_small_bar_rejected(self, edt, rt):
        mt = rt.spawn_multi(lambda x: x, list(range(5)))
        mt.results(timeout=10)
        with pytest.raises(ValueError):
            bind_progress(mt, ProgressBar(edt, maximum=3), edt)

    def test_empty_multi_completes_immediately(self, edt, rt):
        mt = rt.spawn_multi(lambda x: x, [])
        done = []
        bind_progress(mt, ProgressBar(edt, maximum=1), edt, on_complete=lambda: done.append(1))
        edt.drain()
        assert done == [1]

    def test_counts_failures_too(self, edt, rt):
        """A failed sub-task still advances the bar (it is *done*)."""

        def sometimes(x):
            if x == 1:
                raise RuntimeError("boom")
            return x

        mt = rt.spawn_multi(sometimes, [0, 1, 2])
        bar = ProgressBar(edt, maximum=3)
        bind_progress(mt, bar, edt)
        mt.exceptions()
        edt.drain()
        assert bar.value == 3


class TestBindStatusLabel:
    def test_label_tracks_completion(self, edt, rt):
        mt = rt.spawn_multi(lambda x: x, list(range(4)))
        label = Label(edt)
        bind_status_label(mt, label, edt)
        mt.results(timeout=10)
        edt.drain()
        assert label.text == "4/4"
        assert label.history[0] == "0/4"

    def test_custom_template(self, edt, rt):
        mt = rt.spawn_multi(lambda x: x, [1])
        label = Label(edt)
        bind_status_label(mt, label, edt, template="{done} of {total} thumbnails")
        mt.results(timeout=10)
        edt.drain()
        assert label.text == "1 of 1 thumbnails"
