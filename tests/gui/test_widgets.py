"""Tests for EDT-confined widgets."""

import pytest

from repro.gui import EventDispatchThread, Label, ListView, ProgressBar, Window
from repro.gui.widgets import ThreadConfinementError


@pytest.fixture
def edt():
    e = EventDispatchThread("widget-edt")
    yield e
    e.stop()


class TestConfinement:
    def test_mutation_off_edt_raises(self, edt):
        label = Label(edt, "hi")
        with pytest.raises(ThreadConfinementError):
            label.set_text("bye")

    def test_mutation_on_edt_ok(self, edt):
        label = Label(edt, "hi")
        edt.invoke_and_wait(label.set_text, "bye")
        assert label.text == "bye"

    def test_headless_mode_unconfined(self):
        label = Label(None, "hi")
        label.set_text("anywhere")
        assert label.text == "anywhere"

    def test_reads_allowed_anywhere(self, edt):
        label = Label(edt, "hello")
        assert label.text == "hello"  # no raise


class TestLabel:
    def test_history(self):
        label = Label(None)
        label.set_text("a")
        label.set_text("b")
        assert label.history == ["a", "b"]
        assert label.update_count == 2


class TestProgressBar:
    def test_progress_lifecycle(self):
        bar = ProgressBar(None, maximum=4)
        assert bar.fraction == 0.0
        for _ in range(4):
            bar.increment()
        assert bar.complete
        assert bar.fraction == 1.0

    def test_bounds_enforced(self):
        bar = ProgressBar(None, maximum=2)
        with pytest.raises(ValueError):
            bar.set_value(3)
        with pytest.raises(ValueError):
            bar.set_value(-1)

    def test_maximum_validation(self):
        with pytest.raises(ValueError):
            ProgressBar(None, maximum=0)


class TestListView:
    def test_append_and_clear(self):
        lv = ListView(None)
        lv.add_item("r1")
        lv.add_item("r2")
        assert lv.items == ["r1", "r2"]
        assert len(lv) == 2
        lv.clear()
        assert lv.items == []
        assert "<clear>" in lv.history


class TestWindow:
    def test_widget_factories_share_edt(self, edt):
        win = Window(edt, "main")
        label = win.label("x")
        bar = win.progress_bar(5)
        lv = win.list_view()
        assert win.widgets == [label, bar, lv]
        with pytest.raises(ThreadConfinementError):
            label.set_text("off-thread")

    def test_close(self):
        win = Window(None, "w")
        assert not win.closed
        win.close()
        assert win.closed


class TestEndToEndInterimUpdates:
    def test_worker_publishes_via_edt(self, edt):
        """The canonical flow: worker thread publishes results through the
        EDT into a ListView; widget state mutates only on the EDT."""
        from repro.executor import WorkStealingPool
        from repro.ptask import ParallelTaskRuntime

        lv = ListView(edt, name="results")
        with WorkStealingPool(workers=2, name="gui-e2e") as pool:
            rt = ParallelTaskRuntime(pool, edt=edt)

            def search(query):
                for i in range(5):
                    rt.publish(f"{query}-{i}")
                return 5

            f = rt.spawn(search, "hit", notify=lv.add_item)
            assert f.result(timeout=5) == 5
            edt.drain()
        assert lv.items == [f"hit-{i}" for i in range(5)]
