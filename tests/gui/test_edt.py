"""Tests for the real event-dispatch thread."""

import threading
import time

import pytest

from repro.gui import EventDispatchThread


@pytest.fixture
def edt():
    e = EventDispatchThread("test-edt")
    yield e
    e.stop()


class TestDispatch:
    def test_invoke_later_runs_on_edt(self, edt):
        result = {}
        done = threading.Event()

        def task():
            result["is_edt"] = edt.is_edt()
            result["thread"] = threading.current_thread().name
            done.set()

        edt.invoke_later(task)
        assert done.wait(timeout=5)
        assert result["is_edt"] is True
        assert result["thread"] == "test-edt"

    def test_invoke_and_wait_returns_value(self, edt):
        assert edt.invoke_and_wait(lambda a, b: a + b, 2, 3) == 5

    def test_invoke_and_wait_propagates_exception(self, edt):
        def boom():
            raise ValueError("ui error")

        with pytest.raises(ValueError, match="ui error"):
            edt.invoke_and_wait(boom)

    def test_invoke_and_wait_from_edt_runs_inline(self, edt):
        """No self-deadlock: nested invoke_and_wait executes directly."""
        out = edt.invoke_and_wait(lambda: edt.invoke_and_wait(lambda: "nested"))
        assert out == "nested"

    def test_fifo_order(self, edt):
        order = []
        for i in range(20):
            edt.invoke_later(order.append, i)
        edt.drain()
        assert order == list(range(20))

    def test_is_edt_false_off_thread(self, edt):
        assert edt.is_edt() is False

    def test_broken_handler_does_not_kill_edt(self, edt, capsys):
        def boom():
            raise RuntimeError("handler bug")

        edt.invoke_later(boom)
        assert edt.invoke_and_wait(lambda: "alive") == "alive"


class TestLifecycle:
    def test_stop_idempotent(self):
        edt = EventDispatchThread()
        edt.stop()
        edt.stop()

    def test_invoke_after_stop_rejected(self):
        edt = EventDispatchThread()
        edt.stop()
        with pytest.raises(RuntimeError):
            edt.invoke_later(lambda: None)

    def test_context_manager(self):
        with EventDispatchThread() as edt:
            assert edt.invoke_and_wait(lambda: 1) == 1

    def test_stats_counted(self):
        with EventDispatchThread() as edt:
            for _ in range(5):
                edt.invoke_later(lambda: None)
            edt.drain()
            assert edt.stats.events_processed >= 5
            assert edt.stats.mean_queue_latency >= 0.0


class TestQueueLatencyVisible:
    def test_long_handler_delays_followers(self):
        """A slow runnable inflates the queue latency of the next one —
        the responsiveness failure mode the projects must avoid."""
        with EventDispatchThread() as edt:
            edt.invoke_later(time.sleep, 0.15)
            t0 = time.monotonic()
            edt.invoke_and_wait(lambda: None)
            waited = time.monotonic() - t0
            assert waited >= 0.1
            assert edt.stats.max_queue_latency >= 0.1
