"""Tests for the virtual-time responsiveness model."""

import pytest

from repro.gui import simulate_ui_scenario


class TestValidation:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            simulate_ui_scenario([1.0], strategy="magic")

    def test_no_jobs(self):
        with pytest.raises(ValueError):
            simulate_ui_scenario([])

    def test_negative_cost(self):
        with pytest.raises(ValueError):
            simulate_ui_scenario([-1.0])

    def test_bad_cores(self):
        with pytest.raises(ValueError):
            simulate_ui_scenario([1.0], cores=0)


class TestShapes:
    """The responsiveness claims of projects 1/4/7, as invariants."""

    def test_pool_keeps_latency_low_while_edt_explodes(self):
        jobs = [0.5] * 8
        on_edt = simulate_ui_scenario(jobs, cores=4, strategy="edt")
        on_pool = simulate_ui_scenario(jobs, cores=4, strategy="pool")
        assert on_edt.mean_latency > 0.5  # events stuck behind jobs
        assert on_pool.mean_latency < 0.05  # served promptly
        assert on_pool.max_latency < on_edt.max_latency / 10

    def test_pool_finishes_jobs_faster_with_more_cores(self):
        jobs = [0.5] * 12
        t2 = simulate_ui_scenario(jobs, cores=2, strategy="pool").jobs_makespan
        t4 = simulate_ui_scenario(jobs, cores=4, strategy="pool").jobs_makespan
        t8 = simulate_ui_scenario(jobs, cores=8, strategy="pool").jobs_makespan
        assert t4 < t2
        assert t8 < t4

    def test_edt_strategy_serialises_jobs(self):
        jobs = [0.25] * 8
        rep = simulate_ui_scenario(jobs, cores=8, strategy="edt")
        assert rep.jobs_makespan >= sum(jobs)  # cores don't help on the EDT

    def test_events_arrive_and_are_counted(self):
        rep = simulate_ui_scenario([0.5] * 4, strategy="pool", event_interval=0.05)
        assert rep.events_served >= 5

    def test_deterministic(self):
        a = simulate_ui_scenario([0.3, 0.7, 0.2], cores=3, strategy="pool")
        b = simulate_ui_scenario([0.3, 0.7, 0.2], cores=3, strategy="pool")
        assert a.event_latencies == b.event_latencies
        assert a.jobs_makespan == b.jobs_makespan

    def test_latency_percentiles_ordered(self):
        rep = simulate_ui_scenario([0.5] * 8, strategy="edt")
        assert rep.mean_latency <= rep.max_latency
        assert rep.p95_latency <= rep.max_latency

    def test_report_str(self):
        rep = simulate_ui_scenario([0.1], strategy="pool")
        assert "pool" in str(rep)
