"""Property-based tests for the simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Resource, Simulator, Store


class TestResourceProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.floats(min_value=0.1, max_value=2.0), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_batching(self, capacity, durations):
        """Makespan of equal-priority holders respects the capacity bound:
        sum/c <= makespan <= sum (and equals the batch formula for equal
        durations)."""
        sim = Simulator()
        res = Resource(sim, capacity=capacity)

        def holder(d):
            yield res.acquire()
            yield d
            res.release()

        for d in durations:
            sim.spawn(holder(d))
        sim.run(max_steps=100_000)
        total = sum(durations)
        assert sim.now >= total / capacity - 1e-9
        assert sim.now <= total + 1e-9
        assert res.total_acquisitions == len(durations)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_equal_durations_batch_formula(self, capacity, n):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)

        def holder():
            yield res.acquire()
            yield 1.0
            res.release()

        for _ in range(n):
            sim.spawn(holder())
        sim.run(max_steps=100_000)
        batches = -(-n // capacity)  # ceil
        assert sim.now == pytest.approx(float(batches))

    @given(st.integers(min_value=2, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_wait_time_accounting_consistent(self, n):
        """With capacity 1 and unit service, the k-th arrival waits k-1."""
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            yield 1.0
            res.release()

        for _ in range(n):
            sim.spawn(holder())
        sim.run(max_steps=100_000)
        assert res.total_wait_time == pytest.approx(sum(range(n)))


class TestStoreProperties:
    @given(st.lists(st.integers(), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_fifo_through_any_interleaving(self, items):
        """Whatever the put/get timing, items come out in put order."""
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i, item in enumerate(items):
                store.put(item)
                yield 0.1 * (i % 3)

        def consumer():
            for _ in items:
                got.append((yield store.get()))
                yield 0.05

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run(max_steps=100_000)
        assert got == list(items)

    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_counters_conserve(self, n_put, n_get):
        sim = Simulator()
        store = Store(sim)
        taken = min(n_put, n_get)

        def producer():
            for i in range(n_put):
                store.put(i)
                yield 0.1

        def consumer():
            for _ in range(taken):
                yield store.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run(max_steps=100_000)
        assert store.total_put == n_put
        assert store.total_got == taken
        assert len(store) == n_put - taken
