"""Tests for simulation resources, locks, stores and channels."""

import pytest

from repro.simkernel import Channel, Resource, SimLock, Simulator, Store


class TestResource:
    def test_capacity_respected(self):
        """With capacity 2 and three 1-second holders, makespan is 2s."""
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finish = []

        def holder(i):
            yield res.acquire()
            yield 1.0
            res.release()
            finish.append((i, sim.now))

        for i in range(3):
            sim.spawn(holder(i))
        sim.run()
        assert sim.now == 2.0
        assert [t for _, t in sorted(finish)] == [1.0, 1.0, 2.0]

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        grants = []

        def holder(i):
            yield res.acquire()
            grants.append(i)
            yield 1.0
            res.release()

        for i in range(4):
            sim.spawn(holder(i))
        sim.run()
        assert grants == [0, 1, 2, 3]

    def test_release_without_acquire_rejected(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_wait_time_accounting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            yield 2.0
            res.release()

        sim.spawn(holder())
        sim.spawn(holder())
        sim.run()
        assert res.total_acquisitions == 2
        assert res.total_wait_time == pytest.approx(2.0)  # second waits 2s

    def test_peak_queue_len(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            yield 1.0
            res.release()

        for _ in range(5):
            sim.spawn(holder())
        sim.run()
        assert res.peak_queue_len == 4


class TestSimLock:
    def test_mutual_exclusion(self):
        sim = Simulator()
        lock = SimLock(sim)
        inside = []
        max_inside = []

        def critical(i):
            yield lock.acquire()
            inside.append(i)
            max_inside.append(len(inside))
            yield 0.5
            inside.remove(i)
            lock.release()

        for i in range(4):
            sim.spawn(critical(i))
        sim.run()
        assert max(max_inside) == 1
        assert sim.now == 2.0

    def test_locked_property(self):
        sim = Simulator()
        lock = SimLock(sim)
        assert not lock.locked

        def holder():
            yield lock.acquire()
            yield 1.0
            lock.release()

        sim.spawn(holder())
        sim.run(until=0.5)
        assert lock.locked
        sim.run()
        assert not lock.locked


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")

        def getter():
            item = yield store.get()
            return item

        proc = sim.spawn(getter())
        sim.run()
        assert proc.result == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def getter():
            item = yield store.get()
            return (sim.now, item)

        def putter():
            yield 2.0
            store.put("late")

        proc = sim.spawn(getter())
        sim.spawn(putter())
        sim.run()
        assert proc.result == (2.0, "late")

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = []

        def getter():
            for _ in range(3):
                got.append((yield store.get()))

        sim.spawn(getter())
        sim.run()
        assert got == [0, 1, 2]

    def test_counters(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)

        def getter():
            yield store.get()

        sim.spawn(getter())
        sim.run()
        assert store.total_put == 2
        assert store.total_got == 1
        assert len(store) == 1


class TestChannel:
    def test_put_blocks_when_full(self):
        sim = Simulator()
        ch = Channel(sim, capacity=1)
        done_puts = []

        def producer():
            yield ch.put("a")
            done_puts.append(sim.now)
            yield ch.put("b")  # blocks until consumer takes "a"
            done_puts.append(sim.now)

        def consumer():
            yield 3.0
            yield ch.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert done_puts == [0.0, 3.0]

    def test_rendezvous_get_first(self):
        sim = Simulator()
        ch = Channel(sim, capacity=1)

        def consumer():
            item = yield ch.get()
            return (sim.now, item)

        def producer():
            yield 1.0
            yield ch.put("v")

        proc = sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert proc.result == (1.0, "v")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Channel(Simulator(), capacity=0)

    def test_order_preserved_through_blocking(self):
        sim = Simulator()
        ch = Channel(sim, capacity=2)
        got = []

        def producer():
            for i in range(5):
                yield ch.put(i)

        def consumer():
            for _ in range(5):
                got.append((yield ch.get()))
                yield 0.1

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]
