"""Tests for the discrete-event simulator core."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simkernel import Process, SimCancelled, Simulator


class TestBasicProcesses:
    def test_delay_advances_clock(self):
        sim = Simulator()

        def p():
            yield 2.5
            return "done"

        proc = sim.spawn(p())
        sim.run()
        assert sim.now == 2.5
        assert proc.result == "done"

    def test_zero_delay(self):
        sim = Simulator()

        def p():
            yield 0
            return 1

        proc = sim.spawn(p())
        sim.run()
        assert sim.now == 0.0
        assert proc.result == 1

    def test_negative_delay_fails_process(self):
        sim = Simulator()

        def p():
            yield -1.0

        proc = sim.spawn(p())
        sim.run()
        with pytest.raises(ValueError):
            proc.result

    def test_sequential_delays_accumulate(self):
        sim = Simulator()
        times = []

        def p():
            yield 1.0
            times.append(sim.now)
            yield 2.0
            times.append(sim.now)

        sim.spawn(p())
        sim.run()
        assert times == [1.0, 3.0]

    def test_exception_propagates_to_result(self):
        sim = Simulator()

        def p():
            yield 1.0
            raise RuntimeError("boom")

        proc = sim.spawn(p())
        sim.run()
        with pytest.raises(RuntimeError, match="boom"):
            proc.result

    def test_yield_none_resumes_same_time(self):
        sim = Simulator()

        def p():
            yield None
            return sim.now

        proc = sim.spawn(p())
        sim.run()
        assert proc.result == 0.0


class TestDeterminism:
    def test_fifo_tie_break(self):
        """Processes scheduled at the same instant run in spawn order."""
        sim = Simulator()
        order = []

        def p(i):
            yield 1.0
            order.append(i)

        for i in range(5):
            sim.spawn(p(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_identical_runs_identical_traces(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def worker(i):
                yield 0.5 * i
                trace.append((sim.now, i))
                yield 1.0
                trace.append((sim.now, i))

            for i in range(4):
                sim.spawn(worker(i))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()


class TestEvents:
    def test_wait_then_fire(self):
        sim = Simulator()
        ev = sim.event("e")
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        def firer():
            yield 3.0
            ev.fire("hello")

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert got == [(3.0, "hello")]

    def test_wait_on_already_fired(self):
        sim = Simulator()
        ev = sim.event("e")
        ev.fire(42)

        def waiter():
            value = yield ev
            return value

        proc = sim.spawn(waiter())
        sim.run()
        assert proc.result == 42

    def test_double_fire_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.fire(1)
        with pytest.raises(RuntimeError):
            ev.fire(2)

    def test_fail_propagates_into_waiters(self):
        sim = Simulator()
        ev = sim.event("bad")

        def waiter():
            yield ev

        proc = sim.spawn(waiter())
        ev.fail(ValueError("nope"))
        sim.run()
        with pytest.raises(ValueError, match="nope"):
            proc.result

    def test_value_before_fire_rejected(self):
        sim = Simulator()
        with pytest.raises(RuntimeError):
            sim.event().value

    def test_multiple_waiters_all_resumed(self):
        sim = Simulator()
        ev = sim.event()
        done = []

        def waiter(i):
            yield ev
            done.append(i)

        for i in range(3):
            sim.spawn(waiter(i))

        def firer():
            yield 1.0
            ev.fire(None)

        sim.spawn(firer())
        sim.run()
        assert sorted(done) == [0, 1, 2]


class TestProcessComposition:
    def test_wait_for_process(self):
        sim = Simulator()

        def child():
            yield 2.0
            return 99

        def parent():
            c = sim.spawn(child())
            value = yield c
            return (sim.now, value)

        proc = sim.spawn(parent())
        sim.run()
        assert proc.result == (2.0, 99)

    def test_all_of(self):
        sim = Simulator()
        e1 = sim.timeout(1.0, value="a")
        e2 = sim.timeout(3.0, value="b")

        def waiter():
            values = yield sim.all_of([e1, e2])
            return (sim.now, values)

        proc = sim.spawn(waiter())
        sim.run()
        assert proc.result == (3.0, ["a", "b"])

    def test_all_of_empty(self):
        sim = Simulator()
        combined = sim.all_of([])
        assert combined.fired
        assert combined.value == []

    def test_cancel(self):
        sim = Simulator()

        def slow():
            yield 100.0
            return "never"

        proc = sim.spawn(slow())

        def canceller():
            yield 1.0
            proc.cancel()

        sim.spawn(canceller())
        sim.run()
        assert sim.now == pytest.approx(1.0)
        with pytest.raises(SimCancelled):
            proc.result

    def test_call_at(self):
        sim = Simulator()
        marks = []
        sim.call_at(5.0, lambda: marks.append(sim.now))
        sim.run()
        assert marks == [5.0]

    def test_call_at_past_rejected(self):
        sim = Simulator(start=10.0)
        with pytest.raises(ValueError):
            sim.call_at(5.0, lambda: None)


class TestRunControl:
    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        sim.spawn(_delayer(10.0))
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_then_continue(self):
        sim = Simulator()
        proc = sim.spawn(_delayer(10.0))
        sim.run(until=4.0)
        assert not proc.done.fired
        sim.run()
        assert sim.now == 10.0
        assert proc.done.fired

    def test_max_steps_guards_livelock(self):
        sim = Simulator()

        def spinner():
            while True:
                yield 0.0

        sim.spawn(spinner())
        with pytest.raises(RuntimeError, match="steps"):
            sim.run(max_steps=100)

    def test_max_steps_budget_is_per_invocation(self):
        # Regression: the cap used to compare against the *cumulative*
        # step counter, so a second capped run inherited the first run's
        # spend and tripped immediately.  Each run() gets a fresh budget.
        sim = Simulator()

        def spinner():
            while True:
                yield 0.0

        sim.spawn(spinner())
        with pytest.raises(RuntimeError, match="100 steps"):
            sim.run(max_steps=100)
        first_total = sim.steps
        # tripping the cap drops the popped resumption, so restart the load
        sim.spawn(spinner())
        with pytest.raises(RuntimeError, match="100 steps"):
            sim.run(max_steps=100)
        # the second run burned its own full budget, not a leftover one
        assert sim.steps - first_total > 100

    def test_max_steps_not_tripped_by_prior_uncapped_run(self):
        sim = Simulator()
        for _ in range(50):
            sim.spawn(_delayer(1.0))
        sim.run()
        assert sim.steps >= 50
        sim.spawn(_delayer(1.0))
        sim.run(max_steps=10)  # must not raise: budget is this run's alone
        assert sim.now == pytest.approx(2.0)

    def test_steps_counter(self):
        sim = Simulator()
        sim.spawn(_delayer(1.0))
        sim.run()
        assert sim.steps >= 1

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
    def test_clock_ends_at_max_delay(self, delays):
        sim = Simulator()
        for d in delays:
            sim.spawn(_delayer(d))
        sim.run()
        assert sim.now == pytest.approx(max(delays))


def _delayer(dt):
    yield dt
    return dt
