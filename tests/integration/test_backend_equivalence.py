"""Integration: value equivalence across execution backends.

The library's central promise: the same program text produces identical
values inline, on real threads and under simulation.  Exercised here
over the pattern library, Pyjama worksharing and the app workloads with
randomised inputs.
"""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sorting import quicksort
from repro.executor import InlineExecutor, SimExecutor, WorkStealingPool
from repro.machine import MachineSpec
from repro.ptask import ParallelTaskRuntime, parallel_map, parallel_reduce
from repro.pyjama import Pyjama


def backends():
    yield "inline", InlineExecutor()
    yield "sim", SimExecutor(MachineSpec(name="m", cores=4, dispatch_overhead=0.0))
    pool = WorkStealingPool(workers=4, name="equiv")
    try:
        yield "threads", pool
    finally:
        pool.shutdown()


class TestPatternEquivalence:
    @given(st.lists(st.integers(-100, 100), max_size=30), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_parallel_map(self, xs, grain):
        expected = [x * 2 + 1 for x in xs]
        for name, ex in backends():
            rt = ParallelTaskRuntime(ex)
            assert parallel_map(rt, lambda v: v * 2 + 1, xs, grain=grain) == expected, name

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=25), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_parallel_reduce(self, xs, grain):
        for name, ex in backends():
            rt = ParallelTaskRuntime(ex)
            assert parallel_reduce(rt, operator.add, xs, identity=0, grain=grain) == sum(xs), name


class TestPyjamaEquivalence:
    @given(
        st.lists(st.integers(-100, 100), max_size=30),
        st.sampled_from(["static", "dynamic", "guided"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_parallel_for_reduction(self, xs, schedule):
        for name, ex in backends():
            omp = Pyjama(ex, num_threads=4)
            assert omp.parallel_for(xs, lambda v: v, schedule=schedule, reduction="+") == sum(
                xs
            ), name

    @given(st.lists(st.text(max_size=3), max_size=20))
    @settings(max_examples=10, deadline=None)
    def test_object_reduction_counter(self, words):
        expected = {}
        for w in words:
            expected[w] = expected.get(w, 0) + 1
        for name, ex in backends():
            omp = Pyjama(ex, num_threads=3)
            assert omp.parallel_for(words, lambda w: w, reduction="counter") == expected, name


class TestAppEquivalence:
    @given(st.lists(st.integers(-1000, 1000), max_size=120))
    @settings(max_examples=10, deadline=None)
    def test_quicksort_all_variants_all_backends(self, xs):
        expected = sorted(xs)
        for name, ex in backends():
            for variant in ("sequential", "ptask", "pyjama", "threads"):
                assert quicksort(ex, xs, variant=variant, cutoff=16) == expected, (name, variant)
