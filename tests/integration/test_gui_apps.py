"""Integration: the GUI projects on real threads with a real EDT.

These are the end-to-end flows the student projects demo'd: background
work on the pool, interim results flowing through the notify path onto
EDT-confined widgets, and the UI staying serviceable throughout.
"""

import time

import pytest

from repro.apps import make_image_folder, make_pdf_corpus, make_text_corpus
from repro.apps.images import ThumbnailRenderer
from repro.apps.pdfsearch import PdfSearcher
from repro.apps.textsearch import FolderSearch
from repro.executor import WorkStealingPool
from repro.gui import EventDispatchThread, Window


@pytest.fixture
def edt():
    e = EventDispatchThread("itest-edt")
    yield e
    e.stop()


@pytest.fixture
def pool():
    p = WorkStealingPool(workers=4, name="itest-pool")
    yield p
    p.shutdown()


class TestThumbnailApp:
    def test_interim_updates_land_on_edt_widgets(self, edt, pool):
        images = make_image_folder(10, seed=1, max_side=48)
        window = Window(edt, "thumbs")
        listview = window.list_view()
        progress = window.progress_bar(len(images))

        def show(thumb):
            listview.add_item(thumb.name)
            progress.increment()

        renderer = ThumbnailRenderer(pool, target_side=8, on_thumbnail=show, edt=edt)
        thumbs = renderer.render(images, strategy="ptask")
        edt.drain()

        assert len(thumbs) == 10
        assert sorted(listview.items) == sorted(img.name for img in images)
        assert progress.complete
        # every widget mutation went through the EDT (no confinement error
        # was raised during the run, and the history is fully populated)
        assert listview.update_count == 10

    def test_updates_off_edt_rejected(self, edt, pool):
        """Forgetting edt= is the classic bug: confinement catches it."""
        from repro.gui.widgets import ThreadConfinementError

        images = make_image_folder(3, seed=2, max_side=32)
        window = Window(edt, "thumbs")
        listview = window.list_view()

        renderer = ThumbnailRenderer(
            pool, target_side=8, on_thumbnail=lambda t: listview.add_item(t.name), edt=None
        )
        mt = renderer.runtime.spawn_multi(renderer._scale_one, list(images))
        excs = mt.exceptions()
        assert any(isinstance(e, ThreadConfinementError) for e in excs)


class TestSearchApps:
    def test_folder_search_streams_to_listview(self, edt, pool):
        corpus = make_text_corpus(12, seed=3, hit_rate=0.05)
        window = Window(edt, "search")
        results_view = window.list_view("hits")

        searcher = FolderSearch(pool, on_match=lambda m: results_view.add_item(str(m)), edt=edt)
        matches = searcher.search(corpus)
        edt.drain()

        assert len(results_view.items) == len(matches) > 0
        # UI remained serviceable during the search
        assert edt.invoke_and_wait(lambda: "alive") == "alive"

    def test_pdf_search_interim_hits(self, edt, pool):
        corpus = make_pdf_corpus(5, seed=4, pages_per_doc=(2, 12), hit_rate=0.05)
        window = Window(edt, "pdf")
        hits_view = window.list_view("hits")

        searcher = PdfSearcher(pool, on_hit=lambda h: hits_view.add_item(h.path), edt=edt)
        hits = searcher.search(corpus, granularity="per_page")
        edt.drain()
        assert len(hits_view.items) == len(hits)


class TestResponsivenessUnderLoad:
    def test_clicks_serviced_while_pool_renders(self, edt):
        """Wall-clock version of the responsiveness claim."""
        with WorkStealingPool(workers=2, compute_mode="sleep", time_scale=1.0, name="busy") as pool:
            # background jobs occupying the pool for ~0.3s
            jobs = [pool.submit(pool.compute, 0.15) for _ in range(4)]
            worst = 0.0
            while not all(j.done() for j in jobs):
                t0 = time.monotonic()
                edt.invoke_and_wait(lambda: None)
                worst = max(worst, time.monotonic() - t0)
                time.sleep(0.01)
            pool.wait_all(jobs)
        assert worst < 0.2  # the EDT never waited on the pool's work
