"""Tests for parallel regions, worksharing and Pyjama reductions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import InlineExecutor, SimExecutor
from repro.machine import MachineSpec
from repro.pyjama import Pyjama


class TestParallelRegion:
    def test_team_size_and_tids(self, omp):
        result = omp.parallel(lambda ctx: ctx.tid, num_threads=4)
        assert sorted(result.returns) == [0, 1, 2, 3]

    def test_default_num_threads(self, omp):
        result = omp.parallel(lambda ctx: ctx.num_threads)
        assert result.returns == [4, 4, 4, 4]

    def test_master_only_tid0(self, omp):
        result = omp.parallel(lambda ctx: ctx.master(), num_threads=3)
        assert result.returns == [True, False, False]

    def test_single_exactly_one(self, omp):
        result = omp.parallel(lambda ctx: ctx.single(), num_threads=4)
        assert sum(result.returns) == 1

    def test_single_per_key(self, omp):
        def body(ctx):
            return (ctx.single("a"), ctx.single("b"))

        result = omp.parallel(body, num_threads=4)
        assert sum(a for a, _ in result.returns) == 1
        assert sum(b for _, b in result.returns) == 1

    def test_barrier_all_members(self, omp):
        def body(ctx):
            ctx.barrier()
            ctx.barrier("second")
            return ctx.tid

        result = omp.parallel(body, num_threads=4)
        assert sorted(result.returns) == [0, 1, 2, 3]

    def test_critical_protects(self, omp):
        state = {"v": 0}

        def body(ctx):
            for _ in range(25):
                with ctx.critical():
                    state["v"] += 1

        omp.parallel(body, num_threads=4)
        assert state["v"] == 100

    def test_contribute_reduction(self, omp):
        def body(ctx):
            ctx.contribute("total", ctx.tid + 1, "+")

        result = omp.parallel(body, num_threads=4)
        assert result["total"] == 10

    def test_contribute_object_reduction(self, omp):
        def body(ctx):
            ctx.contribute("all", [ctx.tid], "list")

        result = omp.parallel(body, num_threads=4)
        assert result["all"] == [0, 1, 2, 3]  # tid order, deterministic

    def test_contribute_mismatched_reduction_rejected(self, omp):
        def body(ctx):
            ctx.contribute("k", 1, "+" if ctx.tid == 0 else "*")

        with pytest.raises(ValueError, match="reduction key"):
            omp.parallel(body, num_threads=2)

    def test_invalid_num_threads(self, omp):
        with pytest.raises(ValueError):
            omp.parallel(lambda ctx: None, num_threads=0)


class TestForRange:
    def test_static_covers_all(self, omp):
        seen = []

        def body(ctx):
            mine = list(ctx.for_range(20, "static"))
            with ctx.critical():
                seen.extend(mine)
            return len(mine)

        result = omp.parallel(body, num_threads=4)
        assert sorted(seen) == list(range(20))
        assert all(n == 5 for n in result.returns)

    def test_dynamic_covers_all(self, omp):
        seen = []

        def body(ctx):
            for i in ctx.for_range(17, "dynamic", chunk_size=3):
                with ctx.critical():
                    seen.append(i)

        omp.parallel(body, num_threads=4)
        assert sorted(seen) == list(range(17))

    def test_static_deterministic_assignment(self, omp):
        def body(ctx):
            return list(ctx.for_range(8, "static"))

        r1 = omp.parallel(body, num_threads=2)
        r2 = omp.parallel(body, num_threads=2)
        assert r1.returns == r2.returns == [[0, 1, 2, 3], [4, 5, 6, 7]]


class TestParallelFor:
    def test_no_reduction_returns_results_in_order(self, omp):
        out = omp.parallel_for(list(range(10)), lambda x: x * x)
        assert out == [i * i for i in range(10)]

    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    def test_all_schedules_same_values(self, omp, schedule):
        out = omp.parallel_for(list(range(23)), lambda x: x + 1, schedule=schedule, chunk_size=2)
        assert out == list(range(1, 24))

    def test_sum_reduction(self, omp):
        total = omp.parallel_for(list(range(100)), lambda x: x, reduction="+")
        assert total == 4950

    def test_list_reduction_preserves_iteration_order(self, omp):
        out = omp.parallel_for(
            list(range(12)), lambda x: x, reduction="list", schedule="dynamic", chunk_size=2
        )
        assert out == list(range(12))

    def test_set_reduction(self, omp):
        out = omp.parallel_for([1, 2, 2, 3], lambda x: x, reduction="set")
        assert out == {1, 2, 3}

    def test_counter_reduction(self, omp):
        words = ["a", "b", "a", "c", "a", "c"]
        out = omp.parallel_for(words, lambda w: w, reduction="counter")
        assert out == {"a": 3, "b": 1, "c": 2}

    def test_empty_items(self, omp):
        assert omp.parallel_for([], lambda x: x) == []
        assert omp.parallel_for([], lambda x: x, reduction="+") == 0

    def test_min_reduction(self, omp):
        assert omp.parallel_for([5, 3, 8, 1], lambda x: x, reduction="min") == 1

    @given(
        st.lists(st.integers(-100, 100), max_size=40),
        st.sampled_from(["static", "dynamic", "guided"]),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_reduction_matches_sequential(self, xs, schedule, threads):
        omp = Pyjama(InlineExecutor(), num_threads=threads)
        assert omp.parallel_for(xs, lambda x: x, schedule=schedule, reduction="+") == sum(xs)


class TestParallelForTiming:
    """Virtual-time shape checks: the lessons the schedules teach."""

    def test_parallel_for_speedup(self):
        def run(cores):
            omp = Pyjama(
                SimExecutor(MachineSpec(name="m", cores=cores, dispatch_overhead=0.0)),
                num_threads=cores,
            )
            omp.parallel_for(
                list(range(32)), lambda x: x, schedule="dynamic", cost_fn=lambda _x: 1.0
            )
            return omp.executor.elapsed()

        assert run(1) == pytest.approx(32.0)
        assert run(4) == pytest.approx(8.0)
        assert run(8) == pytest.approx(4.0)

    def test_dynamic_beats_static_under_skew(self):
        """The canonical demo: triangular costs ruin static's balance."""
        costs = [float(i + 1) for i in range(32)]

        def run(schedule):
            omp = Pyjama(
                SimExecutor(MachineSpec(name="m", cores=4, dispatch_overhead=0.0)),
                num_threads=4,
            )
            omp.parallel_for(
                list(range(32)),
                lambda x: x,
                schedule=schedule,
                chunk_size=1 if schedule != "static" else None,
                cost_fn=lambda i: costs[i],
            )
            return omp.executor.elapsed()

        t_static = run("static")
        t_dynamic = run("dynamic")
        t_guided = run("guided")
        assert t_dynamic < t_static
        assert t_guided < t_static
        # dynamic with unit chunks is near-optimal: total/4
        assert t_dynamic == pytest.approx(sum(costs) / 4, rel=0.1)

    def test_num_threads_caps_parallelism_even_on_big_machine(self):
        omp = Pyjama(
            SimExecutor(MachineSpec(name="m", cores=64, dispatch_overhead=0.0)),
            num_threads=2,
        )
        omp.parallel_for(
            list(range(8)), lambda x: x, schedule="dynamic", cost_fn=lambda _x: 1.0
        )
        assert omp.executor.elapsed() == pytest.approx(4.0)  # 8 units / 2 lanes


class TestSections:
    def test_results_in_order(self, omp):
        out = omp.sections([lambda: "a", lambda: "b", lambda: "c"])
        assert out == ["a", "b", "c"]

    def test_sections_parallel_in_sim(self, sim_omp):
        def section():
            sim_omp.executor.compute(2.0)
            return 1

        out = sim_omp.sections([section] * 4)
        assert out == [1, 1, 1, 1]
        assert sim_omp.executor.elapsed() == pytest.approx(2.0)

    def test_empty_sections(self, omp):
        assert omp.sections([]) == []


class TestGuiDirectives:
    def test_on_gui_requires_edt(self, omp):
        with pytest.raises(RuntimeError, match="EDT"):
            omp.on_gui(lambda: None)

    def test_on_gui_dispatches(self):
        class FakeEdt:
            def __init__(self):
                self.calls = []

            def invoke_later(self, fn, *args):
                self.calls.append(args)
                fn(*args)

        edt = FakeEdt()
        omp = Pyjama(InlineExecutor(), edt=edt)
        out = []
        omp.on_gui(out.append, 5)
        assert out == [5]
        assert edt.calls == [(5,)]

    def test_free_gui_returns_future(self, omp):
        f = omp.free_gui(lambda: 42)
        assert f.result(timeout=5) == 42
