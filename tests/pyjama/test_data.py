"""Tests for data-sharing clauses (private/firstprivate/lastprivate)."""

import pytest

from repro.pyjama import Pyjama, firstprivate, lastprivate, private
from repro.executor import InlineExecutor


class TestPrivate:
    def test_factory_per_thread(self, omp):
        buf = private(list)

        def body(ctx):
            mine = buf.get(ctx.tid)
            mine.append(ctx.tid)
            return id(mine)

        result = omp.parallel(body, num_threads=4)
        assert len(set(result.returns)) == 4  # four distinct lists
        snap = buf.snapshot()
        assert {tid: v for tid, v in snap.items()} == {0: [0], 1: [1], 2: [2], 3: [3]}

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            private([])  # type: ignore[arg-type]

    def test_set_overrides(self, omp):
        cell = private(lambda: 0)

        def body(ctx):
            cell.set(ctx.tid, ctx.tid * 10)
            return cell.get(ctx.tid)

        result = omp.parallel(body, num_threads=3)
        assert result.returns == [0, 10, 20]


class TestFirstprivate:
    def test_copies_initial_value(self, omp):
        fp = firstprivate([1, 2])

        def body(ctx):
            mine = fp.get(ctx.tid)
            mine.append(ctx.tid)
            return mine

        result = omp.parallel(body, num_threads=2)
        assert sorted(result.returns) == [[1, 2, 0], [1, 2, 1]]

    def test_deep_copy_isolation(self, omp):
        original = {"inner": []}
        fp = firstprivate(original)

        def body(ctx):
            fp.get(ctx.tid)["inner"].append(ctx.tid)

        omp.parallel(body, num_threads=3)
        assert original["inner"] == []  # untouched


class TestLastprivate:
    def test_last_iteration_wins(self):
        omp = Pyjama(InlineExecutor(), num_threads=4)
        lp = lastprivate()

        def body(i):
            lp.set(i, i * 2)

        omp.parallel_for(list(range(10)), body, schedule="dynamic", chunk_size=3)
        assert lp.get() == 18  # iteration 9

    def test_logical_order_beats_execution_order(self):
        lp = lastprivate()
        # writes arrive out of order; the highest iteration index wins
        lp.set(5, "five")
        lp.set(9, "nine")
        lp.set(7, "seven")
        assert lp.get() == "nine"

    def test_unwritten_raises(self):
        lp = lastprivate()
        assert not lp.written
        with pytest.raises(LookupError):
            lp.get()
