"""Tests for the ``task`` directive inside parallel regions."""




class TestTaskDirective:
    def test_task_and_taskwait(self, omp):
        def body(ctx):
            futures = [ctx.task(lambda i=i: i * 10) for i in range(3)]
            return ctx.taskwait(futures)

        result = omp.parallel(body, num_threads=2)
        assert result.returns == [[0, 10, 20], [0, 10, 20]]

    def test_taskwait_single_future(self, omp):
        def body(ctx):
            return ctx.taskwait(ctx.task(lambda: 99))

        assert omp.parallel(body, num_threads=1).returns == [99]

    def test_recursive_tasks(self, omp):
        """The irregular-parallelism case worksharing cannot express."""

        def fib(ctx, n):
            if n < 2:
                return n
            left = ctx.task(fib, ctx, n - 1)
            right = fib(ctx, n - 2)
            return ctx.taskwait(left) + right

        def body(ctx):
            return fib(ctx, 8) if ctx.master() else None

        result = omp.parallel(body, num_threads=2)
        assert result.returns[0] == 21

    def test_task_cost_drives_sim_time(self, sim_omp):
        def body(ctx):
            if ctx.single():
                futures = [ctx.task(lambda: None, cost=1.0) for _ in range(8)]
                ctx.taskwait(futures)

        sim_omp.parallel(body, num_threads=4)
        # 8 unit tasks on 4 cores: at least 2 time units
        assert sim_omp.executor.elapsed() >= 2.0 - 1e-9
