"""Tests for the reduction registry and the project-5 object reductions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pyjama import Reduction, get_reduction, list_reductions, register_reduction


class TestRegistry:
    def test_builtin_scalars_present(self):
        for name in ["+", "*", "min", "max", "&", "|", "^", "&&", "||"]:
            assert get_reduction(name) is not None

    def test_object_reductions_present(self):
        for name in ["list", "set", "dict", "counter", "merge_sorted", "str"]:
            assert name in list_reductions()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown reduction"):
            get_reduction("frobnicate")

    def test_none_passthrough(self):
        assert get_reduction(None) is None

    def test_reduction_object_passthrough(self):
        r = Reduction("custom", lambda a, b: a + b, lambda: 0)
        assert get_reduction(r) is r

    def test_register_and_use(self):
        r = register_reduction(
            "test-gcd", lambda a, b: __import__("math").gcd(a, b), lambda: 0, overwrite=True
        )
        assert get_reduction("test-gcd") is r
        assert r.fold([12, 18, 24]) == 6

    def test_duplicate_registration_rejected(self):
        register_reduction("test-dup", lambda a, b: a, lambda: 0, overwrite=True)
        with pytest.raises(ValueError, match="already registered"):
            register_reduction("test-dup", lambda a, b: a, lambda: 0)


class TestScalarSemantics:
    def test_sum_identity(self):
        assert get_reduction("+").fold([]) == 0
        assert get_reduction("+").fold([1, 2, 3]) == 6

    def test_product(self):
        assert get_reduction("*").fold([2, 3, 4]) == 24

    def test_min_max_identities(self):
        assert get_reduction("min").fold([]) == float("inf")
        assert get_reduction("max").fold([3, 9, 1]) == 9

    def test_bitwise(self):
        assert get_reduction("&").fold([0b1110, 0b0111]) == 0b0110
        assert get_reduction("|").fold([0b100, 0b001]) == 0b101
        assert get_reduction("^").fold([5, 5]) == 0

    def test_logical(self):
        assert get_reduction("&&").fold([True, True, False]) is False
        assert get_reduction("||").fold([False, False, True]) is True
        assert get_reduction("&&").fold([]) is True
        assert get_reduction("||").fold([]) is False


class TestObjectSemantics:
    def test_list_concat_preserves_order(self):
        assert get_reduction("list").fold([[1, 2], [3], [4, 5]]) == [1, 2, 3, 4, 5]

    def test_list_accepts_scalars(self):
        assert get_reduction("list").fold([1, [2, 3], 4]) == [1, 2, 3, 4]

    def test_set_union(self):
        assert get_reduction("set").fold([{1, 2}, {2, 3}, 4]) == {1, 2, 3, 4}

    def test_dict_merge_later_wins(self):
        assert get_reduction("dict").fold([{"a": 1}, {"a": 2, "b": 3}]) == {"a": 2, "b": 3}

    def test_counter(self):
        assert get_reduction("counter").fold(["x", "y", "x", {"x": 3}]) == {"x": 5, "y": 1}

    def test_merge_sorted(self):
        assert get_reduction("merge_sorted").fold([[1, 4], [2, 3], [0]]) == [0, 1, 2, 3, 4]

    def test_str_concat(self):
        assert get_reduction("str").fold(["ab", "cd"]) == "abcd"

    def test_identity_is_fresh_each_time(self):
        """Mutable identities must never be shared between folds."""
        red = get_reduction("list")
        a = red.fold([[1]])
        b = red.fold([[2]])
        assert a == [1] and b == [2]

    @given(st.lists(st.lists(st.integers(), max_size=5), max_size=10))
    def test_list_fold_equals_concatenation(self, lists):
        assert get_reduction("list").fold(lists) == [x for sub in lists for x in sub]

    @given(st.lists(st.dictionaries(st.text(max_size=3), st.integers(), max_size=4), max_size=8))
    def test_counter_commutes_with_total(self, dicts):
        out = get_reduction("counter").fold(dicts)
        assert sum(out.values()) == sum(sum(d.values()) for d in dicts)

    @given(
        st.lists(st.lists(st.integers(-50, 50), max_size=6).map(sorted), max_size=8)
    )
    def test_merge_sorted_property(self, runs):
        out = get_reduction("merge_sorted").fold(runs)
        assert out == sorted(x for run in runs for x in run)


class TestAssociativity:
    """Parallel correctness hinges on associativity: tree-combining in any
    bracketing must match the sequential fold."""

    @pytest.mark.parametrize("name,values", [
        ("+", [1, 2, 3, 4, 5, 6, 7]),
        ("*", [1, 2, 3, 4]),
        ("min", [5, 2, 9, 1]),
        ("max", [5, 2, 9, 1]),
        ("list", [[1], [2], [3], [4]]),
        ("set", [{1}, {2}, {1, 3}]),
        ("counter", [{"a": 1}, {"b": 2}, {"a": 3}]),
    ])
    def test_tree_vs_fold(self, name, values):
        red = get_reduction(name)

        def tree(vals):
            if len(vals) == 1:
                return red.combine(red.identity(), vals[0])
            mid = len(vals) // 2
            return red.combine(tree(vals[:mid]), tree(vals[mid:]))

        assert tree(list(values)) == red.fold(values)
