"""Tests for loop-schedule chunking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pyjama import make_chunks


def covered(chunks, n):
    seen = []
    for c in chunks:
        seen.extend(c.iterations())
    return seen == list(range(n))


class TestStatic:
    def test_default_one_block_per_thread(self):
        chunks = make_chunks(10, "static", None, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [c.lane for c in chunks] == [0, 1, 2]
        assert covered(chunks, 10)

    def test_more_threads_than_iterations(self):
        chunks = make_chunks(2, "static", None, 8)
        assert len(chunks) == 2  # empty blocks are dropped
        assert covered(chunks, 2)

    def test_static_with_chunk_size_round_robin(self):
        chunks = make_chunks(10, "static", 2, 2)
        assert [c.lane for c in chunks] == [0, 1, 0, 1, 0]
        assert covered(chunks, 10)


class TestDynamic:
    def test_default_chunk_one(self):
        chunks = make_chunks(5, "dynamic", None, 4)
        assert [len(c) for c in chunks] == [1] * 5
        assert all(c.lane is None for c in chunks)

    def test_chunk_size(self):
        chunks = make_chunks(10, "dynamic", 3, 4)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert covered(chunks, 10)


class TestGuided:
    def test_decreasing_sizes(self):
        chunks = make_chunks(100, "guided", None, 4)
        sizes = [len(c) for c in chunks]
        assert sizes[0] > sizes[-1]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert covered(chunks, 100)

    def test_floor_respected(self):
        chunks = make_chunks(100, "guided", 5, 4)
        assert all(len(c) >= 5 for c in chunks[:-1])

    def test_first_chunk_fraction(self):
        chunks = make_chunks(80, "guided", None, 4)
        assert len(chunks[0]) == 10  # 80 // (2*4)


class TestValidation:
    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            make_chunks(10, "fair", None, 2)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            make_chunks(-1, "static", None, 2)

    def test_zero_iterations(self):
        assert make_chunks(0, "dynamic", None, 2) == []

    def test_bad_threads(self):
        with pytest.raises(ValueError):
            make_chunks(10, "static", None, 0)

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            make_chunks(10, "dynamic", 0, 2)


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=500),
        st.sampled_from(["static", "dynamic", "guided"]),
        st.one_of(st.none(), st.integers(min_value=1, max_value=17)),
        st.integers(min_value=1, max_value=16),
    )
    def test_exact_coverage(self, n, schedule, chunk_size, threads):
        """Every iteration appears exactly once, in ascending order."""
        chunks = make_chunks(n, schedule, chunk_size, threads)
        assert covered(chunks, n)

    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=8))
    def test_static_balance(self, n, threads):
        """Default static blocks differ in size by at most 1."""
        chunks = make_chunks(n, "static", None, threads)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=8))
    def test_chunk_indices_sequential(self, n, threads):
        chunks = make_chunks(n, "guided", None, threads)
        assert [c.index for c in chunks] == list(range(len(chunks)))
