"""Fixtures: Pyjama on every backend."""

import pytest

from repro.executor import InlineExecutor, SimExecutor, WorkStealingPool
from repro.machine import MachineSpec
from repro.pyjama import Pyjama


def sim_machine(cores=4):
    return MachineSpec(name=f"sim{cores}", cores=cores, dispatch_overhead=0.0)


@pytest.fixture(params=["inline", "sim", "threads"])
def omp(request):
    if request.param == "inline":
        yield Pyjama(InlineExecutor(), num_threads=4)
    elif request.param == "sim":
        yield Pyjama(SimExecutor(sim_machine()), num_threads=4)
    else:
        pool = WorkStealingPool(workers=4, name="omp-test")
        yield Pyjama(pool, num_threads=4)
        pool.shutdown()


@pytest.fixture
def sim_omp():
    return Pyjama(SimExecutor(sim_machine()), num_threads=4)
