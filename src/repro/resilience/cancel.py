"""Cooperative cancellation: tokens, scopes and deadline errors.

A :class:`CancelToken` is the *cooperative* half of task cancellation.
:meth:`~repro.executor.future.Future.cancel` stops a task that has not
started; a token is how a task that *has* started learns it should stop:
the executor installs the token as ambient state for the duration of the
task body (see :func:`current_token`), and cooperative code calls
:meth:`CancelToken.raise_if_cancelled` at safe points::

    token = CancelToken("query-7")
    fut = pool.submit(search, corpus, cancel=token)
    ...
    token.cancel("user closed the window")   # queued work is cancelled;
                                             # running work stops at its
                                             # next raise_if_cancelled()

Tokens form trees: :meth:`CancelToken.child` links a sub-scope that is
cancelled with its parent but can also be cancelled alone — the shape a
GUI needs (cancel one query vs. close the whole window).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "CancelToken",
    "CancelledError",
    "DeadlineExceeded",
    "current_token",
    "scoped_token",
]


# Defined here (not in repro.executor.future, which re-exports it) so the
# resilience package never imports the executor package — that would be a
# cycle, since every executor backend imports resilience.
class CancelledError(RuntimeError):
    """The task behind a future was cancelled before it produced a result."""


class DeadlineExceeded(CancelledError):
    """A task was cancelled because its deadline passed before it ran."""


class CancelToken:
    """Thread-safe, idempotent cancellation flag with callbacks.

    ``on_cancel`` callbacks run exactly once, on the cancelling thread
    (or immediately on the registering thread if already cancelled) —
    the same contract as future done-callbacks, because executors use
    them to cancel the not-yet-started futures linked to the token.
    """

    __slots__ = ("name", "_lock", "_cancelled", "_reason", "_callbacks")

    def __init__(self, name: str = "token") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason = ""
        self._callbacks: list[Callable[[], None]] = []

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> str:
        """Why the token was cancelled ('' while it is not)."""
        return self._reason

    def cancel(self, reason: str = "") -> bool:
        """Flip the token; True on the first call, False thereafter."""
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self._reason = reason
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb()
        return True

    def on_cancel(self, cb: Callable[[], None]) -> None:
        """Run ``cb`` when (or if already) cancelled."""
        run_now = False
        with self._lock:
            if self._cancelled:
                run_now = True
            else:
                self._callbacks.append(cb)
        if run_now:
            cb()

    def raise_if_cancelled(self) -> None:
        """Cooperative check point: raise :class:`CancelledError` if set."""
        if self._cancelled:
            detail = f": {self._reason}" if self._reason else ""
            raise CancelledError(f"token {self.name!r} cancelled{detail}")

    def child(self, name: str = "") -> "CancelToken":
        """A linked token: cancelling *this* token cancels the child too
        (already-cancelled parents yield an already-cancelled child)."""
        kid = CancelToken(name or f"{self.name}.child")
        self.on_cancel(lambda: kid.cancel(f"parent {self.name!r} cancelled"))
        return kid

    def __repr__(self) -> str:
        state = f"cancelled({self._reason!r})" if self._cancelled else "live"
        return f"CancelToken({self.name!r}, {state})"


_ambient = threading.local()


def ambient_stack() -> list["CancelToken | None"]:
    """The calling thread's ambient-token stack (created lazily).

    Executor fast paths use this directly — append before the task body,
    pop after — because :func:`scoped_token`'s generator-based context
    manager costs more than the task bookkeeping it wraps.  The returned
    list is thread-affine: hold on to it only from the thread that asked.
    """
    stack = getattr(_ambient, "stack", None)
    if stack is None:
        stack = _ambient.stack = []
    return stack


def current_token() -> CancelToken | None:
    """The token of the task currently executing on this thread, if any.

    Executors install it around the task body (:func:`scoped_token`), so
    library code deep inside a task can poll cancellation without the
    token being threaded through every call signature.
    """
    stack = getattr(_ambient, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def scoped_token(token: CancelToken | None) -> Iterator[None]:
    """Install ``token`` as the ambient token for the body's duration.

    ``None`` still pushes (and pops) so a task spawned *without* a token
    does not inherit the token of the task that spawned it.
    """
    stack = ambient_stack()
    stack.append(token)
    try:
        yield
    finally:
        stack.pop()
