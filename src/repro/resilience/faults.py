"""Seeded fault injection: the chaos half of the resilience layer.

A :class:`FaultPlan` is a frozen description of what should go wrong —
call failures, latency spikes, slow workers, injected task faults — with
every decision a *pure function* of ``(seed, site key)``.  Running the
same plan twice injects the identical faults at the identical places, so
a chaos run is as reproducible as a clean one and a regression test can
pin exactly which fetches failed.

Consumers pull decisions through the narrow query API
(:meth:`FaultPlan.should_fail`, :meth:`FaultPlan.latency_multiplier`,
:meth:`FaultPlan.worker_factor`) keyed by stable labels — a page URL, a
``(pool, worker)`` pair, a task id — never by call order.

Like the trace recorder, a plan can be installed *ambiently*
(:func:`use_faults`) so ``python -m repro chaos <exp>`` can push faults
into executors and network models constructed arbitrarily deep inside an
experiment without threading a parameter through every layer.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.util.rng import derive

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "current_faults",
    "resolve_faults",
    "use_faults",
]


class InjectedFault(RuntimeError):
    """A failure deliberately injected by a :class:`FaultPlan`."""


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how often, and under which seed.

    Parameters
    ----------
    seed:
        Root seed; every injection decision derives from it.
    failure_rate:
        Probability a *call-level* fail point trips per attempt — the
        rate the simulated network model applies per fetch attempt.
    task_failure_rate:
        Probability an executor fails a task body with
        :class:`InjectedFault` instead of running it.  Off by default:
        most experiments do not survive arbitrary task loss, and chaos
        runs opt in explicitly.
    latency_spike_rate / latency_spike_factor:
        Probability that a latency-bearing step (a fetch's server
        latency, a pool's realised ``compute``) is stretched by
        ``latency_spike_factor``.
    slow_worker_rate / slow_worker_factor:
        Probability a given worker of a pool is *persistently* throttled
        (every realised compute on it stretched by the factor) — the
        classic straggler scenario work stealing is supposed to absorb.
    """

    seed: int = 0
    failure_rate: float = 0.0
    task_failure_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_factor: float = 5.0
    slow_worker_rate: float = 0.0
    slow_worker_factor: float = 4.0

    def __post_init__(self) -> None:
        for field in ("failure_rate", "task_failure_rate", "latency_spike_rate", "slow_worker_rate"):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {rate}")
        if self.latency_spike_factor < 1.0 or self.slow_worker_factor < 1.0:
            raise ValueError("spike/slow factors must be >= 1")

    # -- decision queries ----------------------------------------------------

    def _draw(self, *key: object) -> float:
        """One uniform draw, a pure function of ``(seed, key)``."""
        return float(derive(self.seed, "faults", *key).random())

    def should_fail(self, *key: object) -> bool:
        """Does the call-level fail point identified by ``key`` trip?"""
        return self.failure_rate > 0.0 and self._draw("fail", *key) < self.failure_rate

    def should_fail_task(self, *key: object) -> bool:
        """Does the executor-level fail point identified by ``key`` trip?"""
        return (
            self.task_failure_rate > 0.0
            and self._draw("task-fail", *key) < self.task_failure_rate
        )

    def latency_multiplier(self, *key: object) -> float:
        """1.0, or ``latency_spike_factor`` when ``key`` draws a spike."""
        if self.latency_spike_rate > 0.0 and self._draw("spike", *key) < self.latency_spike_rate:
            return self.latency_spike_factor
        return 1.0

    def worker_factor(self, *key: object) -> float:
        """1.0, or ``slow_worker_factor`` when ``key`` names a straggler."""
        if self.slow_worker_rate > 0.0 and self._draw("slow", *key) < self.slow_worker_rate:
            return self.slow_worker_factor
        return 1.0

    @property
    def active(self) -> bool:
        """Does this plan inject anything at all?"""
        return any(
            (
                self.failure_rate,
                self.task_failure_rate,
                self.latency_spike_rate,
                self.slow_worker_rate,
            )
        )


_ambient = threading.local()


def current_faults() -> FaultPlan | None:
    """The ambient fault plan installed by :func:`use_faults`, if any."""
    return getattr(_ambient, "plan", None)


def resolve_faults(faults: FaultPlan | None) -> FaultPlan | None:
    """What constructors do with their ``faults=`` argument: an explicit
    plan wins; ``None`` falls back to the ambient one (usually ``None``
    too — fault injection is opt-in)."""
    return faults if faults is not None else current_faults()


@contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` as the ambient fault plan for this thread.

    Executors and the network model resolve it at construction/call
    time on the installing thread (the same pattern as
    :func:`repro.obs.use`), which is how ``python -m repro chaos``
    reaches components it never constructs itself.
    """
    prev = getattr(_ambient, "plan", None)
    _ambient.plan = plan
    try:
        yield plan
    finally:
        _ambient.plan = prev
