"""Task-lifecycle resilience: cancellation, deadlines, retry, fault injection.

The serving-stack robustness layer the ROADMAP's production north-star
needs, and the failure/recovery behaviour hands-on PDC pedagogy wants
students to *observe* rather than read about:

* **cancellation** — :class:`CancelToken` (cooperative, tree-shaped) plus
  real ``Future.cancel()`` across every executor backend; cancelling a
  task cancels its not-yet-started dependants;
* **deadlines** — per-submit ``deadline=`` and group timeouts that
  *cancel* overdue work (:class:`DeadlineExceeded`) instead of abandoning
  it;
* **retry** — :class:`RetryPolicy`, exponential backoff with *seeded*
  jitter so retrying code stays deterministic;
* **fault injection** — :class:`FaultPlan`, a seeded chaos description
  (call failures, latency spikes, slow workers) honoured by the corpus
  network model and the executors; ``python -m repro chaos <exp>`` runs
  any experiment under one.

Every lifecycle transition (cancelled, retried, faulted, drained) emits
:mod:`repro.obs` trace events, so ``python -m repro analyze``/``chaos``
summarise recovery behaviour alongside work/span analytics.
"""

from repro.resilience.cancel import (
    CancelledError,
    CancelToken,
    DeadlineExceeded,
    current_token,
    scoped_token,
)
from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    current_faults,
    resolve_faults,
    use_faults,
)
from repro.resilience.remote import RemoteCancelChannel, WorkerCancelListener
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "CancelToken",
    "CancelledError",
    "DeadlineExceeded",
    "current_token",
    "scoped_token",
    "FaultPlan",
    "InjectedFault",
    "current_faults",
    "resolve_faults",
    "use_faults",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "RemoteCancelChannel",
    "WorkerCancelListener",
]
