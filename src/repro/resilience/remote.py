"""Cross-process cancellation signalling for out-of-process executors.

In-process backends cancel running tasks through shared memory: the
:class:`~repro.resilience.cancel.CancelToken` object itself is visible
to both the canceller and the task body.  Across a process boundary the
token object cannot be shared, so cancellation becomes a *message*: the
parent broadcasts ``(tid, reason)`` on a one-way pipe per worker, and a
listener thread inside each worker re-raises the signal against the
worker-local token registered for that task id.

Two races are handled explicitly:

* **signal beats the task** — the cancel message can arrive before the
  worker dequeues the task it names.  The listener records the tid as
  *pre-cancelled*; the worker checks :meth:`WorkerCancelListener.precancelled`
  before starting a task and skips the body entirely.
* **task beats the signal** — the task may finish (and unregister)
  before the message arrives.  A cancel for an unknown, already-finished
  tid lands in the pre-cancelled map and is simply never consulted again;
  the map is bounded by the number of cancels issued, not tasks run.

This module deliberately lives in :mod:`repro.resilience`, not the
executor package: it depends only on tokens and pipes, and the executor
packages already import resilience (the reverse import would cycle).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Iterable

from repro.resilience.cancel import CancelToken

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

__all__ = ["RemoteCancelChannel", "WorkerCancelListener"]


class RemoteCancelChannel:
    """Parent-side fan-out of cancel signals to every worker.

    The parent does not know which worker holds a given task (tasks are
    pulled from a shared queue), so every cancel broadcasts to all
    workers; non-owners record a pre-cancel that is either consulted when
    the task is dequeued or never at all.  Cancels are rare events —
    broadcast cost is irrelevant next to the task bodies it saves.
    """

    def __init__(self, connections: Iterable["Connection"]) -> None:
        self._connections = list(connections)
        self._lock = threading.Lock()
        self._closed = False
        self.sent = 0

    def broadcast_cancel(self, tid: int, reason: str) -> None:
        """Tell every worker that task ``tid`` should stop."""
        with self._lock:
            if self._closed:
                return
            for conn in self._connections:
                try:
                    conn.send(("cancel", tid, reason))
                except (OSError, ValueError, BrokenPipeError):
                    pass  # a dead worker cannot run the task anyway
            self.sent += 1

    def broadcast_signal(self, name: str, value: object = True) -> None:
        """Fan an out-of-band named flag to every worker.

        Rides the cancel pipes (same wire shape, different kind tag);
        workers surface it through the listener's ``on_signal`` hook.
        Best-effort, like cancels: dead workers are skipped.
        """
        with self._lock:
            if self._closed:
                return
            for conn in self._connections:
                try:
                    conn.send(("signal", name, value))
                except (OSError, ValueError, BrokenPipeError):
                    pass

    def close(self) -> None:
        """Close every worker pipe; further broadcasts become no-ops."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for conn in self._connections:
                try:
                    conn.close()
                except OSError:
                    pass


class WorkerCancelListener:
    """Worker-side receiver: routes cancel signals to per-task tokens.

    The worker registers a fresh :class:`CancelToken` under the task id
    just before running the body and unregisters it after; the listener
    thread cancels the registered token when a matching signal arrives.
    Signals for unregistered tids become *pre-cancels* the worker checks
    at dequeue time.
    """

    def __init__(
        self,
        connection: "Connection",
        on_signal: Callable[[str, object], None] | None = None,
    ) -> None:
        self._connection = connection
        self._on_signal = on_signal
        self._lock = threading.Lock()
        self._tokens: dict[int, CancelToken] = {}
        self._precancelled: dict[int, str] = {}
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._listen, name="cancel-listener", daemon=True
        )
        self._thread.start()

    def _listen(self) -> None:
        while True:
            try:
                message = self._connection.recv()
            except (EOFError, OSError):
                return  # parent closed the channel: shutdown
            if not (isinstance(message, tuple) and len(message) == 3):
                continue
            kind, tid, reason = message
            if kind == "signal":
                # (kind, name, value) — non-cancel out-of-band flags
                if self._on_signal is not None:
                    self._on_signal(tid, reason)
                continue
            if kind != "cancel":
                continue
            with self._lock:
                token = self._tokens.get(tid)
                if token is None:
                    self._precancelled[tid] = reason
            if token is not None:
                token.cancel(reason)

    def register(self, tid: int, token: CancelToken) -> None:
        """Bind ``token`` to ``tid``; applies an already-arrived signal."""
        with self._lock:
            reason = self._precancelled.pop(tid, None)
            self._tokens[tid] = token
        if reason is not None:
            token.cancel(reason)

    def unregister(self, tid: int) -> None:
        with self._lock:
            self._tokens.pop(tid, None)

    def precancelled(self, tid: int) -> str | None:
        """The cancel reason if ``tid`` was cancelled before it started."""
        with self._lock:
            reason = self._precancelled.pop(tid, None)
        return reason
