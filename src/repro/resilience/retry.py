"""Retry with exponential backoff and *seeded* jitter.

A :class:`RetryPolicy` is a frozen value object describing how to retry:
attempt budget, exponential backoff, a retry-on predicate, and jitter
drawn from :func:`repro.util.rng.derive` — so a policy's delay sequence
is a pure function of ``(seed, key, attempt)`` and an experiment that
retries is exactly as reproducible as one that does not (the repo-wide
determinism contract).

The policy is execution-agnostic: :meth:`RetryPolicy.run` drives a
synchronous callable with a pluggable ``sleep`` (the ptask runtime passes
``executor.compute`` so backoff is *accounted* — virtual seconds on the
sim backend, realised sleeps on a ``compute_mode="sleep"`` pool), while
generator-based code (the simulated network model) asks
:meth:`RetryPolicy.delay` for the next backoff and yields it itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.trace import TraceRecorder, current_recorder
from repro.util.rng import derive

__all__ = ["RetryPolicy", "DEFAULT_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) to retry a failing call.

    Parameters
    ----------
    max_attempts:
        Total attempt budget including the first call (1 = no retries).
    base_delay:
        Backoff before the first retry, in (virtual or wall) seconds.
    multiplier:
        Exponential growth factor per retry.
    max_delay:
        Ceiling on a single backoff, pre-jitter.
    jitter:
        Fractional jitter: the realised delay is the nominal delay times
        a factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    seed:
        Root seed for the jitter stream (see module docstring).
    retry_on:
        Exception types that are retryable; anything else propagates
        immediately.  A callable ``exc -> bool`` is also accepted.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    retry_on: Any = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    # -- decisions -----------------------------------------------------------

    def is_retryable(self, exc: BaseException) -> bool:
        """Does the policy's ``retry_on`` predicate accept ``exc``?"""
        if callable(self.retry_on) and not isinstance(self.retry_on, (tuple, type)):
            return bool(self.retry_on(exc))
        return isinstance(exc, self.retry_on)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Retry after ``attempt`` (1-based) failed with ``exc``?"""
        return attempt < self.max_attempts and self.is_retryable(exc)

    def delay(self, attempt: int, key: object = "") -> float:
        """Backoff after failed attempt number ``attempt`` (1-based).

        Deterministic: a pure function of ``(seed, key, attempt)`` —
        independent of call order, so concurrent retriers (one ``key``
        per page, say) do not perturb each other's delays.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        nominal = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0 or nominal == 0.0:
            return nominal
        u = float(derive(self.seed, "retry", key, attempt).random())
        return nominal * (1.0 + self.jitter * (2.0 * u - 1.0))

    def delays(self, key: object = "") -> list[float]:
        """Every backoff the policy would sleep for ``key``, in order."""
        return [self.delay(a, key) for a in range(1, self.max_attempts)]

    # -- execution -----------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        sleep: Callable[[float], None] = time.sleep,
        key: object = "",
        trace: TraceRecorder | None = None,
        on_retry: Callable[[int, BaseException, float], None] | None = None,
        **kwargs: Any,
    ) -> Any:
        """Call ``fn`` under the policy; returns its value or raises the
        final exception once the budget is exhausted (or the exception is
        not retryable).

        ``sleep`` realises backoff (pass ``executor.compute`` to account
        it instead); ``trace`` emits ``retry`` events (defaults to the
        ambient recorder — pass one explicitly from worker threads, the
        ambient recorder is thread-local); ``on_retry(attempt, exc,
        delay)`` is a hook for logging/metrics at each retry decision.
        """
        recorder = trace if trace is not None else current_recorder()
        attempt = 1
        while True:
            try:
                return fn(*args, **kwargs)
            except Exception as exc:
                if not self.should_retry(exc, attempt):
                    raise
                backoff = self.delay(attempt, key)
                if recorder.enabled:
                    recorder.event(
                        "retry",
                        str(key) or getattr(fn, "__name__", "call"),
                        attempt=attempt,
                        delay=backoff,
                        exception=type(exc).__name__,
                    )
                    recorder.count("resilience.retries")
                if on_retry is not None:
                    on_retry(attempt, exc, backoff)
                if backoff > 0:
                    sleep(backoff)
                attempt += 1


#: A sensible default for simulated-network work: 4 attempts, 0.2 s base.
DEFAULT_RETRY = RetryPolicy(max_attempts=4, base_delay=0.2, multiplier=2.0, max_delay=5.0)
