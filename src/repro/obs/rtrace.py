"""Request-scoped tracing for the serving gateway (``repro.serve``).

A served request reports one end-to-end latency scalar; this module
records *where* that latency went.  Each **admitted** request gets a
:class:`RequestTrace` — a request id plus a monotonic stage clock —
whose life is a chain of stage *marks*::

    arrive ──admit──cache──batch──queue──execute──(retry)──resolve

Each mark ``(stage, ts)`` closes the named segment: the segment's
duration is the gap since the previous mark (or since arrival, for the
first).  Durations therefore *telescope*: they sum to exactly
``resolve_ts - arrival``, which the gateway guarantees equals the
latency it reports on the response, so per-stage attribution and the
end-to-end number can never disagree (the hypothesis property in
``tests/serve/test_rtrace.py`` pins this).  Stage vocabulary:

=========  ==========================================================
admit      admission decision (zero-width in driven mode)
cache      cache lookup; for coalesced followers, the whole wait on
           the in-flight leader
batch      waiting for the micro-batch to close (company or age-out)
queue      closed batch waiting for a free core / pool worker
execute    the batch body running (virtual cost under sim, measured
           where it actually ran on real backends)
retry      re-execution after a failed attempt (immediate, so
           zero-width in driven mode)
resolve    completion delivery (callback/transit residual on real
           backends; zero-width in driven mode)
=========  ==========================================================

The clock is whatever the gateway uses — virtual seconds under the
driven (sim/inline) mode, so golden reports stay byte-stable, and
``time.monotonic()`` wall seconds on real pools (see the fidelity note
in DESIGN.md).

Zero overhead when off, same discipline as ``NullMetrics``: the gateway
keeps ``req.rt is None`` fast paths, and executors consult the ambient
:func:`active` collector (installed by :func:`use_rtrace`) with one
module-global read before stamping ``future.meta``.  This module
imports nothing from the executor or serve packages, so every layer may
depend on it without cycles.
"""

from __future__ import annotations

import heapq
import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "STAGES",
    "RequestTrace",
    "RequestSummary",
    "RequestTraceCollector",
    "active",
    "use_rtrace",
    "set_worker_signal",
    "worker_signal",
]

#: canonical stage order (also the display order of the decomposition)
STAGES = ("admit", "cache", "batch", "queue", "execute", "retry", "resolve")


def _settle(prefix: float, target: float) -> float | None:
    """Find ``x`` with ``prefix + x == target`` exactly, or ``None``.

    Starts from the residual and steps through adjacent floats; a few
    ulps suffice whenever ``target`` is reachable at all (either the
    subtraction was exact by Sterbenz's lemma, or ``x``'s grid is at
    least as fine as the sum's).  Returns ``None`` in the round-to-even
    midpoint regime where no ``x`` rounds onto ``target``.
    """
    x = target - prefix
    r = prefix + x
    for _ in range(8):
        if r == target:
            return x
        x = math.nextafter(x, math.inf if r < target else -math.inf)
        r = prefix + x
    return None


class RequestTrace:
    """Stage clock of one admitted request.

    Mutable and unlocked on purpose: the gateway only touches a trace
    while holding its own mutex (or from the single callback that
    resolves the request), exactly like the ``_Request`` it rides on.
    """

    __slots__ = (
        "request_id",
        "task",
        "arrival",
        "marks",
        "attempts",
        "worker",
        "pid",
        "cached",
        "status",
    )

    def __init__(self, request_id: int, task: str, arrival: float) -> None:
        self.request_id = request_id
        self.task = task
        self.arrival = arrival
        self.marks: list[tuple[str, float]] = []
        self.attempts = 1
        self.worker: int | None = None
        self.pid: int | None = None
        self.cached = False
        self.status = "open"

    def mark(self, stage: str, ts: float) -> None:
        """Close the ``stage`` segment at ``ts``.

        Timestamps are clamped monotonic: a wall-clock reading that
        lands before the previous mark — or before arrival — (scheduler
        jitter between the worker's clock read and the callback's)
        yields a zero-width segment instead of a negative one.
        """
        if ts < self.resolve_ts:
            ts = self.resolve_ts
        self.marks.append((stage, ts))

    @property
    def resolve_ts(self) -> float:
        """Timestamp of the last mark (arrival while the trace is open)."""
        return self.marks[-1][1] if self.marks else self.arrival

    def total(self) -> float:
        """End-to-end seconds, identical to the reported response latency
        (the gateway marks ``resolve`` with the same clock reading it
        computes the latency from)."""
        return self.resolve_ts - self.arrival

    def stages(self) -> dict[str, float]:
        """Per-stage durations; guaranteed to sum to exactly :meth:`total`.

        ``sum()`` over the returned dict (left-to-right, insertion
        order) equals ``total()`` with ``==``, not merely ``isclose``:
        the final entry is rebuilt as ``total - prefix`` and nudged by
        ulps until the running sum lands exactly on ``total``.  Two
        float traps hide here.  The naive one-shot residual absorption
        oscillates when the target sits midway between two reachable
        running sums; worse, with round-to-even the reachable sums can
        *skip* the target entirely (every true sum ``prefix + x`` lands
        exactly on a rounding midpoint, so adjacent ``x`` values round
        to the two neighbours of ``total`` and never to ``total``
        itself).  No choice of last value fixes that, so on failure the
        *penultimate* value is nudged one grid point down — that shifts
        the prefix off the midpoint alignment (its ulp is strictly
        smaller than the target's in the failing regime) and retries.
        """
        out: dict[str, float] = {}
        prev = self.arrival
        for stage, ts in self.marks:
            out[stage] = out.get(stage, 0.0) + (ts - prev)
            prev = ts
        if not self.marks:
            return out
        total = self.total()
        keys = list(out)
        if len(keys) == 1:
            out[keys[0]] = total
            return out
        prefix = 0.0
        for k in keys[:-2]:
            prefix = prefix + out[k]
        pen = out[keys[-2]]
        last = _settle(prefix + pen, total)
        for _ in range(8):
            if last is not None:
                break
            pen = math.nextafter(prefix + pen, -math.inf) - prefix
            last = _settle(prefix + pen, total)
        if last is None:  # pragma: no cover — see the docstring argument
            last = total - (prefix + pen)
        out[keys[-2]] = pen
        out[keys[-1]] = last
        return out


@dataclass(frozen=True)
class RequestSummary:
    """Frozen aggregate of one collection run (what reports consume).

    ``stage_samples`` maps each stage (in :data:`STAGES` order) to the
    per-request durations of every finished trace that passed through
    it.  ``latencies``/``resolves``/``oks``/``statuses`` are parallel
    arrays over finished traces in resolution order — the windowed SLO
    evaluator (:mod:`repro.obs.slo`) slices them.  ``exemplars`` are
    the N slowest traces, slowest first, for the waterfall view.
    """

    requests: int
    completed: int
    failed: int
    rejected: int
    cached: int
    stage_samples: dict[str, tuple[float, ...]]
    latencies: tuple[float, ...]
    resolves: tuple[float, ...]
    oks: tuple[bool, ...]
    statuses: tuple[str, ...]
    sheds: tuple[float, ...]
    exemplars: tuple[RequestTrace, ...]


class RequestTraceCollector:
    """Accumulates finished :class:`RequestTrace` records.

    ``exemplars`` bounds how many full traces are retained (the N
    slowest, by a deterministic ``(latency, order)`` heap); aggregates
    are kept for every finished trace regardless.  The collector is
    unlocked for the same reason the traces are: every ``finish`` call
    happens under the gateway mutex or its single resolving callback.
    """

    enabled = True

    def __init__(self, exemplars: int = 24) -> None:
        if exemplars < 1:
            raise ValueError(f"exemplars must be >= 1, got {exemplars}")
        self.max_exemplars = exemplars
        self._stage_samples: dict[str, list[float]] = {s: [] for s in STAGES}
        self._latencies: list[float] = []
        self._resolves: list[float] = []
        self._oks: list[bool] = []
        self._statuses: list[str] = []
        self._sheds: list[float] = []
        self._heap: list[tuple[float, int, RequestTrace]] = []
        self._seq = 0
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.cached = 0

    def begin(self, request_id: int, task: str, arrival: float) -> RequestTrace:
        """Open a trace for one admitted request."""
        return RequestTrace(request_id, task, arrival)

    def shed(self, ts: float) -> None:
        """Record an admission shed (the request never got a trace)."""
        self._sheds.append(ts)

    def finish(self, rt: RequestTrace, response: Any) -> None:
        """Fold a resolved trace into the aggregates.

        ``response`` is duck-typed against the serve response union
        (``reason`` ⇒ rejected, ``error`` ⇒ failed, else completed) so
        this module stays import-free of ``repro.serve``.
        """
        if hasattr(response, "reason"):
            rt.status = "rejected"
            self.rejected += 1
            ok = False
        elif hasattr(response, "error"):
            rt.status = "failed"
            rt.attempts = getattr(response, "attempts", rt.attempts)
            self.failed += 1
            ok = False
        else:
            rt.status = "completed"
            rt.cached = bool(getattr(response, "cached", False))
            rt.attempts = getattr(response, "attempts", rt.attempts)
            self.completed += 1
            if rt.cached:
                self.cached += 1
            ok = True
        self.requests += 1
        for stage, dur in rt.stages().items():
            self._stage_samples[stage].append(dur)
        total = rt.total()
        self._latencies.append(total)
        self._resolves.append(rt.resolve_ts)
        self._oks.append(ok)
        self._statuses.append(rt.status)
        self._seq += 1
        entry = (total, self._seq, rt)
        if len(self._heap) < self.max_exemplars:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    def summary(self) -> RequestSummary:
        """Freeze the aggregates (stages in canonical order, exemplars
        slowest-first with a deterministic tie-break)."""
        exemplars = tuple(
            rt for _, _, rt in sorted(self._heap, key=lambda e: (-e[0], e[1]))
        )
        return RequestSummary(
            requests=self.requests,
            completed=self.completed,
            failed=self.failed,
            rejected=self.rejected,
            cached=self.cached,
            stage_samples={s: tuple(v) for s, v in self._stage_samples.items()},
            latencies=tuple(self._latencies),
            resolves=tuple(self._resolves),
            oks=tuple(self._oks),
            statuses=tuple(self._statuses),
            sheds=tuple(self._sheds),
            exemplars=exemplars,
        )


# -- ambient collector (executor meta-stamp gating) --------------------------

#: module-global, not thread-local: pool worker threads and future
#: callbacks must see the collector the driver installed.
_active: RequestTraceCollector | None = None


def active() -> RequestTraceCollector | None:
    """The ambient collector installed by :func:`use_rtrace`, if any.

    Executors guard their ``future.meta`` execution-span stamps on this
    single global read, the request-tracing analogue of
    ``trace.enabled``.
    """
    return _active


@contextmanager
def use_rtrace(collector: RequestTraceCollector) -> Iterator[RequestTraceCollector]:
    """Install ``collector`` as the ambient request-trace collector.

    Deliberately process-global (unlike :func:`repro.obs.trace.use`):
    execution spans are stamped on pool worker threads that never see
    the installer's thread-locals.  Not reentrant across concurrent
    gateways — one traced serve run per process at a time.
    """
    global _active
    prev = _active
    _active = collector
    try:
        yield collector
    finally:
        _active = prev


# -- worker-process signals ---------------------------------------------------

#: signals broadcast by the parent over :mod:`repro.resilience.remote`
#: (e.g. ``serve.rtrace`` enabling per-request shard spans); worker-local.
_worker_signals: dict[str, Any] = {}


def set_worker_signal(name: str, value: Any) -> None:
    """Record a parent signal inside a worker process (listener callback)."""
    _worker_signals[name] = value


def worker_signal(name: str, default: Any = None) -> Any:
    """Read a parent signal inside a worker process."""
    return _worker_signals.get(name, default)
