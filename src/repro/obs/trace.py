"""Structured trace recording with a zero-overhead disabled mode.

A :class:`TraceRecorder` turns runtime happenings into
:class:`TraceEvent` records and hands them to a sink
(:mod:`repro.obs.sinks`).  Events carry a *kind* (``task``, ``steal``,
``critical``, ``barrier``, ``edt``, ``region`` ...), a *phase* in the
Chrome ``trace_event`` vocabulary (``"B"``/``"E"`` span edges, ``"X"``
complete spans with a duration, ``"i"`` instants), a timestamp in
seconds, and the task/worker identity the event belongs to.

Two timelines coexist:

* **wall time** — the thread pool, EDT and inline executor stamp events
  with seconds since the recorder was created (:meth:`TraceRecorder.now`);
* **virtual time** — the simulated executor emits its schedule *post
  hoc* via :meth:`TraceRecorder.emit_span` with explicit virtual-second
  timestamps, one trace group (Chrome "process") per ``schedule()`` call
  so core sweeps stay separable in the viewer.

:data:`NULL_RECORDER` is the module-wide disabled recorder: every method
is a no-op, ``enabled`` is ``False``, and its metrics registry is a
:class:`~repro.obs.metrics.NullMetrics`.  Instrumented code may either
call it unconditionally (calls are cheap) or guard hot paths with
``if recorder.enabled:``.

An *ambient* recorder can be installed with :func:`use`; constructors
that take ``trace=None`` resolve it via :func:`resolve_recorder`, which
is how ``python -m repro trace <exp>`` captures executors built deep
inside an experiment without threading a parameter through every layer.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, NamedTuple

from repro.obs.metrics import Metrics, NullMetrics
from repro.obs.sinks import MemorySink, Sink

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "resolve_recorder",
    "use",
]

#: Chrome trace_event phases this layer emits.
_PHASES = ("B", "E", "X", "i", "M")


#: shared default for events constructed without attrs — never mutated
#: (events are immutable; readers only iterate/copy it)
_EMPTY_ATTRS: dict[str, Any] = {}

_tuple_new = tuple.__new__


class _TraceEventFields(NamedTuple):
    kind: str
    name: str
    phase: str = "i"
    ts: float = 0.0
    dur: float | None = None
    task_id: int = 0
    worker: int | None = None
    group: int = 0
    # plain ``dict`` (not dict[str, Any]) so strategy inference in
    # property tests can resolve every field of the named tuple
    attrs: dict = _EMPTY_ATTRS


class TraceEvent(_TraceEventFields):
    """One structured record of something the runtime did.

    ``ts`` and ``dur`` are seconds (wall or virtual, per the emitting
    backend); sinks that need microseconds convert on serialisation.
    ``group`` maps to the Chrome "pid" so unrelated timelines (e.g. the
    same recording scheduled on 1, 2, 4 ... cores) don't overlap.

    Events are tuple-backed (a ``NamedTuple``): construction on the
    recorder's hot path is one ``tuple.__new__`` plus the two validity
    checks below — the previous frozen dataclass paid nine
    ``object.__setattr__`` calls per event.  Immutability comes with the
    tuple; field access, equality and ``_replace`` behave as before.
    """

    __slots__ = ()

    def __new__(
        cls,
        kind: str,
        name: str,
        phase: str = "i",
        ts: float = 0.0,
        dur: float | None = None,
        task_id: int = 0,
        worker: int | None = None,
        group: int = 0,
        attrs: dict = _EMPTY_ATTRS,
    ) -> "TraceEvent":
        if phase not in _PHASES:
            raise ValueError(f"unknown trace phase {phase!r}; expected one of {_PHASES}")
        if dur is not None and dur < 0:
            raise ValueError(f"event duration must be >= 0, got {dur}")
        return _tuple_new(cls, (kind, name, phase, ts, dur, task_id, worker, group, attrs))

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form used by the JSONL sink (seconds, flat keys)."""
        out: dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "ph": self.phase,
            "ts": self.ts,
            "task": self.task_id,
            "group": self.group,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.worker is not None:
            out["worker"] = self.worker
        if self.attrs:
            out["args"] = dict(self.attrs)
        return out

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_json`: rebuild an event from its JSONL dict.

        This is how cross-process trace *shards* (JSONL files written by
        worker processes) are read back for merging — see
        :mod:`repro.obs.shards`.
        """
        return cls(
            kind=data["kind"],
            name=data["name"],
            phase=data.get("ph", "i"),
            ts=float(data.get("ts", 0.0)),
            dur=data.get("dur"),
            task_id=int(data.get("task", 0)),
            worker=data.get("worker"),
            group=int(data.get("group", 0)),
            attrs=dict(data.get("args") or {}),
        )

    def to_chrome(self) -> dict[str, Any]:
        """Chrome ``trace_event`` dict (timestamps in microseconds)."""
        lane = self.worker if self.worker is not None else self.task_id
        out: dict[str, Any] = {
            "name": self.name,
            "cat": self.kind,
            "ph": self.phase,
            "ts": self.ts * 1e6,
            "pid": self.group,
            "tid": lane,
            "args": {"task": self.task_id, **self.attrs},
        }
        if self.phase == "X":
            out["dur"] = (self.dur or 0.0) * 1e6
        if self.phase == "i":
            out["s"] = "t"  # instant scope: thread
        return out


class TraceRecorder:
    """Collects trace events into a sink and metrics into a registry."""

    #: real recorders record; :class:`NullRecorder` flips this to False
    enabled = True

    def __init__(
        self,
        sink: Sink | None = None,
        metrics: Metrics | None = None,
        max_events: int | None = None,
        track_overhead: bool = False,
    ) -> None:
        """``max_events`` bounds how many events reach the sink; beyond it
        events are counted in :attr:`dropped_events` instead of recorded,
        so heavy-traffic runs cannot grow a MemorySink without bound.
        Metadata events (group labels, phase ``M``) are exempt — they are
        tiny and the analyzer needs them to name timelines.

        ``track_overhead`` times every sink emission so the recorder's
        own cost is observable (:meth:`overhead`); off by default — the
        timing itself costs two clock reads per event, and the numbers
        are wall-clock noise that must never reach baseline gating."""
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.sink: Sink = sink if sink is not None else MemorySink()
        self.metrics: Metrics = metrics if metrics is not None else Metrics()
        self.max_events = max_events
        self.track_overhead = track_overhead
        self._epoch = time.monotonic()
        self._lock = threading.Lock()
        self._next_group = 1  # group 0 is the wall-clock timeline
        self._emitted = 0
        self._dropped = 0
        self._overhead_seconds = 0.0
        self._overhead_events = 0

    # -- clocks & grouping ---------------------------------------------------

    def now(self) -> float:
        """Wall seconds since this recorder was created."""
        return time.monotonic() - self._epoch

    def rebase(self, now: float) -> None:
        """Shift the epoch so :meth:`now` reads ``now`` at this instant.

        Worker processes use this to put their shard recorders on the
        parent's timeline (the parent ships its wall epoch at spawn), so
        merged shards need no per-event timestamp translation."""
        self._epoch = time.monotonic() - now

    def new_group(self, label: str = "", **attrs: Any) -> int:
        """Allocate a trace group (Chrome "process") for a separate
        timeline; emits the metadata event that names it in the viewer.

        Extra ``attrs`` (e.g. ``cores=8`` from the simulated executor)
        ride on the metadata event, which is how the analyzer learns a
        timeline's machine shape for speedup-model fitting."""
        with self._lock:
            group = self._next_group
            self._next_group += 1
        if label:
            self._emit(
                TraceEvent(kind="meta", name="process_name", phase="M",
                           group=group, attrs={"name": label, **attrs})
            )
        return group

    # -- event emission ------------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        """Hand one event to the sink, honouring the ``max_events`` cap
        (metadata events are always recorded — see ``__init__``)."""
        if self.max_events is not None and event.phase != "M":
            with self._lock:
                if self._emitted >= self.max_events:
                    self._dropped += 1
                    return
                self._emitted += 1
        if not self.track_overhead:
            self.sink.emit(event)
            return
        t0 = time.perf_counter()
        self.sink.emit(event)
        dt = time.perf_counter() - t0
        with self._lock:
            self._overhead_seconds += dt
            self._overhead_events += 1

    @property
    def dropped_events(self) -> int:
        """Events discarded because the ``max_events`` cap was reached."""
        return self._dropped

    def overhead(self) -> dict[str, float]:
        """Recorder self-cost: events timed and seconds spent in the sink.

        All zeros unless the recorder was built with
        ``track_overhead=True`` — the accounting is for live dashboards
        and never feeds :mod:`repro.obs.baseline`.
        """
        with self._lock:
            return {"events": float(self._overhead_events), "seconds": self._overhead_seconds}

    def event(
        self,
        kind: str,
        name: str,
        *,
        phase: str = "i",
        ts: float | None = None,
        task_id: int = 0,
        worker: int | None = None,
        group: int = 0,
        **attrs: Any,
    ) -> None:
        """Record one event; ``ts=None`` stamps wall time now."""
        event = TraceEvent(
            kind,
            name,
            phase,
            time.monotonic() - self._epoch if ts is None else ts,
            None,
            task_id,
            worker,
            group,
            attrs,
        )
        # Thin fast path for the common configuration (no event cap, no
        # overhead tracking): hand the event straight to the sink.
        if self.max_events is None and not self.track_overhead:
            self.sink.emit(event)
        else:
            self._emit(event)

    def record(self, event: TraceEvent) -> None:
        """Record a pre-built event verbatim (cap rules still apply).

        The replay entry point: shard merging
        (:func:`repro.obs.shards.replay_into`) uses it to splice events
        recorded in other processes — with their original timestamps,
        workers and task ids — into this recorder's timeline.
        """
        self._emit(event)

    def emit_span(
        self,
        kind: str,
        name: str,
        start: float,
        end: float,
        *,
        task_id: int = 0,
        worker: int | None = None,
        group: int = 0,
        **attrs: Any,
    ) -> None:
        """Record a complete span with explicit (e.g. virtual) timestamps."""
        self._emit(
            TraceEvent(
                kind=kind,
                name=name,
                phase="X",
                ts=start,
                dur=max(0.0, end - start),
                task_id=task_id,
                worker=worker,
                group=group,
                attrs=attrs,
            )
        )

    @contextmanager
    def span(
        self,
        kind: str,
        name: str,
        *,
        task_id: int = 0,
        worker: int | None = None,
        **attrs: Any,
    ) -> Iterator[None]:
        """Wall-clock span: emits matched ``B``/``E`` events around the body.

        The ``E`` event is emitted even when the body raises, so spans
        are always well-nested per task (the obs test suite pins this).
        """
        self.event(kind, name, phase="B", task_id=task_id, worker=worker, **attrs)
        try:
            yield
        finally:
            self.event(kind, name, phase="E", task_id=task_id, worker=worker)

    # -- metrics facade ------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.count(name, n)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- convenience ---------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """The recorded events, if the sink keeps them (MemorySink does);
        raises ``TypeError`` for write-only sinks."""
        events = getattr(self.sink, "events", None)
        if events is None:
            raise TypeError(f"sink {self.sink!r} does not retain events")
        return list(events)

    def clear(self) -> None:
        """Discard recorded events and reset the cap accounting, so one
        recorder can observe several phases of a long run in bounded
        memory; raises ``TypeError`` for sinks that cannot clear."""
        clear = getattr(self.sink, "clear", None)
        if clear is None:
            raise TypeError(f"sink {self.sink!r} does not support clear()")
        clear()
        with self._lock:
            self._emitted = 0
            self._dropped = 0

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"TraceRecorder(sink={self.sink!r}, metrics={self.metrics!r})"


class NullRecorder(TraceRecorder):
    """The disabled recorder: records nothing, costs (almost) nothing.

    Every emission method is an immediate-return no-op and the metrics
    registry is a :class:`~repro.obs.metrics.NullMetrics`, so leaving
    instrumentation calls in hot paths is safe when tracing is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=MemorySink(), metrics=NullMetrics())

    def event(self, kind: str, name: str, **kwargs: Any) -> None:  # type: ignore[override]
        pass

    def record(self, event: TraceEvent) -> None:  # type: ignore[override]
        pass

    def emit_span(self, kind: str, name: str, start: float, end: float, **kwargs: Any) -> None:  # type: ignore[override]
        pass

    @contextmanager
    def span(self, kind: str, name: str, **kwargs: Any) -> Iterator[None]:  # type: ignore[override]
        yield

    def new_group(self, label: str = "", **attrs: Any) -> int:
        return 0

    def count(self, name: str, n: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: Shared disabled recorder; the default everywhere ``trace=`` is omitted.
NULL_RECORDER = NullRecorder()

_ambient = threading.local()


def current_recorder() -> TraceRecorder:
    """The ambient recorder installed by :func:`use` (NULL when none)."""
    return getattr(_ambient, "recorder", None) or NULL_RECORDER


def resolve_recorder(trace: TraceRecorder | None) -> TraceRecorder:
    """What constructors do with their ``trace=`` argument: an explicit
    recorder wins; ``None`` falls back to the ambient one."""
    return trace if trace is not None else current_recorder()


@contextmanager
def use(recorder: TraceRecorder) -> Iterator[TraceRecorder]:
    """Install ``recorder`` as the ambient recorder for this thread.

    Constructors that default ``trace=None`` pick it up, which lets a
    driver (the CLI, a test) observe executors created arbitrarily deep
    inside the code under observation.
    """
    prev = getattr(_ambient, "recorder", None)
    _ambient.recorder = recorder
    try:
        yield recorder
    finally:
        _ambient.recorder = prev
