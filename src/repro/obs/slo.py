"""Declarative service-level objectives over served traffic.

An :class:`Objective` is one comparison against a serving metric —
``p99 <= 0.25``, ``shed_rate <= 0.05``, ``availability >= 0.999`` —
declared as data (or parsed from the CLI string form) and evaluated by
:func:`evaluate_slo` against a finished load report in two grains:

* the **aggregate** over the whole run decides the typed pass/fail
  verdict (deterministic under sim: same trace, same verdict, byte for
  byte);
* fixed-width **windows** over the run's timeline count how many
  evaluation periods individually breached the objective, yielding the
  burn rate (breached / evaluated windows) that pages before an
  aggregate ever moves.  Windows are virtual seconds under sim and wall
  seconds on real pools, like every other serving clock.

The verdict feeds three sinks: a rendered table for the CLI, burn-rate
counters/gauges for the Prometheus exporter (``repro_slo_*``), and
direction-aware metrics for :mod:`repro.obs.baseline` regression gating
(burn/breach down is good, availability up is good).

This module only duck-types the report (``percentile``/``shed_rate``/
``completed``/``failed``/``duration`` plus the optional ``stages``
request summary), so it imports nothing from :mod:`repro.serve`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Sequence

from repro.util.tables import Table

__all__ = [
    "DEFAULT_OBJECTIVES",
    "Objective",
    "ObjectiveResult",
    "SLOVerdict",
    "emit_metrics",
    "evaluate_slo",
    "parse_objective",
]

#: metrics an objective may target
METRICS = ("p50", "p99", "p999", "shed_rate", "availability")

_OPS = {
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
}

#: baseline-metric slugs; ``availability`` is shortened so burn/breach
#: keys match only the lower-is-better direction tokens
_SLUGS = {"availability": "avail"}

_OBJECTIVE_RE = re.compile(r"^\s*(\w+)\s*(<=|>=|<|>)\s*([0-9.eE+-]+)\s*$")


@dataclass(frozen=True)
class Objective:
    """One declarative objective: ``metric op threshold``."""

    metric: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(
                f"metric must be one of {METRICS}, got {self.metric!r}"
            )
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {tuple(_OPS)}, got {self.op!r}")

    def check(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    @property
    def label(self) -> str:
        return f"{self.metric} {self.op} {self.threshold:g}"

    @property
    def slug(self) -> str:
        return _SLUGS.get(self.metric, self.metric)


def parse_objective(text: str) -> Objective:
    """Parse the CLI form, e.g. ``"p99<=0.25"`` or ``"availability>=0.999"``."""
    m = _OBJECTIVE_RE.match(text)
    if m is None:
        raise ValueError(
            f"objective must look like 'p99<=0.25', got {text!r}"
        )
    return Objective(m.group(1), m.group(2), float(m.group(3)))


#: latency tail bounded, sheds rare, failures rarer — the profile a
#: steady run meets and an overload run (p99 ≈ 0.6 s, shed ≈ 49%) breaks
DEFAULT_OBJECTIVES = (
    Objective("p99", "<=", 0.25),
    Objective("shed_rate", "<=", 0.05),
    Objective("availability", ">=", 0.999),
)


@dataclass(frozen=True)
class ObjectiveResult:
    """One objective evaluated: the aggregate value plus window counts."""

    objective: Objective
    observed: float
    passed: bool
    #: windows that had relevant samples (empty windows don't count)
    windows: int
    breached: int

    @property
    def burn_rate(self) -> float:
        return self.breached / self.windows if self.windows else 0.0


@dataclass(frozen=True)
class SLOVerdict:
    """Typed verdict over every declared objective."""

    results: tuple[ObjectiveResult, ...]
    window: float

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def table(self) -> Table:
        """Render the verdict as a deterministic, CLI-printable table."""
        t = Table(
            ["objective", "observed", "status", "windows", "breached", "burn_rate"],
            title=f"SLO verdict ({self.window:g}s windows)",
            precision=6,
        )
        for r in self.results:
            t.add_row(
                [
                    r.objective.label,
                    round(r.observed, 6),
                    "pass" if r.passed else "FAIL",
                    r.windows,
                    r.breached,
                    round(r.burn_rate, 6),
                ]
            )
        return t

    def metrics(self) -> dict[str, float]:
        """Direction-aware metrics for ``obs.baseline`` gating."""
        out: dict[str, float] = {"slo.ok": 1.0 if self.passed else 0.0}
        for r in self.results:
            slug = r.objective.slug
            out[f"slo.burn_rate_{slug}"] = round(r.burn_rate, 6)
            out[f"slo.windows_breached_{slug}"] = float(r.breached)
            # observed values keep the full metric name so direction
            # tokens apply ("availability" up, "shed"/"seconds" down)
            if r.objective.metric in _QUANTILES:
                out[f"slo.observed_{r.objective.metric}_seconds"] = round(
                    r.observed, 6
                )
            else:
                out[f"slo.observed_{r.objective.metric}"] = round(r.observed, 6)
        return out


def _nearest_rank(sorted_xs: Sequence[float], q: float) -> float:
    """Same order statistic as ``LoadReport.percentile`` (nearest-rank)."""
    n = len(sorted_xs)
    rank = max(0, min(n - 1, math.ceil(q * n) - 1))
    return sorted_xs[rank]


_QUANTILES = {"p50": 0.50, "p99": 0.99, "p999": 0.999}


def _aggregate(report: Any, objective: Objective) -> float:
    metric = objective.metric
    if metric in _QUANTILES:
        return float(report.percentile(_QUANTILES[metric]))
    if metric == "shed_rate":
        return float(report.shed_rate)
    # availability: completed / (completed + failed); rejected requests
    # were never served, so they count against shed_rate, not here
    served = report.completed + report.failed
    return report.completed / served if served else 1.0


def evaluate_slo(
    report: Any,
    objectives: Sequence[Objective] | None = None,
    window: float = 1.0,
) -> SLOVerdict:
    """Evaluate ``objectives`` (default :data:`DEFAULT_OBJECTIVES`).

    The pass/fail per objective comes from the whole-run aggregate; the
    per-window breach counts need the request summary on
    ``report.stages`` (runs without request tracing get aggregate-only
    results with zero windows).  A window with no relevant samples — no
    completions for a latency objective, no arrivals for shed rate — is
    excluded rather than counted as pass or breach.
    """
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    objectives = tuple(objectives) if objectives is not None else DEFAULT_OBJECTIVES
    summary = getattr(report, "stages", None)
    duration = max(float(getattr(report, "duration", 0.0)), window)
    nwin = max(1, math.ceil(duration / window))

    # bucket the parallel trace arrays once
    ok_lat: list[list[float]] = [[] for _ in range(nwin)]
    resolved = [0] * nwin
    completed = [0] * nwin
    failed = [0] * nwin
    sheds = [0] * nwin
    if summary is not None:
        for ts, lat, status in zip(
            summary.resolves, summary.latencies, summary.statuses
        ):
            w = max(0, min(nwin - 1, int(ts / window)))
            resolved[w] += 1
            if status == "completed":
                completed[w] += 1
                ok_lat[w].append(lat)
            elif status == "failed":
                failed[w] += 1
        for ts in summary.sheds:
            w = max(0, min(nwin - 1, int(ts / window)))
            sheds[w] += 1

    results = []
    for objective in objectives:
        observed = _aggregate(report, objective)
        windows = breached = 0
        if summary is not None:
            for w in range(nwin):
                if objective.metric in _QUANTILES:
                    if not ok_lat[w]:
                        continue
                    value = _nearest_rank(
                        sorted(ok_lat[w]), _QUANTILES[objective.metric]
                    )
                elif objective.metric == "shed_rate":
                    denom = sheds[w] + resolved[w]
                    if denom == 0:
                        continue
                    value = sheds[w] / denom
                else:  # availability
                    denom = completed[w] + failed[w]
                    if denom == 0:
                        continue
                    value = completed[w] / denom
                windows += 1
                if not objective.check(value):
                    breached += 1
        results.append(
            ObjectiveResult(
                objective=objective,
                observed=observed,
                passed=objective.check(observed),
                windows=windows,
                breached=breached,
            )
        )
    return SLOVerdict(results=tuple(results), window=window)


def emit_metrics(verdict: SLOVerdict, recorder: Any) -> None:
    """Publish burn-rate counters and the verdict gauge to a recorder.

    Counter/gauge names sanitize to ``repro_slo_*`` in the Prometheus
    exposition.  Safe on a :class:`~repro.obs.trace.NullRecorder`.
    """
    for r in verdict.results:
        slug = r.objective.slug
        recorder.count(f"slo.windows_total_{slug}", r.windows)
        recorder.count(f"slo.windows_breached_{slug}", r.breached)
        recorder.set_gauge(f"slo.burn_rate_{slug}", round(r.burn_rate, 6))
    recorder.set_gauge("slo.ok", 1.0 if verdict.passed else 0.0)
