"""Queryable run-history store: every analyzed run becomes a record.

Every other observability surface in the repo — ``obs.analyze``,
``obs.baseline``, ``obs.slo``, the committed ``BENCH_*.json`` snapshots —
sees exactly one run at a time.  This module is the longitudinal half
(the paper's own method compares cohorts across semesters): each
analyzed, benchmarked or served run is captured as a schema-versioned
:class:`RunRecord` and appended to a sharded, append-only JSONL store
under ``benchmarks/runs/``, where it stays queryable forever.

Three layers:

* :class:`RunRecord` — one run's flat metric map plus its identity
  (experiment id, producing command, backend kind + cores, seed,
  timestamp, revision), verdicts (baseline gate, SLO), per-metric deltas
  from a baseline comparison, the dominant latency stage, and free-form
  tags.  ``to_dict``/``from_dict`` round-trip exactly and reject unknown
  keys (the :class:`~repro.executor.factory.ExecutorConfig` contract).
* :class:`RunStore` — the persistence layer: records are appended as one
  JSON line each to ``shard-NN.jsonl`` files (shard chosen by experiment
  id hash), an in-memory index dedups identical records so re-ingesting
  a run is a byte-level no-op, :meth:`RunStore.query` filters by
  experiment/kind/backend/tag/verdict/time, and :meth:`RunStore.compact`
  rewrites shards time-ordered with duplicates dropped.
* :func:`aggregate` — min/mean/max/p50/p99 reducers over a metric,
  optionally grouped by experiment, kind, backend or revision.

Timestamps and revisions are **injectable**: :func:`use_clock` installs
an ambient ``(clock, revision)`` source — mirroring how the simulator
owns a :class:`~repro.util.stopwatch.ManualClock` — so golden-path runs
stamp records from virtual time and never touch the wall clock or the
git metadata reader.  Outside that scope, :func:`current_stamp` falls
back to ``time.time()`` and a subprocess-free read of ``.git/HEAD``.

:func:`ingest_snapshots` backfills the committed ``BENCH_*.json``
snapshot files as deterministic ``kind="snapshot"`` records (timestamp
0.0), so cross-run timelines start with the existing perf trajectory
instead of empty history; :class:`RunStore.open` runs it at store-open
time.  :func:`emit_metrics` exports fleet-level aggregates as gauges the
Prometheus exporter renders under ``repro_store_*``.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.obs.metrics import Metrics
from repro.util.rng import stable_hash
from repro.util.stopwatch import Clock

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_STORE_DIR",
    "RUN_KINDS",
    "REDUCERS",
    "RunRecord",
    "RunStore",
    "Aggregate",
    "aggregate",
    "reduce_values",
    "use_clock",
    "current_stamp",
    "head_revision",
    "default_store_dir",
    "ingest_snapshots",
    "emit_metrics",
]

#: Version stamped into every record; loaders skip records from a newer
#: schema instead of guessing at their shape.
SCHEMA_VERSION = 1

#: Where records land unless the caller (or ``REPRO_RUNS_STORE``) says otherwise.
DEFAULT_STORE_DIR = Path("benchmarks/runs")

#: How many ``shard-NN.jsonl`` files a store spreads its records over.
DEFAULT_SHARDS = 4

#: Which command produced a record.  ``snapshot`` marks backfilled
#: ``BENCH_*.json`` history; ``bench`` is for harness-level ingestion.
RUN_KINDS = ("analyze", "compare", "serve", "chaos", "bench", "snapshot")

#: The committed perf-trajectory snapshots :func:`ingest_snapshots` reads.
SNAPSHOT_FILES = ("BENCH_pool.json", "BENCH_sim.json", "BENCH_trace.json", "BENCH_serve.json")

#: Reducers :func:`aggregate` understands.
REDUCERS = ("min", "max", "mean", "p50", "p99")


def default_store_dir() -> Path:
    """The ambient store location: ``$REPRO_RUNS_STORE`` or ``benchmarks/runs``."""
    return Path(os.environ.get("REPRO_RUNS_STORE", str(DEFAULT_STORE_DIR)))


# -- injectable timestamps + revisions ---------------------------------------

_ambient = threading.local()


@contextmanager
def use_clock(clock: Clock, revision: str = "sim") -> Iterator[None]:
    """Install an ambient ``(clock, revision)`` stamp source for records.

    Inside the scope, :func:`current_stamp` reads ``clock.now()`` and the
    given revision instead of the wall clock and git — so a simulated run
    (or a test) stamps its records deterministically and double-ingest is
    byte-identical at the store level.  Scopes nest; thread-local, like
    the other ambient installers in the library.
    """
    prev = getattr(_ambient, "stamp", None)
    _ambient.stamp = (clock, str(revision))
    try:
        yield
    finally:
        _ambient.stamp = prev


def current_stamp() -> tuple[float, str]:
    """The ``(timestamp, revision)`` a record created now should carry.

    With :func:`use_clock` installed this is pure virtual time — no
    wall-clock or VCS reads happen on that path.
    """
    stamp = getattr(_ambient, "stamp", None)
    if stamp is not None:
        clock, revision = stamp
        return float(clock.now()), revision
    return time.time(), head_revision()


_rev_cache: dict[str, str] = {}


def head_revision(root: Path | str = ".") -> str:
    """The current git revision (12 hex chars), or ``"unknown"``.

    Reads ``.git/HEAD`` (following one level of ``ref:`` indirection,
    including ``packed-refs``) directly — no subprocess — and caches per
    root, so stamping many records stays cheap.
    """
    key = str(Path(root).resolve())
    cached = _rev_cache.get(key)
    if cached is not None:
        return cached
    rev = "unknown"
    git = Path(root) / ".git"
    try:
        head = (git / "HEAD").read_text().strip()
        if head.startswith("ref:"):
            ref = head.split(None, 1)[1]
            ref_path = git / ref
            if ref_path.exists():
                rev = ref_path.read_text().strip()[:12] or "unknown"
            else:
                packed = git / "packed-refs"
                if packed.exists():
                    for line in packed.read_text().splitlines():
                        if line.endswith(" " + ref):
                            rev = line.split()[0][:12]
                            break
        elif head:
            rev = head[:12]
    except OSError:
        pass
    _rev_cache[key] = rev
    return rev


# -- the record --------------------------------------------------------------


@dataclass(frozen=True)
class RunRecord:
    """One run, flattened: identity, metrics, verdicts, provenance.

    Parameters
    ----------
    exp_id:
        The experiment (or serve-run id like ``serve_overload_sim``) the
        record belongs to; timelines group on this.
    kind:
        Which command produced it — one of :data:`RUN_KINDS`.
    metrics:
        Flat ``name -> float`` map (the ``Metrics.snapshot()`` /
        ``obs.analyze`` baseline-metrics shape); stored sorted.
    backend / cores / seed:
        Execution identity, when the producer knows it.
    timestamp / revision:
        Stamp from :func:`current_stamp` — injectable, see
        :func:`use_clock`.
    verdicts:
        Gate outcomes by gate name, e.g. ``{"baseline": "regression"}``
        or ``{"slo": "pass"}``.
    deltas:
        Per-metric relative movement vs the stored baseline, recorded by
        ``python -m repro compare`` (``0.12`` = 12% up).
    dominant_stage:
        The stage dominating the latency tail of a traced serve run.
    tags:
        Free-form labels (``"backfill"``, ``"regressed:<metric>"`` …).
    """

    exp_id: str
    kind: str
    metrics: dict[str, float]
    backend: str | None = None
    cores: int | None = None
    seed: int | None = None
    timestamp: float = 0.0
    revision: str = "unknown"
    verdicts: dict[str, str] = field(default_factory=dict)
    deltas: dict[str, float] = field(default_factory=dict)
    dominant_stage: str | None = None
    tags: tuple[str, ...] = ()
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not isinstance(self.exp_id, str) or not self.exp_id:
            raise ValueError(f"exp_id must be a non-empty string, got {self.exp_id!r}")
        if self.kind not in RUN_KINDS:
            raise ValueError(f"kind must be one of {RUN_KINDS}, got {self.kind!r}")
        if self.cores is not None and self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.schema != SCHEMA_VERSION:
            raise ValueError(
                f"RunRecord is schema {SCHEMA_VERSION}, got {self.schema!r} "
                f"(newer records are skipped at load time, not parsed)"
            )
        object.__setattr__(
            self, "metrics", dict(sorted((str(k), float(v)) for k, v in self.metrics.items()))
        )
        object.__setattr__(
            self, "verdicts", dict(sorted((str(k), str(v)) for k, v in self.verdicts.items()))
        )
        object.__setattr__(
            self, "deltas", dict(sorted((str(k), float(v)) for k, v in self.deltas.items()))
        )
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))
        object.__setattr__(self, "timestamp", float(self.timestamp))

    def to_dict(self) -> dict[str, Any]:
        """A plain-dict snapshot that :meth:`from_dict` reconstructs exactly."""
        return {
            "schema": self.schema,
            "exp_id": self.exp_id,
            "kind": self.kind,
            "backend": self.backend,
            "cores": self.cores,
            "seed": self.seed,
            "timestamp": self.timestamp,
            "revision": self.revision,
            "metrics": dict(self.metrics),
            "verdicts": dict(self.verdicts),
            "deltas": dict(self.deltas),
            "dominant_stage": self.dominant_stage,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output, rejecting unknown keys."""
        if not isinstance(data, Mapping):
            raise ValueError(f"RunRecord.from_dict expects a mapping, got {type(data).__name__}")
        allowed = {f.name for f in fields(cls)}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(
                f"unknown RunRecord keys {sorted(unknown)}; expected a subset of {sorted(allowed)}"
            )
        missing = {"exp_id", "kind", "metrics"} - set(data)
        if missing:
            raise ValueError(f"RunRecord.from_dict missing required keys {sorted(missing)}")
        kwargs = dict(data)
        kwargs["tags"] = tuple(kwargs.get("tags", ()))
        return cls(**kwargs)

    def to_json(self) -> str:
        """The canonical one-line JSON form the store appends."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def key(self) -> int:
        """Content hash: identical records collide, which is what makes
        re-ingesting the same run an idempotent no-op."""
        return stable_hash("RunRecord", self.to_json())

    @property
    def regressed(self) -> bool:
        """True when any gate verdict on this run is bad."""
        return any(v in ("regression", "violation", "fail") for v in self.verdicts.values())


# -- the store ---------------------------------------------------------------


class RunStore:
    """Sharded, append-only JSONL store of :class:`RunRecord` s.

    Records live one-per-line in ``shard-NN.jsonl`` files under ``root``
    (shard picked by a stable hash of the experiment id, so one
    experiment's history stays in one file).  The whole store is loaded
    into an in-memory index at construction: a content-hash set for
    idempotent appends plus the records in load order (shard filename,
    then line), which is the tie-break for equal timestamps.

    Thread-safe for appends; cheap for the store sizes a repo
    accumulates (thousands of runs, not millions — each record is one
    flat metric map).
    """

    def __init__(self, root: Path | str | None = None, shards: int = DEFAULT_SHARDS) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.root = Path(root) if root is not None else default_store_dir()
        self.shards = shards
        self._lock = threading.RLock()
        self._records: list[RunRecord] = []
        self._keys: set[int] = set()
        #: lines present on disk that did not load (unparseable, wrong
        #: schema, or duplicates) — what :meth:`compact` would clean up.
        self.skipped_lines = 0
        self._load()

    @classmethod
    def open(
        cls,
        root: Path | str | None = None,
        bench_dir: Path | str | None = "benchmarks/reports",
        shards: int = DEFAULT_SHARDS,
    ) -> "RunStore":
        """Open a store and backfill committed ``BENCH_*.json`` history.

        The backfill (:func:`ingest_snapshots`) is deterministic and
        deduped, so opening is idempotent: the first open seeds the
        timeline with the committed perf trajectory, every later open is
        a byte-level no-op.  Pass ``bench_dir=None`` to skip it.
        """
        store = cls(root, shards=shards)
        if bench_dir is not None:
            ingest_snapshots(store, bench_dir)
        return store

    # -- persistence ---------------------------------------------------------

    def shard_path(self, exp_id: str) -> Path:
        """Which shard file records for ``exp_id`` land in."""
        return self.root / f"shard-{stable_hash('runstore.shard', exp_id) % self.shards:02d}.jsonl"

    def _load(self) -> None:
        self._records = []
        self._keys = set()
        self.skipped_lines = 0
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("shard-*.jsonl")):
            for line in path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    if not isinstance(doc, dict) or int(doc.get("schema", 0)) != SCHEMA_VERSION:
                        self.skipped_lines += 1
                        continue
                    rec = RunRecord.from_dict(doc)
                except (ValueError, KeyError, TypeError):
                    self.skipped_lines += 1
                    continue
                if rec.key in self._keys:
                    self.skipped_lines += 1
                    continue
                self._keys.add(rec.key)
                self._records.append(rec)

    def append(self, record: RunRecord) -> bool:
        """Append one record; returns False (and writes nothing) when an
        identical record is already stored — ingest is idempotent."""
        with self._lock:
            if record.key in self._keys:
                return False
            self.root.mkdir(parents=True, exist_ok=True)
            with self.shard_path(record.exp_id).open("a", encoding="utf-8") as fh:
                fh.write(record.to_json() + "\n")
            self._keys.add(record.key)
            self._records.append(record)
            return True

    def record(self, exp_id: str, kind: str, metrics: Mapping[str, float], **kwargs: Any) -> RunRecord:
        """Build a record stamped via :func:`current_stamp` and append it.

        Explicit ``timestamp=``/``revision=`` keyword arguments override
        the ambient stamp.  Returns the record either way (appended or
        deduped)."""
        ts, rev = current_stamp()
        kwargs.setdefault("timestamp", ts)
        kwargs.setdefault("revision", rev)
        rec = RunRecord(exp_id=exp_id, kind=kind, metrics=dict(metrics), **kwargs)
        self.append(rec)
        return rec

    def add(self, record: RunRecord) -> RunRecord:
        """Stamp an unstamped record via :func:`current_stamp` and append.

        Producers like ``LoadReport.run_record`` build records without
        identity-of-time (timestamp 0.0, revision ``unknown``); this is
        where that identity gets filled in.  Records that already carry
        a stamp pass through untouched.
        """
        if record.timestamp == 0.0 and record.revision == "unknown":
            ts, rev = current_stamp()
            record = replace(record, timestamp=ts, revision=rev)
        self.append(record)
        return record

    def compact(self) -> int:
        """Rewrite every shard time-ordered with duplicate, unparseable
        and foreign-schema lines dropped; returns the lines removed.

        The in-memory index is authoritative: what loaded is what
        survives.  Use after hand-editing shards or after concurrent
        writers raced an append."""
        with self._lock:
            raw_lines = 0
            if self.root.exists():
                for path in self.root.glob("shard-*.jsonl"):
                    raw_lines += sum(1 for ln in path.read_text().splitlines() if ln.strip())
            by_shard: dict[Path, list[RunRecord]] = {}
            for rec in self._ordered():
                by_shard.setdefault(self.shard_path(rec.exp_id), []).append(rec)
            if self.root.exists():
                for path in self.root.glob("shard-*.jsonl"):
                    if path not in by_shard:
                        path.unlink()
            for path, recs in by_shard.items():
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text("".join(r.to_json() + "\n" for r in recs), encoding="utf-8")
            self.skipped_lines = 0
            return raw_lines - len(self._records)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._ordered())

    def _ordered(self) -> list[RunRecord]:
        """Records sorted by timestamp, load/append order breaking ties."""
        return [
            rec
            for _, rec in sorted(
                enumerate(self._records), key=lambda pair: (pair[1].timestamp, pair[0])
            )
        ]

    def experiments(self) -> list[str]:
        """Every experiment id with at least one record, sorted."""
        return sorted({rec.exp_id for rec in self._records})

    def query(
        self,
        exp: str | None = None,
        kind: str | None = None,
        backend: str | None = None,
        tag: str | None = None,
        verdict: str | None = None,
        since: float | None = None,
        limit: int | None = None,
    ) -> list[RunRecord]:
        """Time-ordered records matching every given filter.

        ``verdict`` matches any gate (``"regression"`` finds runs where
        *some* gate said regression); ``since`` is an inclusive timestamp
        lower bound; ``limit`` keeps the **newest** N matches.
        """
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        out = []
        for rec in self._ordered():
            if exp is not None and rec.exp_id != exp:
                continue
            if kind is not None and rec.kind != kind:
                continue
            if backend is not None and rec.backend != backend:
                continue
            if tag is not None and tag not in rec.tags:
                continue
            if verdict is not None and verdict not in rec.verdicts.values():
                continue
            if since is not None and rec.timestamp < since:
                continue
            out.append(rec)
        if limit is not None:
            out = out[-limit:]
        return out

    def __repr__(self) -> str:
        return f"RunStore({str(self.root)!r}, {len(self._records)} record(s), {self.shards} shard(s))"


# -- aggregation -------------------------------------------------------------


def reduce_values(values: Sequence[float], reducer: str) -> float:
    """Apply one named reducer; percentiles are exact nearest-rank."""
    if reducer not in REDUCERS:
        raise ValueError(f"reducer must be one of {REDUCERS}, got {reducer!r}")
    if not values:
        raise ValueError("cannot reduce an empty value list")
    xs = sorted(float(v) for v in values)
    if reducer == "min":
        return xs[0]
    if reducer == "max":
        return xs[-1]
    if reducer == "mean":
        return sum(xs) / len(xs)
    q = 0.50 if reducer == "p50" else 0.99
    rank = max(0, min(len(xs) - 1, math.ceil(q * len(xs)) - 1))
    return xs[rank]


@dataclass(frozen=True)
class Aggregate:
    """One group's reduced value: ``n`` runs contributed ``value``."""

    group: str
    n: int
    value: float


#: ``group_by`` key -> how to label a record's group.
_GROUPERS = {
    "exp": lambda r: r.exp_id,
    "kind": lambda r: r.kind,
    "backend": lambda r: r.backend if r.backend is not None else "-",
    "revision": lambda r: r.revision,
}


def aggregate(
    records: Iterable[RunRecord],
    metric: str,
    reduce: str = "mean",
    group_by: str | None = None,
) -> list[Aggregate]:
    """Reduce one metric over many records, optionally grouped.

    Records that never measured ``metric`` are skipped (an untraced run
    does not drag a p99 to zero).  Groups come back sorted by label;
    without ``group_by`` the single group is ``"all"``.
    """
    if group_by is not None and group_by not in _GROUPERS:
        raise ValueError(f"group_by must be one of {sorted(_GROUPERS)}, got {group_by!r}")
    grouper = _GROUPERS[group_by] if group_by is not None else (lambda r: "all")
    groups: dict[str, list[float]] = {}
    for rec in records:
        value = rec.metrics.get(metric)
        if value is None:
            continue
        groups.setdefault(grouper(rec), []).append(value)
    return [
        Aggregate(group=name, n=len(vals), value=reduce_values(vals, reduce))
        for name, vals in sorted(groups.items())
    ]


# -- BENCH_*.json backfill ---------------------------------------------------


def ingest_snapshots(
    store: RunStore,
    bench_dir: Path | str = "benchmarks/reports",
    files: Sequence[str] = SNAPSHOT_FILES,
) -> int:
    """Backfill committed ``BENCH_*.json`` snapshots as run records.

    Each experiment entry in each snapshot file becomes one
    ``kind="snapshot"`` record with a **deterministic** stamp (timestamp
    0.0, revision ``snapshot:<file>``, tag ``backfill``) — so the
    backfill sorts before any live run, re-running it dedups to a no-op,
    and timelines start with the committed perf trajectory.  Returns how
    many records were actually added.
    """
    added = 0
    for name in files:
        path = Path(bench_dir) / name
        if not path.exists():
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        experiments = doc.get("experiments", {}) if isinstance(doc, dict) else {}
        for exp_id, metrics in sorted(experiments.items()):
            if not isinstance(metrics, dict):
                continue
            rec = RunRecord(
                exp_id=exp_id,
                kind="snapshot",
                metrics={k: float(v) for k, v in metrics.items()},
                timestamp=0.0,
                revision=f"snapshot:{name}",
                tags=("backfill",),
            )
            if store.append(rec):
                added += 1
    return added


# -- Prometheus export -------------------------------------------------------


def emit_metrics(store: RunStore, metrics: Metrics) -> None:
    """Set fleet-level store gauges on a :class:`Metrics` registry.

    The exporter's sanitizer turns the dotted names into
    ``repro_store_*`` series: total runs, distinct experiments, per-kind
    counts, runs whose gates failed, and the newest stamp — enough for a
    dashboard to alert on "a regression landed" without parsing JSONL.
    """
    records = list(store)
    metrics.gauge("store.runs").set(float(len(records)))
    metrics.gauge("store.experiments").set(float(len(store.experiments())))
    metrics.gauge("store.shards").set(float(store.shards))
    by_kind: dict[str, int] = {}
    for rec in records:
        by_kind[rec.kind] = by_kind.get(rec.kind, 0) + 1
    for kind in RUN_KINDS:
        metrics.gauge(f"store.runs_{kind}").set(float(by_kind.get(kind, 0)))
    metrics.gauge("store.regressed_runs").set(
        float(sum(1 for rec in records if rec.regressed))
    )
    metrics.gauge("store.latest_timestamp").set(
        max((rec.timestamp for rec in records), default=0.0)
    )
