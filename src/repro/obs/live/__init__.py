"""Live observability: watch a parallel run *while it runs*.

The rest of :mod:`repro.obs` is post-hoc — a run finishes, then
``analyze``/``report`` explain it.  This subpackage is the during-the-run
half, mirroring how production systems (and the paper's lab machines)
are actually observed:

* :mod:`~repro.obs.live.registry` — a process-wide directory of worker
  threads (thread ident → worker id, current task, idle/running/blocked
  state) plus pull-gauges for queue depths.  Executors register
  unconditionally; the hot-path cost is plain attribute writes.
* :mod:`~repro.obs.live.sampler` — a sampling profiler:
  ``sys._current_frames()`` snapshots attributed to each worker's
  in-flight task and state, folded into Brendan-Gregg collapsed-stack
  form (:class:`Profile`, :func:`fold`).
* :mod:`~repro.obs.live.flame` — flamegraph SVG/HTML and hotspot-table
  rendering of a folded profile (``python -m repro flame``).
* :mod:`~repro.obs.live.export` — Prometheus text exposition of metrics
  and live gauges, a ``/metrics`` + ``/healthz`` HTTP thread, and a
  periodic JSONL snapshot writer.
* :mod:`~repro.obs.live.dashboard` — the ``python -m repro top`` TTY
  view: worker states, queue depth, throughput, event rates.

Live sampling is wall-clock and deliberately stays out of
:mod:`repro.obs.baseline` gating: nothing here writes into a
:class:`~repro.obs.metrics.Metrics` registry, so with the sampler off,
bench reports and baseline comparisons are byte-identical.
"""

from repro.obs.live.dashboard import Dashboard
from repro.obs.live.export import MetricsServer, SnapshotWriter, prometheus_text
from repro.obs.live.flame import (
    FlameNode,
    build_tree,
    render_flame_html,
    render_flame_svg,
    render_hotspots_text,
)
from repro.obs.live.registry import (
    BLOCKED,
    IDLE,
    REGISTRY,
    RUNNING,
    STATES,
    GaugeHandle,
    WorkerHandle,
    WorkerRegistry,
    attribute_task,
    current_handle,
)
from repro.obs.live.sampler import (
    HotspotRow,
    Profile,
    Sample,
    SamplingProfiler,
    current_profiler,
    fold,
    use_profiler,
)

__all__ = [
    # registry
    "IDLE",
    "RUNNING",
    "BLOCKED",
    "STATES",
    "WorkerHandle",
    "GaugeHandle",
    "WorkerRegistry",
    "REGISTRY",
    "current_handle",
    "attribute_task",
    # sampler
    "Sample",
    "HotspotRow",
    "Profile",
    "fold",
    "SamplingProfiler",
    "current_profiler",
    "use_profiler",
    # flame
    "FlameNode",
    "build_tree",
    "render_flame_svg",
    "render_flame_html",
    "render_hotspots_text",
    # export
    "prometheus_text",
    "MetricsServer",
    "SnapshotWriter",
    # dashboard
    "Dashboard",
]
