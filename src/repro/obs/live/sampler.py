"""Sampling profiler: periodic stack snapshots of live executor workers.

A :class:`SamplingProfiler` thread wakes at a configurable rate, calls
``sys._current_frames()``, and — for every thread registered in the
:class:`~repro.obs.live.registry.WorkerRegistry` — walks its Python
stack and records one :class:`Sample` attributed to that worker's
in-flight task and live state (running / idle-on-queue /
blocked-in-lock).  Samples fold incrementally into a :class:`Profile`:
a counter keyed by ``(state, task, stack)`` in Brendan Gregg
collapsed-stack form, so memory is bounded by the number of *distinct*
stacks, not the sampling duration.

Folding (:func:`fold`) is a pure function of the samples, which is how
the test suite pins its behaviour deterministically — synthetic samples
in, exact collapsed counts out — while the wall-clock sampling loop
itself stays out of any golden or baseline gate.

The profiler measures its own cost: each pass's duration accumulates in
:attr:`SamplingProfiler.overhead_seconds`, exported alongside the other
live gauges so "how much is watching costing me?" is itself observable.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.obs.live.registry import REGISTRY, WorkerRegistry

__all__ = [
    "Sample",
    "HotspotRow",
    "Profile",
    "fold",
    "SamplingProfiler",
    "current_profiler",
    "use_profiler",
]

#: Stack frames deeper than this are truncated (root side preserved).
MAX_STACK_DEPTH = 128


@dataclass(frozen=True)
class Sample:
    """One observation of one worker: who, doing what, with which stack.

    ``stack`` is root-first (``main`` outermost, the sampled leaf last),
    each frame rendered as ``module:qualname``.
    """

    worker: str
    role: str
    state: str
    task: str
    stack: tuple[str, ...]


@dataclass(frozen=True)
class HotspotRow:
    """Per-frame sample attribution: ``self`` = samples with the frame on
    top of the stack, ``cum`` = samples with it anywhere on the stack
    (counted once per sample, so recursion does not inflate it)."""

    frame: str
    self_samples: int
    cum_samples: int


class Profile:
    """Folded samples: collapsed-stack counts plus attribution tallies."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stacks: Counter = Counter()  # (state, task, stack) -> samples
        self._by_task: Counter = Counter()
        self._by_state: Counter = Counter()
        self._by_worker: Counter = Counter()
        self.total_samples = 0

    def add(self, sample: Sample, n: int = 1) -> None:
        """Fold one sample in (``n`` identical observations at once)."""
        if n < 1:
            raise ValueError(f"sample count must be >= 1, got {n}")
        with self._lock:
            self._stacks[(sample.state, sample.task, sample.stack)] += n
            self._by_task[sample.task] += n
            self._by_state[sample.state] += n
            self._by_worker[sample.worker] += n
            self.total_samples += n

    def merge(self, other: "Profile") -> None:
        """Fold another profile's counts into this one."""
        with other._lock:
            stacks = dict(other._stacks)
            tasks = dict(other._by_task)
            states = dict(other._by_state)
            workers = dict(other._by_worker)
            total = other.total_samples
        with self._lock:
            self._stacks.update(stacks)
            self._by_task.update(tasks)
            self._by_state.update(states)
            self._by_worker.update(workers)
            self.total_samples += total

    # -- views ---------------------------------------------------------------

    def stacks(self) -> dict[tuple[str, str, tuple[str, ...]], int]:
        """``(state, task, stack) -> samples`` snapshot."""
        with self._lock:
            return dict(self._stacks)

    def by_task(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._by_task.items()))

    def by_state(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._by_state.items()))

    def by_worker(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._by_worker.items()))

    def collapsed(self, attribution: bool = True) -> list[str]:
        """Brendan Gregg collapsed-stack lines, ``frame;frame;... count``.

        With ``attribution`` (the default) each stack is rooted at two
        synthetic frames — ``state:<state>`` then ``task:<task>`` — so a
        flamegraph groups first by live state, then by task type.  Lines
        are sorted, so the output is deterministic for a given profile.
        """
        out = []
        for (state, task, stack), count in self.stacks().items():
            frames = (f"state:{state}", f"task:{task}") + stack if attribution else stack
            out.append(f"{';'.join(frames)} {count}")
        return sorted(out)

    def collapsed_text(self, attribution: bool = True) -> str:
        """The collapsed lines as one newline-terminated blob (the input
        format of every external flamegraph tool)."""
        lines = self.collapsed(attribution)
        return "\n".join(lines) + ("\n" if lines else "")

    def hotspots(self) -> list[HotspotRow]:
        """Per-frame self/cumulative table over *real* stack frames
        (synthetic attribution roots excluded), hottest-self first; ties
        break by cumulative count then name, so the order is stable."""
        self_c: Counter = Counter()
        cum_c: Counter = Counter()
        for (_state, _task, stack), count in self.stacks().items():
            if stack:
                self_c[stack[-1]] += count
                for frame in set(stack):
                    cum_c[frame] += count
        rows = [HotspotRow(f, self_c.get(f, 0), cum_c[f]) for f in cum_c]
        rows.sort(key=lambda r: (-r.self_samples, -r.cum_samples, r.frame))
        return rows

    def task_hotspots(self) -> dict[str, list[HotspotRow]]:
        """Per-task-type hotspot tables (same ordering as :meth:`hotspots`)."""
        per_task: dict[str, tuple[Counter, Counter]] = {}
        for (_state, task, stack), count in self.stacks().items():
            if not stack:
                continue
            self_c, cum_c = per_task.setdefault(task, (Counter(), Counter()))
            self_c[stack[-1]] += count
            for frame in set(stack):
                cum_c[frame] += count
        out: dict[str, list[HotspotRow]] = {}
        for task in sorted(per_task):
            self_c, cum_c = per_task[task]
            rows = [HotspotRow(f, self_c.get(f, 0), cum_c[f]) for f in cum_c]
            rows.sort(key=lambda r: (-r.self_samples, -r.cum_samples, r.frame))
            out[task] = rows
        return out

    def __repr__(self) -> str:
        return f"Profile(samples={self.total_samples}, stacks={len(self.stacks())})"


def fold(samples: Iterable[Sample]) -> Profile:
    """Fold an iterable of samples into a fresh :class:`Profile`.

    Pure and deterministic: the property the tests pin is that the
    folded collapsed-stack counts always sum to the number of samples
    folded, whatever the stacks look like.
    """
    profile = Profile()
    for sample in samples:
        profile.add(sample)
    return profile


def _frame_name(frame: Any) -> str:
    """``module:qualname`` for one frame (qualname on 3.11+, name before)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    func = getattr(code, "co_qualname", None) or code.co_name
    return f"{module}:{func}"


def walk_stack(frame: Any, max_depth: int = MAX_STACK_DEPTH) -> tuple[str, ...]:
    """Render one thread's stack root-first, truncating deep leaf frames."""
    names: list[str] = []
    while frame is not None:
        names.append(_frame_name(frame))
        frame = frame.f_back
    names.reverse()  # collected leaf-first
    if len(names) > max_depth:
        names = names[:max_depth]
    return tuple(names)


class SamplingProfiler:
    """Background thread snapshotting all registered workers' stacks.

    Parameters
    ----------
    interval:
        Seconds between sampling passes (wall clock).  5 ms default —
        coarse enough to stay out of the way, fine enough that a
        hundred-millisecond experiment still yields a usable graph.
    registry:
        Worker directory to sample; defaults to the process-wide
        :data:`~repro.obs.live.registry.REGISTRY`.
    include_idle:
        Record samples of idle/blocked workers too (the default — their
        wait stacks are exactly what "why is nothing running?" needs).
        ``False`` samples only ``running`` workers.
    """

    def __init__(
        self,
        interval: float = 0.005,
        registry: WorkerRegistry | None = None,
        include_idle: bool = True,
        max_stack_depth: int = MAX_STACK_DEPTH,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if max_stack_depth < 1:
            raise ValueError(f"max_stack_depth must be >= 1, got {max_stack_depth}")
        self.interval = interval
        self.registry = registry if registry is not None else REGISTRY
        self.include_idle = include_idle
        self.max_stack_depth = max_stack_depth
        self._profile = Profile()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.passes = 0
        self.overhead_seconds = 0.0

    # -- one pass (public: deterministic tests drive it directly) ------------

    def sample_once(self) -> int:
        """Take one snapshot of every registered worker; returns how many
        samples were folded in this pass."""
        t0 = time.perf_counter()
        frames = sys._current_frames()
        own = threading.get_ident()
        taken = 0
        for handle in self.registry.workers():
            if handle.ident == own:
                continue  # never sample the sampler
            frame = frames.get(handle.ident)
            if frame is None:
                continue  # thread exited between registry and frames snapshot
            state, task = handle.state, handle.task_name
            if not self.include_idle and state != "running":
                continue
            self._profile.add(
                Sample(
                    worker=handle.name,
                    role=handle.role,
                    state=state,
                    task=task or "-",
                    stack=walk_stack(frame, self.max_stack_depth),
                )
            )
            taken += 1
        with self._lock:
            self.passes += 1
            self.overhead_seconds += time.perf_counter() - t0
        return taken

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, name="obs-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling; idempotent.  The folded profile stays readable."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- results -------------------------------------------------------------

    def profile(self) -> Profile:
        """The folded profile (live object; safe to read while sampling)."""
        return self._profile

    def overhead(self) -> dict[str, float]:
        """Self-cost accounting: passes taken and seconds spent sampling."""
        with self._lock:
            return {"passes": float(self.passes), "seconds": self.overhead_seconds}

    def __repr__(self) -> str:
        running = self._thread is not None
        return (
            f"SamplingProfiler(interval={self.interval}, running={running}, "
            f"samples={self._profile.total_samples})"
        )


_ambient = threading.local()


def current_profiler() -> SamplingProfiler | None:
    """The ambient profiler installed by :func:`use_profiler` (or None)."""
    return getattr(_ambient, "profiler", None)


@contextmanager
def use_profiler(profiler: SamplingProfiler) -> Iterator[SamplingProfiler]:
    """Install ``profiler`` ambiently for this thread, so the bench
    harness can attach the folded profile to an
    :class:`~repro.bench.harness.ExperimentResult` the same way traced
    runs gain ``.metrics``/``.analysis``."""
    prev = getattr(_ambient, "profiler", None)
    _ambient.profiler = profiler
    try:
        yield profiler
    finally:
        _ambient.profiler = prev
