"""Flamegraph rendering for folded sample profiles.

Turns a :class:`~repro.obs.live.sampler.Profile` into:

* :func:`render_flame_html` — a self-contained HTML page embedding an
  SVG flamegraph (width ∝ samples, one row per stack depth), the
  per-task-type self/cumulative hotspot tables, and a state/task sample
  breakdown.  Inline CSS + SVG only, no JavaScript, same visual language
  (CSS custom properties, ``prefers-color-scheme`` dark mode) as
  :mod:`repro.obs.report`.
* :func:`render_hotspots_text` — a deterministic terminal summary built
  on :class:`repro.util.tables.Table` for ``python -m repro flame``.

Everything here is a pure function of the profile: same folded counts
in, same bytes out.  Frame colors hash through ``zlib.crc32`` (not
``hash()``, which is salted per process) so even the fill attributes are
reproducible, which is what lets the test suite pin rendering on
injected synthetic samples.
"""

from __future__ import annotations

import html
import zlib
from dataclasses import dataclass, field

from repro.obs.live.sampler import Profile
from repro.obs.report import _CSS as _REPORT_CSS
from repro.util.tables import Table

__all__ = ["FlameNode", "build_tree", "render_flame_svg", "render_flame_html", "render_hotspots_text"]

#: Hotspot tables show at most this many frames per task type.
MAX_HOTSPOT_ROWS = 20

#: Frames narrower than this many pixels are drawn but unlabeled.
MIN_LABEL_WIDTH = 40

_ROW_H = 17
_CHAR_W = 6.4  # ~11px monospace advance; labels are clipped to frame width


@dataclass
class FlameNode:
    """One merged frame in the flame tree.

    ``value`` counts every sample passing through this frame;
    ``self_value`` counts samples that *end* here (the frame was on top).
    Children merge by frame name, preserving the collapsed-stack
    semantics: a node's value equals its self value plus its children's.
    """

    name: str
    value: int = 0
    self_value: int = 0
    children: dict[str, "FlameNode"] = field(default_factory=dict)

    def child(self, name: str) -> "FlameNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = FlameNode(name)
        return node

    def depth(self) -> int:
        """Rows needed to draw this subtree (0 for a childless root)."""
        if not self.children:
            return 0
        return 1 + max(c.depth() for c in self.children.values())


def build_tree(profile: Profile, attribution: bool = True) -> FlameNode:
    """Merge a profile's folded stacks into a flame tree rooted at ``all``.

    With ``attribution`` (matching :meth:`Profile.collapsed`), stacks
    gain synthetic ``state:`` / ``task:`` root frames so the graph
    groups by live state then task type before real code frames.
    """
    root = FlameNode("all")
    for (state, task, stack), count in profile.stacks().items():
        frames = (f"state:{state}", f"task:{task}") + stack if attribution else stack
        root.value += count
        node = root
        for frame in frames:
            node = node.child(frame)
            node.value += count
        node.self_value += count
    return root


def _frame_color(name: str) -> str:
    """Deterministic warm hue per frame name (crc32, not salted hash).

    Synthetic attribution frames get fixed cool hues so the state/task
    rows read as chrome, not code.
    """
    if name.startswith("state:"):
        return "hsl(210, 42%, 52%)"
    if name.startswith("task:"):
        return "hsl(174, 38%, 44%)"
    h = zlib.crc32(name.encode("utf-8", "replace"))
    hue = h % 50  # 0..49: red through orange — the classic flame palette
    sat = 62 + (h >> 8) % 21  # 62..82%
    lum = 52 + (h >> 16) % 11  # 52..62%
    return f"hsl({hue}, {sat}%, {lum}%)"


def render_flame_svg(root: FlameNode, width: int = 960) -> str:
    """The flamegraph itself: one inline SVG, root row at the top.

    Frame width is proportional to sample count; children sit below
    their parent, sorted by name so layout is deterministic.  Hovering a
    frame shows name, samples, and share in a ``<title>`` tooltip.
    """
    if root.value <= 0:
        return '<p class="note">no samples collected.</p>'
    depth = root.depth()
    height = (depth + 1) * _ROW_H + 4
    total = root.value
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'aria-label="Flamegraph of {total} stack samples" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]

    def emit(node: FlameNode, x: float, y: int, w: float) -> None:
        share = node.value / total
        tip = f"{node.name}\n{node.value} samples ({share:.1%})"
        label = ""
        if w >= MIN_LABEL_WIDTH:
            text = node.name
            max_chars = int((w - 6) / _CHAR_W)
            if len(text) > max_chars:
                text = text[: max(max_chars - 1, 1)] + "…"
            label = (
                f'<text x="{x + 3:.2f}" y="{y + _ROW_H - 5}" font-size="11" '
                f'fill="#1a1a19">{html.escape(text)}</text>'
            )
        parts.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" height="{_ROW_H - 1}" '
            f'rx="1" fill="{_frame_color(node.name)}">'
            f"<title>{html.escape(tip)}</title></rect>{label}</g>"
        )
        cx = x
        for name in sorted(node.children):
            child = node.children[name]
            cw = w * child.value / node.value
            emit(child, cx, y + _ROW_H, cw)
            cx += cw

    emit(root, 0.0, 2, float(width))
    parts.append("</svg>")
    return f'<div class="panel">{"".join(parts)}</div>'


def _hotspot_html_rows(profile: Profile) -> list[str]:
    """Per-task-type hotspot tables as HTML sections."""
    total = max(profile.total_samples, 1)
    sections = []
    for task, rows in profile.task_hotspots().items():
        shown = rows[:MAX_HOTSPOT_ROWS]
        body = "".join(
            "<tr>"
            f"<td>{html.escape(r.frame)}</td>"
            f'<td class="num">{r.self_samples}</td>'
            f'<td class="num">{r.self_samples / total:.1%}</td>'
            f'<td class="num">{r.cum_samples}</td>'
            f'<td class="num">{r.cum_samples / total:.1%}</td>'
            "</tr>"
            for r in shown
        )
        note = ""
        if len(rows) > len(shown):
            note = f'<p class="note">showing the top {len(shown)} of {len(rows)} frames.</p>'
        sections.append(
            f"<h2>Hotspots — task {html.escape(task)}</h2>"
            '<div class="panel"><table><thead><tr><th>frame</th>'
            '<th class="num">self</th><th class="num">self %</th>'
            '<th class="num">cum</th><th class="num">cum %</th></tr></thead>'
            f"<tbody>{body}</tbody></table></div>{note}"
        )
    return sections


def render_flame_html(profile: Profile, title: str = "flamegraph") -> str:
    """Self-contained flamegraph page: tiles, the SVG, hotspot tables."""
    total = profile.total_samples
    by_state = profile.by_state()
    tiles = [
        f'<div class="tile"><div class="v">{total}</div><div class="k">samples</div></div>',
        f'<div class="tile"><div class="v">{len(profile.stacks())}</div>'
        '<div class="k">distinct stacks</div></div>',
    ]
    for state in ("running", "idle", "blocked"):
        n = by_state.get(state, 0)
        if n:
            share = n / max(total, 1)
            tiles.append(
                f'<div class="tile"><div class="v">{share:.0%}</div>'
                f'<div class="k">{html.escape(state)} ({n})</div></div>'
            )

    sections = [f'<section class="tiles">{"".join(tiles)}</section>']
    sections.append("<h2>Flamegraph</h2>" + render_flame_svg(build_tree(profile)))

    by_task = profile.by_task()
    if by_task:
        body = "".join(
            f'<tr><td>{html.escape(task)}</td><td class="num">{n}</td>'
            f'<td class="num">{n / max(total, 1):.1%}</td></tr>'
            for task, n in sorted(by_task.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        sections.append(
            "<h2>Samples by task</h2>"
            '<div class="panel"><table><thead><tr><th>task</th>'
            '<th class="num">samples</th><th class="num">share</th></tr></thead>'
            f"<tbody>{body}</tbody></table></div>"
        )
    sections.extend(_hotspot_html_rows(profile))

    subtitle = f"{total} samples · {len(profile.stacks())} distinct stacks"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8"/>\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>\n{_REPORT_CSS}</style>\n</head>\n"
        '<body class="viz-root">\n<main>\n'
        f"<h1>{html.escape(title)}</h1>\n"
        f'<p class="sub">{html.escape(subtitle)}</p>\n'
        + "\n".join(sections)
        + "\n</main>\n</body>\n</html>\n"
    )


def render_hotspots_text(profile: Profile) -> str:
    """Deterministic terminal summary: sample breakdown plus per-task
    hotspot tables (the ``python -m repro flame`` stdout)."""
    out = [
        f"profile: {profile.total_samples} samples, {len(profile.stacks())} distinct stacks"
    ]
    by_state = profile.by_state()
    if by_state:
        out.append(
            "states: " + ", ".join(f"{s} {n}" for s, n in by_state.items())
        )
    by_task = profile.by_task()
    if by_task:
        t = Table(["task", "samples", "share"], title="samples by task", precision=3)
        total = max(profile.total_samples, 1)
        for task, n in sorted(by_task.items(), key=lambda kv: (-kv[1], kv[0])):
            t.add_row([task, n, round(n / total, 3)])
        out.append("")
        out.append(t.render())
    for task, rows in profile.task_hotspots().items():
        t = Table(["frame", "self", "cum"], title=f"hotspots: {task}")
        for r in rows[:MAX_HOTSPOT_ROWS]:
            t.add_row([r.frame, r.self_samples, r.cum_samples])
        out.append("")
        out.append(t.render())
    return "\n".join(out).rstrip() + "\n"
