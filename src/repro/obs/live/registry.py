"""Process-wide registry of executor workers for live observation.

Post-hoc tracing (:mod:`repro.obs.trace`) answers "what happened";
this module answers "what is happening *now*".  Every real thread that
executes work — thread-pool workers, the GUI event-dispatch thread, the
driver thread a CLI run registers — announces itself here with a
:class:`WorkerHandle` and keeps three facts current: its *state*
(``idle`` on the queue, ``running`` a task, ``blocked`` in a lock or
join), the *task* it is executing, and *since when*.  The sampling
profiler (:mod:`repro.obs.live.sampler`) joins those facts with
``sys._current_frames()`` to attribute each stack sample; the metrics
exporter and the ``top`` dashboard read the same registry for live
gauges.

Hot-path cost is deliberately tiny: state transitions are plain
attribute writes (GIL-atomic, no lock), and queue depths are *pull*
gauges — executors register a callable at construction and pay nothing
per push/pop; the depth is computed at scrape time.

:data:`REGISTRY` is the module-wide default instance.  Executors use it
unconditionally: registration is cheap, and a registry nobody samples
is just a few idle attribute writes per task.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator

__all__ = [
    "IDLE",
    "RUNNING",
    "BLOCKED",
    "STATES",
    "WorkerHandle",
    "GaugeHandle",
    "WorkerRegistry",
    "REGISTRY",
    "current_handle",
    "attribute_task",
]

#: The three live worker states the sampler distinguishes.
IDLE = "idle"
RUNNING = "running"
BLOCKED = "blocked"
STATES = (IDLE, RUNNING, BLOCKED)

_thread = threading.local()


def current_handle() -> "WorkerHandle | None":
    """The :class:`WorkerHandle` registered *by this thread*, if any."""
    return getattr(_thread, "handle", None)


class _BlockedScope:
    """Context manager marking a handle blocked for the duration."""

    __slots__ = ("_handle", "_detail", "_prev")

    def __init__(self, handle: "WorkerHandle", detail: str) -> None:
        self._handle = handle
        self._detail = detail

    def __enter__(self) -> None:
        h = self._handle
        self._prev = (h.state, h.detail, h.since)
        h.detail = self._detail
        h.since = time.monotonic()
        h.state = BLOCKED

    def __exit__(self, *exc: Any) -> None:
        h = self._handle
        h.state, h.detail, h.since = self._prev


class _TaskScope:
    """Context manager marking a handle as running one task."""

    __slots__ = ("_handle", "_name", "_task_id", "_prev")

    def __init__(self, handle: "WorkerHandle", name: str, task_id: int) -> None:
        self._handle = handle
        self._name = name
        self._task_id = task_id

    def __enter__(self) -> None:
        self._prev = self._handle.begin_task(self._name, self._task_id)

    def __exit__(self, *exc: Any) -> None:
        self._handle.end_task(self._prev)


class WorkerHandle:
    """One registered worker thread's live state.

    Mutations are single attribute writes on purpose: a handle is
    written only by its own thread and read (racily, by design) by the
    sampler/dashboard — a momentarily stale state is exactly as accurate
    as sampling can ever be, and the hot path stays lock-free.
    """

    __slots__ = (
        "wid", "name", "role", "ident",
        "state", "task_name", "task_id", "detail",
        "since", "tasks_done", "registered_at",
    )

    def __init__(self, wid: int, name: str, role: str, ident: int) -> None:
        self.wid = wid
        self.name = name
        self.role = role
        self.ident = ident
        self.state = IDLE
        self.task_name = ""
        self.task_id = 0
        self.detail = ""
        now = time.monotonic()
        self.since = now
        self.registered_at = now
        self.tasks_done = 0

    # -- transitions (called by the worker's own thread) ---------------------

    def begin_task(self, name: str, task_id: int = 0) -> tuple:
        """Enter ``running``; returns the previous scope for :meth:`end_task`.

        A zero ``task_id`` inherits the current one, so an inner
        attribution wrapper (e.g. the ptask runtime's) refines the task
        *name* without erasing the id the executor already set.
        """
        prev = (self.state, self.task_name, self.task_id, self.since)
        self.task_name = name
        if task_id:
            self.task_id = task_id
        self.since = time.monotonic()
        self.state = RUNNING
        return prev

    def end_task(self, prev: tuple) -> None:
        """Leave the task begun by the matching :meth:`begin_task`."""
        self.tasks_done += 1
        self.state, self.task_name, self.task_id, _ = prev
        self.since = time.monotonic()

    def task(self, name: str, task_id: int = 0) -> _TaskScope:
        """``with handle.task("quicksort", 17):`` — running for the body."""
        return _TaskScope(self, name, task_id)

    def blocked(self, detail: str = "") -> _BlockedScope:
        """``with handle.blocked("lock:tree"):`` — blocked for the body."""
        return _BlockedScope(self, detail)

    def idle(self) -> None:
        """Explicitly park the worker (waiting on its queue)."""
        self.state = IDLE
        self.task_name = ""
        self.task_id = 0
        self.detail = ""
        self.since = time.monotonic()

    # -- reading -------------------------------------------------------------

    def age(self, now: float | None = None) -> float:
        """Seconds spent in the current state."""
        return (time.monotonic() if now is None else now) - self.since

    def __repr__(self) -> str:
        what = f" {self.task_name!r}" if self.task_name else ""
        return f"WorkerHandle({self.name!r}, {self.role}, {self.state}{what})"


class GaugeHandle:
    """A registered pull-gauge; :meth:`dispose` deregisters it (idempotent)."""

    __slots__ = ("name", "fn", "_registry")

    def __init__(self, name: str, fn: Callable[[], float], registry: "WorkerRegistry") -> None:
        self.name = name
        self.fn = fn
        self._registry = registry

    def read(self) -> float:
        return float(self.fn())

    def dispose(self) -> None:
        self._registry._remove_gauge(self)

    def __repr__(self) -> str:
        return f"GaugeHandle({self.name!r})"


class WorkerRegistry:
    """Thread-safe directory of live workers and pull-gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._workers: dict[int, WorkerHandle] = {}
        self._gauges: list[GaugeHandle] = []
        self._next_wid = 0

    # -- workers -------------------------------------------------------------

    def register(self, name: str, role: str = "worker", ident: int | None = None) -> WorkerHandle:
        """Add a worker; ``ident`` defaults to the calling thread.

        When registered from its own thread (the normal case) the handle
        also becomes :func:`current_handle` for that thread, which is how
        executors and the ptask runtime find it without plumbing.
        """
        own = ident is None
        if ident is None:
            ident = threading.get_ident()
        with self._lock:
            wid = self._next_wid
            self._next_wid += 1
            handle = WorkerHandle(wid, name, role, ident)
            self._workers[wid] = handle
        if own:
            _thread.handle = handle
        return handle

    def unregister(self, handle: WorkerHandle) -> None:
        """Remove a worker; idempotent, clears the thread-local if it matches."""
        with self._lock:
            self._workers.pop(handle.wid, None)
        if getattr(_thread, "handle", None) is handle:
            _thread.handle = None

    def workers(self) -> list[WorkerHandle]:
        """Snapshot of live handles, ordered by registration."""
        with self._lock:
            return [self._workers[w] for w in sorted(self._workers)]

    def by_ident(self) -> dict[int, WorkerHandle]:
        """thread ident → handle (last registration wins per ident)."""
        out: dict[int, WorkerHandle] = {}
        for handle in self.workers():
            out[handle.ident] = handle
        return out

    def state_counts(self) -> dict[str, int]:
        """``{"idle": n, "running": n, "blocked": n}`` — always all three keys."""
        counts = dict.fromkeys(STATES, 0)
        for handle in self.workers():
            counts[handle.state] = counts.get(handle.state, 0) + 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def __iter__(self) -> Iterator[WorkerHandle]:
        return iter(self.workers())

    # -- pull gauges ---------------------------------------------------------

    def register_gauge(self, name: str, fn: Callable[[], float]) -> GaugeHandle:
        """Register a pull-gauge (e.g. a queue-depth lambda); returns a
        disposer handle.  Same-named gauges sum at read time, so several
        pools with the default name still report a meaningful total."""
        handle = GaugeHandle(name, fn, self)
        with self._lock:
            self._gauges.append(handle)
        return handle

    def _remove_gauge(self, handle: GaugeHandle) -> None:
        with self._lock:
            try:
                self._gauges.remove(handle)
            except ValueError:
                pass

    def gauges(self) -> dict[str, float]:
        """name → value snapshot; a gauge whose callable raises reads 0
        (an executor mid-teardown must not break a scrape)."""
        with self._lock:
            handles = list(self._gauges)
        out: dict[str, float] = {}
        for g in handles:
            try:
                value = g.read()
            except Exception:
                value = 0.0
            out[g.name] = out.get(g.name, 0.0) + value
        return dict(sorted(out.items()))

    # -- aggregates the exporter/dashboard serve -----------------------------

    def busy_workers(self) -> int:
        """Workers currently in the ``running`` state."""
        return self.state_counts()[RUNNING]

    def inflight_tasks(self) -> float:
        """Submitted-but-unfinished work visible live: everything still
        queued (the queue-depth gauges) plus tasks executing right now."""
        queued = sum(v for n, v in self.gauges().items() if n.endswith("queue_depth"))
        return queued + self.busy_workers()

    def clear(self) -> None:
        """Drop every worker and gauge (test isolation only)."""
        with self._lock:
            self._workers.clear()
            self._gauges.clear()

    def __repr__(self) -> str:
        return f"WorkerRegistry(workers={len(self)}, gauges={len(self._gauges)})"


#: The process-wide registry every executor registers with.
REGISTRY = WorkerRegistry()


class attribute_task:
    """Attribute the current thread's samples to ``name`` for the body.

    ``with attribute_task("search", tid):`` marks the registered handle
    (if any) as running that task — the hook the ptask runtime wraps
    around task bodies so samples attribute correctly even on backends
    that execute on the caller's thread (inline, sim).  On a thread-pool
    worker it nests inside the pool's own scope and simply refines the
    name.  No-op on unregistered threads.
    """

    __slots__ = ("_name", "_task_id", "_handle", "_prev")

    def __init__(self, name: str, task_id: int = 0) -> None:
        self._name = name
        self._task_id = task_id

    def __enter__(self) -> None:
        handle = current_handle()
        self._handle = handle
        if handle is not None:
            self._prev = handle.begin_task(self._name, self._task_id)

    def __exit__(self, *exc: Any) -> None:
        if self._handle is not None:
            self._handle.end_task(self._prev)
