"""Metrics export: Prometheus text exposition, ``/metrics`` server, JSONL.

:func:`prometheus_text` renders a :class:`~repro.obs.metrics.Metrics`
registry — plus the live worker/queue gauges from the
:class:`~repro.obs.live.registry.WorkerRegistry` and the sampler's
self-overhead — in the Prometheus text exposition format (version
0.0.4): ``# TYPE`` headers, counters/gauges by sanitized name,
histograms as summaries with ``quantile`` labels and ``_count``/``_sum``
series.  It is a pure function of its inputs, which is what the golden
test pins.

:class:`MetricsServer` serves that text from a stdlib
``ThreadingHTTPServer`` on a daemon thread at ``/metrics`` (plus a
``/healthz`` liveness probe), so a running experiment can be scraped
with plain ``curl``.  :class:`SnapshotWriter` is the file-based
equivalent: a background thread appending one JSON snapshot line per
interval, for runs on machines where nothing can scrape.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any

import numpy as np

from repro.obs.live.registry import REGISTRY, WorkerRegistry
from repro.obs.live.sampler import SamplingProfiler
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics

__all__ = ["prometheus_text", "MetricsServer", "SnapshotWriter"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")

#: The summary quantiles exported per histogram.
_QUANTILES = (0.5, 0.9, 0.99)


def _sanitize(name: str, prefix: str = "repro_") -> str:
    """Dotted instrument name → legal Prometheus metric name.

    ``pool.steals`` becomes ``repro_pool_steals``; any other illegal
    character also maps to ``_``.  Names already matching the metric
    grammar are only prefixed.
    """
    flat = _NAME_BAD.sub("_", name)
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return prefix + flat


def _fmt_value(value: float) -> str:
    """Prometheus sample values: shortest round-trip float, ints bare."""
    f = float(value)
    if f != f:
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _histogram_lines(hist: Histogram, name: str) -> list[str]:
    """One histogram as a Prometheus summary: quantiles + _count/_sum."""
    samples = hist.samples()
    lines = [f"# TYPE {name} summary"]
    if samples:
        arr = np.asarray(samples, dtype=float)
        for q in _QUANTILES:
            v = float(np.percentile(arr, q * 100))
            lines.append(f'{name}{{quantile="{q}"}} {_fmt_value(v)}')
        total = float(arr.sum())
    else:
        total = 0.0
    lines.append(f"{name}_count {len(samples)}")
    lines.append(f"{name}_sum {_fmt_value(total)}")
    return lines


def prometheus_text(
    metrics: Metrics | None = None,
    registry: WorkerRegistry | None = None,
    profiler: SamplingProfiler | None = None,
) -> str:
    """Render everything observable right now as Prometheus exposition text.

    ``metrics`` contributes every instrument under its sanitized name;
    ``registry`` (defaults to the process-wide one) contributes the live
    gauges — worker totals, per-state counts, queue depths, in-flight
    tasks; ``profiler`` adds its sample count and self-overhead.  All
    sections sort by metric name, so output is deterministic for a given
    state.
    """
    blocks: list[tuple[str, list[str]]] = []

    if metrics is not None:
        for inst in metrics:
            name = _sanitize(inst.name)
            if isinstance(inst, Counter):
                blocks.append((name, [f"# TYPE {name} counter", f"{name} {_fmt_value(inst.value)}"]))
            elif isinstance(inst, Gauge):
                blocks.append((name, [f"# TYPE {name} gauge", f"{name} {_fmt_value(inst.value)}"]))
            elif isinstance(inst, Histogram):
                blocks.append((name, _histogram_lines(inst, name)))

    reg = registry if registry is not None else REGISTRY
    counts = reg.state_counts()
    live: list[tuple[str, float]] = [
        ("repro_live_workers", float(len(reg))),
        ("repro_live_busy_workers", float(reg.busy_workers())),
        ("repro_live_inflight_tasks", float(reg.inflight_tasks())),
    ]
    for state, n in sorted(counts.items()):
        live.append((f"repro_live_workers_{state}", float(n)))
    for gauge_name, value in reg.gauges().items():
        live.append((_sanitize(gauge_name, prefix="repro_live_"), value))
    if profiler is not None:
        overhead = profiler.overhead()
        live.append(("repro_live_sampler_samples", float(profiler.profile().total_samples)))
        live.append(("repro_live_sampler_passes", overhead["passes"]))
        live.append(("repro_live_sampler_overhead_seconds", overhead["seconds"]))
    for name, value in live:
        blocks.append((name, [f"# TYPE {name} gauge", f"{name} {_fmt_value(value)}"]))

    blocks.sort(key=lambda b: b[0])
    out: list[str] = []
    for _, lines in blocks:
        out.extend(lines)
    return "\n".join(out) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """``/metrics`` → exposition text, ``/healthz`` → ok.  Quiet logs."""

    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.server.exporter.render().encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/healthz":
            body = b"ok\n"
            ctype = "text/plain; charset=utf-8"
        else:
            self.send_error(404, "try /metrics or /healthz")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # scrapes must not spam the experiment's stdout


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    exporter: "MetricsServer"


class MetricsServer:
    """Serve live metrics over HTTP while an experiment runs.

    ``port=0`` (the default) binds an ephemeral port — read ``.port``
    after :meth:`start`.  The server thread is a daemon: an experiment
    crashing never hangs on it.

    >>> server = MetricsServer(metrics=m).start()     # doctest: +SKIP
    >>> urllib.request.urlopen(f"http://127.0.0.1:{server.port}/metrics")
    """

    def __init__(
        self,
        metrics: Metrics | None = None,
        registry: WorkerRegistry | None = None,
        profiler: SamplingProfiler | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.metrics = metrics
        self.registry = registry
        self.profiler = profiler
        self.host = host
        self.port = port
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None

    def render(self) -> str:
        """The exposition text a scrape of ``/metrics`` returns now."""
        return prometheus_text(self.metrics, self.registry, self.profiler)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Bind the listener (resolving ``port=0`` to the ephemeral port
        actually bound) and serve from a daemon thread."""
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        server = _Server((self.host, self.port), _Handler)
        server.exporter = self
        self.port = server.server_address[1]
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever, name="obs-metrics-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down; idempotent."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "listening" if self._server is not None else "stopped"
        return f"MetricsServer({self.host}:{self.port}, {state})"


class SnapshotWriter:
    """Append one JSON metrics snapshot per interval to a file.

    The scrape-less alternative to :class:`MetricsServer`: each line is
    ``{"t": <seconds since start>, "metrics": {...}, "live": {...}}``,
    so a finished run leaves a greppable time series behind.  The writer
    thread is a daemon and each line is flushed as written.
    """

    def __init__(
        self,
        fh: IO[str],
        metrics: Metrics | None = None,
        registry: WorkerRegistry | None = None,
        interval: float = 0.25,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._fh = fh
        self.metrics = metrics
        self.registry = registry if registry is not None else REGISTRY
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0 = 0.0
        self.lines_written = 0

    def snapshot(self) -> dict[str, Any]:
        """One snapshot document (also used directly by tests)."""
        reg = self.registry
        live: dict[str, float] = {
            "workers": float(len(reg)),
            "busy_workers": float(reg.busy_workers()),
            "inflight_tasks": float(reg.inflight_tasks()),
        }
        live.update(reg.gauges())
        doc: dict[str, Any] = {"t": round(time.monotonic() - self._t0, 6), "live": live}
        if self.metrics is not None:
            doc["metrics"] = self.metrics.snapshot()
        return doc

    def write_once(self) -> None:
        self._fh.write(json.dumps(self.snapshot(), sort_keys=True) + "\n")
        self._fh.flush()
        self.lines_written += 1

    def start(self) -> "SnapshotWriter":
        if self._thread is not None:
            raise RuntimeError("snapshot writer already started")
        self._t0 = time.monotonic()
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, name="obs-snapshots", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the writer, emitting one final snapshot; idempotent."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
            self.write_once()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.write_once()

    def __enter__(self) -> "SnapshotWriter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
