"""Live TTY dashboard: worker states, queue depth, throughput, event rates.

:class:`Dashboard` renders one text *frame* per refresh — worker table,
live gauges, and rates derived from successive metric snapshots — and
:meth:`Dashboard.run` repaints it in place (ANSI home+clear) until a
completion predicate fires.  ``python -m repro top <exp>`` wires this to
an experiment running on another thread.

Frame rendering is a pure function of (registry state, metrics
snapshot, clock), with the clock injectable, so tests can pin frames
without sleeping or owning a real terminal.
"""

from __future__ import annotations

import time
from typing import IO, Callable

from repro.obs.live.registry import REGISTRY, WorkerRegistry
from repro.obs.metrics import Metrics
from repro.util.tables import Table

__all__ = ["Dashboard"]

_CLEAR = "\x1b[H\x1b[2J"  # cursor home + clear screen


def _fmt_age(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"


class Dashboard:
    """Render live run state as repaintable text frames.

    Parameters
    ----------
    registry:
        Worker directory to display (default: the process-wide one).
    metrics:
        Optional metrics registry; counter deltas between frames become
        the ``events/s`` rate column.
    clock:
        Monotonic-seconds callable, injectable for deterministic tests.
    """

    def __init__(
        self,
        registry: WorkerRegistry | None = None,
        metrics: Metrics | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self.metrics = metrics
        self.clock = clock
        self._t0 = clock()
        self._prev_t = self._t0
        self._prev_tasks = 0
        self._prev_counters: dict[str, float] = {}
        self.frames_rendered = 0

    # -- one frame -----------------------------------------------------------

    def frame(self) -> str:
        """Render the current state as one multi-line text frame."""
        now = self.clock()
        dt = max(now - self._prev_t, 1e-9)
        reg = self.registry
        workers = reg.workers()
        counts = reg.state_counts()
        gauges = reg.gauges()

        tasks_done = sum(w.tasks_done for w in workers)
        throughput = (tasks_done - self._prev_tasks) / dt

        lines = [
            f"live · t+{now - self._t0:.1f}s · {len(workers)} workers "
            f"({counts['running']} running, {counts['idle']} idle, {counts['blocked']} blocked) · "
            f"{tasks_done} tasks done · {throughput:.1f} tasks/s"
        ]

        if workers:
            t = Table(["worker", "role", "state", "task", "for", "done"])
            for w in workers:
                task = w.task_name or (w.detail or "-")
                t.add_row([w.name, w.role, w.state, task, _fmt_age(w.age(now)), w.tasks_done])
            lines.append("")
            lines.append(t.render())

        if gauges:
            lines.append("")
            lines.append(
                "queues: " + "  ".join(f"{name}={value:g}" for name, value in gauges.items())
            )
            lines.append(f"in-flight tasks: {reg.inflight_tasks():g}")

        rates = self._event_rates(dt)
        if rates:
            t = Table(["counter", "total", "per second"], title="event rates", precision=1)
            for name, (total, rate) in rates.items():
                t.add_row([name, int(total), rate])
            lines.append("")
            lines.append(t.render())

        self._prev_t = now
        self._prev_tasks = tasks_done
        self.frames_rendered += 1
        return "\n".join(lines) + "\n"

    def _event_rates(self, dt: float) -> dict[str, tuple[float, float]]:
        """counter name → (total, delta/s) since the previous frame."""
        if self.metrics is None:
            return {}
        # Histogram summary fields (.mean/.p50/...) jitter and would read
        # as nonsense rates; only the event-count-shaped keys qualify.
        skip = (".mean", ".p50", ".p90", ".p99", ".max")
        snap = {
            k: v for k, v in self.metrics.snapshot().items() if not k.endswith(skip)
        }
        out: dict[str, tuple[float, float]] = {}
        for name, value in snap.items():
            prev = self._prev_counters.get(name)
            if prev is not None and value > prev:
                out[name] = (value, (value - prev) / dt)
        self._prev_counters = snap
        return {k: out[k] for k in sorted(out)}

    # -- the repaint loop ------------------------------------------------------

    def run(
        self,
        out: IO[str],
        done: Callable[[], bool],
        interval: float = 0.25,
        max_frames: int | None = None,
        clear: bool = True,
    ) -> int:
        """Repaint frames to ``out`` until ``done()`` (or ``max_frames``).

        Returns the number of frames drawn.  Always draws at least one
        final frame after ``done()`` turns true, so the last state a user
        sees is the finished one.
        """
        drawn = 0
        while True:
            finished = done()
            text = self.frame()
            out.write((_CLEAR if clear and drawn else "") + text)
            out.flush()
            drawn += 1
            if finished or (max_frames is not None and drawn >= max_frames):
                return drawn
            time.sleep(interval)

    def __repr__(self) -> str:
        return f"Dashboard(workers={len(self.registry)}, frames={self.frames_rendered})"
