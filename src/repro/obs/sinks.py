"""Where trace events go: memory, JSONL, or Chrome ``trace_event`` JSON.

Sinks receive :class:`~repro.obs.trace.TraceEvent` records one at a time
via :meth:`Sink.emit`; emission must be cheap and thread-safe because the
thread-pool backend emits from worker threads.  Serialisation happens at
:meth:`Sink.close` / :meth:`ChromeTraceSink.write` time.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # import cycle: trace.py imports this module
    from repro.obs.trace import TraceEvent

__all__ = ["Sink", "MemorySink", "JsonlSink", "ChromeTraceSink"]


class Sink:
    """Base sink: subclasses override :meth:`emit`; :meth:`flush` and
    :meth:`close` are idempotent and optional.  Every sink is a context
    manager — leaving the ``with`` block flushes and closes it
    deterministically, so file-backed sinks never rely on interpreter
    exit to get their bytes on disk."""

    def emit(self, event: "TraceEvent") -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered output toward its destination; no-op by default."""

    def close(self) -> None:
        pass

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class MemorySink(Sink):
    """Keeps every event in a list — the test and default sink.

    Lock-free by design: ``list.append`` (and ``clear``) are GIL-atomic,
    so concurrent emitters from pool workers never corrupt the list and
    the recorder's hot path pays no lock round-trip per event.  Readers
    that need a stable view copy the list (``TraceRecorder.events``).
    """

    def __init__(self) -> None:
        self.events: list["TraceEvent"] = []

    def emit(self, event: "TraceEvent") -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"MemorySink(events={len(self.events)})"


class JsonlSink(Sink):
    """One JSON object per line, written as events arrive.

    Accepts a path (opened lazily, closed by :meth:`close`) or an open
    text file object (flushed but left open — the caller owns it).  Use
    it as a context manager for deterministic flush+close::

        with JsonlSink(path) as sink:
            recorder = TraceRecorder(sink=sink)
            ...
        # every line is on disk here, whatever happened in the body
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        self._lock = threading.Lock()
        if isinstance(target, (str, Path)):
            self._path: Path | None = Path(target)
            self._fp: IO[str] | None = None
            self._owns_fp = True
        else:
            self._path = None
            self._fp = target
            self._owns_fp = False
        self._count = 0

    def emit(self, event: "TraceEvent") -> None:
        line = json.dumps(event.to_json(), sort_keys=True, default=str)
        with self._lock:
            if self._fp is None:
                if self._path is None:
                    raise ValueError("JsonlSink already closed")
                self._fp = self._path.open("w")
            self._fp.write(line + "\n")
            self._count += 1

    def flush(self) -> None:
        """Flush the underlying file object (owned or caller-provided)."""
        with self._lock:
            if self._fp is not None:
                self._fp.flush()

    def close(self) -> None:
        """Flush, then close the handle if this sink opened it; a
        caller-provided stream is flushed but left open."""
        with self._lock:
            if self._fp is None:
                return
            self._fp.flush()
            if self._owns_fp:
                self._fp.close()
                self._fp = None

    def __repr__(self) -> str:
        where = str(self._path) if self._path is not None else "<stream>"
        return f"JsonlSink({where!r}, events={self._count})"


class ChromeTraceSink(Sink):
    """Buffers events and writes Chrome ``trace_event`` JSON on close.

    The output is the *object* form (``{"traceEvents": [...]}``), which
    both ``chrome://tracing`` and Perfetto load directly.
    """

    def __init__(self, path: str | Path) -> None:
        self._lock = threading.Lock()
        self._path = Path(path)
        self.events: list["TraceEvent"] = []
        self._written = False

    def emit(self, event: "TraceEvent") -> None:
        with self._lock:
            self.events.append(event)

    def clear(self) -> None:
        """Drop buffered events (used by ``TraceRecorder.clear``)."""
        with self._lock:
            self.events.clear()

    def flush(self) -> None:
        """Serialise the events buffered so far without sealing the sink;
        a later :meth:`close` rewrites the file with the full stream."""
        with self._lock:
            if self._written:
                return
            events = list(self.events)
        self._path.write_text(self.render_events(events))

    def close(self) -> None:
        """Write the final trace JSON exactly once (idempotent)."""
        with self._lock:
            if self._written:
                return
            self._written = True
            events = list(self.events)
        self._path.write_text(self.render_events(events))

    # -- reusable serialisation ---------------------------------------------

    @staticmethod
    def render_events(events: Iterable["TraceEvent"]) -> str:
        """Chrome trace JSON text for ``events`` (stable field order)."""
        doc = {
            "traceEvents": [e.to_chrome() for e in events],
            "displayTimeUnit": "ms",
        }
        return json.dumps(doc, default=str)

    @classmethod
    def write_events(cls, events: Iterable["TraceEvent"], path: str | Path) -> Path:
        """One-shot: serialise ``events`` (e.g. from a MemorySink) to ``path``."""
        out = Path(path)
        out.write_text(cls.render_events(events))
        return out

    def __repr__(self) -> str:
        return f"ChromeTraceSink({str(self._path)!r}, events={len(self.events)})"
