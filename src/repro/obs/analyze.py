"""Trace analytics: work/span, scheduler health, and speedup-model fits.

PR 1 gave the runtime layers a way to *emit* what they did
(:mod:`repro.obs.trace`); this module is the layer that *interprets* it.
Given a :class:`~repro.obs.trace.TraceEvent` stream, :func:`analyze_trace`
reconstructs the task timeline and answers the questions the course (and
the ROADMAP's production north-star) actually asks of a parallel run:

* **work/span** — total work T1, critical path T∞ (span), and the
  parallelism T1/T∞, per trace group.  For simulated schedules the exact
  figures are read from the ``schedule_summary`` events the sim backend
  emits; for wall-clock timelines they are reconstructed from the task
  spans plus the parent/dep attributes the executors record;
* **scheduler health** — per-worker busy/utilization timelines, steal
  attempt/success rates, blocked-join helping, critical-section
  contention per lock, and barrier-wait breakdown per key;
* **EDT service latency** — percentiles of the GUI event queue latency;
* **speedup-model fitting** — :func:`fit_speedup_models` fits Amdahl and
  Gustafson serial fractions to measured 1/2/4/…-core runs by least
  squares, with a Karp–Flatt per-point serial-fraction sample summarised
  through :func:`repro.util.stats.summarize` (so the CI machinery the
  bench tables use applies to the inferred fraction too).

Everything here is pure post-processing: nothing imports executors, and
analysing a trace never mutates it, so the layer costs nothing unless a
recorder was installed and someone asks for an analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.obs.trace import TraceEvent
from repro.util.stats import Summary, karp_flatt, summarize

__all__ = [
    "TaskSpan",
    "WorkerUtilization",
    "LockContention",
    "BarrierWait",
    "LatencyStats",
    "StageLatency",
    "GroupAnalysis",
    "SpeedupFit",
    "TraceAnalysis",
    "analyze_trace",
    "decompose_stages",
    "dominant_stage",
    "fit_speedup_models",
]

_EPS = 1e-12


@dataclass(frozen=True)
class TaskSpan:
    """One closed task-execution interval on a worker lane.

    ``exclusive`` is the span's *self time*: its duration minus the time
    of spans nested inside it on the same worker (a pool worker that
    helps another task during a blocked join nests that task's span
    inside its own, and counting both in full would double-count work).
    """

    group: int
    task_id: int
    name: str
    worker: int | None
    start: float
    end: float
    exclusive: float
    parent: int | None = None

    @property
    def duration(self) -> float:
        """Wall (or virtual) length of the span."""
        return self.end - self.start


@dataclass(frozen=True)
class WorkerUtilization:
    """How busy one worker lane was over a group's makespan."""

    worker: int
    busy: float
    tasks: int
    utilization: float


@dataclass(frozen=True)
class LockContention:
    """Aggregate acquire-wait statistics for one named critical section."""

    name: str
    acquisitions: int
    total_wait: float
    max_wait: float

    @property
    def mean_wait(self) -> float:
        """Average seconds spent waiting per acquisition."""
        return self.total_wait / self.acquisitions if self.acquisitions else 0.0


@dataclass(frozen=True)
class BarrierWait:
    """Aggregate rendezvous-wait statistics for one barrier key."""

    key: str
    passes: int
    total_wait: float
    max_wait: float

    @property
    def mean_wait(self) -> float:
        """Average seconds a party waited at this barrier."""
        return self.total_wait / self.passes if self.passes else 0.0


@dataclass(frozen=True)
class LatencyStats:
    """Percentile summary of a latency sample (EDT queue service)."""

    n: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Build the percentile summary from raw samples (non-empty)."""
        arr = np.asarray(samples, dtype=float)
        p50, p90, p99 = np.percentile(arr, [50, 90, 99])
        return cls(
            n=int(arr.size),
            mean=float(arr.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
            maximum=float(arr.max()),
        )


@dataclass(frozen=True)
class StageLatency:
    """Tail profile of one request-lifecycle stage (serving pipeline).

    ``share`` is this stage's fraction of the total time across all
    stages — "where did the time go" in aggregate — while the
    percentiles answer "where did the *tail* go" (the stage with the
    largest p99 dominates the slow requests even when its share of
    total time is modest).
    """

    stage: str
    count: int
    total: float
    share: float
    p50: float
    p99: float
    p999: float
    maximum: float


def decompose_stages(
    samples: Mapping[str, Sequence[float]],
) -> tuple[StageLatency, ...]:
    """Per-stage latency decomposition of request-trace stage samples.

    ``samples`` maps stage name to per-request stage durations (the
    ``stage_samples`` of a :class:`repro.obs.rtrace.RequestSummary`);
    mapping order is preserved in the output.  Percentiles use the same
    nearest-rank order statistic as the serve load report, **not**
    interpolating ``np.percentile`` — exact under virtual time, so
    golden reports stay byte-stable.  Stages with no samples are
    dropped.
    """
    grand_total = sum(sum(xs) for xs in samples.values())
    out = []
    for stage, xs in samples.items():
        if not xs:
            continue
        ordered = sorted(xs)
        n = len(ordered)

        def rank(q: float, n: int = n) -> int:
            return max(0, min(n - 1, math.ceil(q * n) - 1))

        total = sum(ordered)
        out.append(
            StageLatency(
                stage=stage,
                count=n,
                total=total,
                share=total / grand_total if grand_total > 0 else 0.0,
                p50=ordered[rank(0.50)],
                p99=ordered[rank(0.99)],
                p999=ordered[rank(0.999)],
                maximum=ordered[-1],
            )
        )
    return tuple(out)


def dominant_stage(stages: Sequence[StageLatency]) -> StageLatency | None:
    """The stage that dominates the tail: largest p99, ties broken by
    larger total time, then by input order."""
    best: StageLatency | None = None
    for s in stages:
        if best is None or s.p99 > best.p99 or (s.p99 == best.p99 and s.total > best.total):
            best = s
    return best


@dataclass(frozen=True)
class GroupAnalysis:
    """Work/span/utilization figures for one trace group (timeline).

    ``exact=True`` means work/span/makespan came from the authoritative
    ``schedule_summary`` event a simulated schedule emits; otherwise they
    were reconstructed from the span stream (exclusive-time sums and the
    longest path through the recorded spawn/dependence edges).
    """

    group: int
    label: str
    cores: int | None
    tasks: int
    work: float
    span: float
    makespan: float
    parallelism: float
    utilization: float
    workers: tuple[WorkerUtilization, ...]
    exact: bool
    #: the closed task spans behind the figures (Gantt source), in
    #: (start, task) order; excluded from repr to keep logs readable.
    spans: tuple[TaskSpan, ...] = field(default=(), repr=False)


@dataclass(frozen=True)
class SpeedupFit:
    """Least-squares Amdahl/Gustafson fits of a measured speedup curve."""

    cores: tuple[int, ...]
    speedups: tuple[float, ...]
    amdahl_fraction: float
    amdahl_rmse: float
    gustafson_fraction: float
    gustafson_rmse: float
    #: Karp–Flatt serial-fraction estimate per measured point with p > 1,
    #: summarised so ``.mean`` ± ``.ci95_halfwidth`` gives the CI.
    serial_fraction: Summary | None

    @property
    def preferred(self) -> str:
        """Which model fits the measurements better (lower RMSE)."""
        return "amdahl" if self.amdahl_rmse <= self.gustafson_rmse else "gustafson"


@dataclass(frozen=True)
class TraceAnalysis:
    """Everything :func:`analyze_trace` extracted from one event stream."""

    groups: tuple[GroupAnalysis, ...]
    locks: tuple[LockContention, ...]
    barriers: tuple[BarrierWait, ...]
    edt_latency: LatencyStats | None
    steals: int
    steal_attempts: int | None
    helps: int
    fit: SpeedupFit | None
    n_events: int
    unclosed_spans: int = 0
    metrics: dict[str, float] = field(default_factory=dict)
    #: task-lifecycle transitions (see :mod:`repro.resilience`): futures
    #: cancelled, retry attempts, injected faults, and futures failed by
    #: a non-draining shutdown.  All zero on a clean run.
    cancelled: int = 0
    retries: int = 0
    faults: int = 0
    drained: int = 0

    @property
    def primary(self) -> GroupAnalysis | None:
        """The group with the most tasks (ties: lowest group id) — the
        timeline the one-line summary and the Gantt chart describe."""
        if not self.groups:
            return None
        return max(self.groups, key=lambda g: (g.tasks, -g.group))

    @property
    def steal_success_rate(self) -> float | None:
        """steals / steal-attempts, or ``None`` when attempts are unknown."""
        if not self.steal_attempts:
            return None
        return min(1.0, self.steals / self.steal_attempts)

    def baseline_metrics(self) -> dict[str, float]:
        """The flat, sorted metric dict the baseline store persists.

        Includes the primary group's work/span figures, scheduler-health
        aggregates, the fitted serial fraction, and every numeric entry
        of the captured metrics snapshot.
        """
        out: dict[str, float] = {
            "trace.groups": float(len(self.groups)),
            "trace.tasks": float(sum(g.tasks for g in self.groups)),
            "trace.steals": float(self.steals),
        }
        p = self.primary
        if p is not None:
            out["primary.work"] = p.work
            out["primary.span"] = p.span
            out["primary.parallelism"] = p.parallelism
            out["primary.makespan"] = p.makespan
            out["primary.utilization"] = p.utilization
        if self.locks:
            out["lock_wait.total_seconds"] = sum(c.total_wait for c in self.locks)
        if self.barriers:
            out["barrier_wait.total_seconds"] = sum(b.total_wait for b in self.barriers)
        if self.edt_latency is not None:
            out["edt_latency.p99"] = self.edt_latency.p99
        if self.fit is not None:
            out["fit.serial_fraction"] = self.fit.amdahl_fraction
        # Lifecycle counters only when something happened, so clean-run
        # baselines stay byte-identical to pre-resilience ones.
        if self.cancelled:
            out["resilience.cancelled"] = float(self.cancelled)
        if self.retries:
            out["resilience.retried"] = float(self.retries)
        if self.faults:
            out["resilience.faulted"] = float(self.faults)
        if self.drained:
            out["resilience.drained"] = float(self.drained)
        for name, value in self.metrics.items():
            if isinstance(value, (int, float)):
                out[name] = float(value)
        return dict(sorted(out.items()))


# -- span reconstruction -----------------------------------------------------


def _close_spans(events: Sequence[TraceEvent]) -> tuple[list[TaskSpan], int]:
    """Pair ``B``/``E`` task events (and accept ``X`` completes) into
    spans; returns (spans, number of unclosed B events)."""
    raw: list[dict[str, Any]] = []
    open_stacks: dict[tuple[int, int], list[dict[str, Any]]] = {}
    for e in events:
        if e.kind != "task":
            continue
        if e.phase == "X":
            raw.append(
                {
                    "group": e.group, "task_id": e.task_id, "name": e.name,
                    "worker": e.worker, "start": e.ts, "end": e.ts + (e.dur or 0.0),
                    "parent": e.attrs.get("parent"),
                }
            )
        elif e.phase == "B":
            open_stacks.setdefault((e.group, e.task_id), []).append(
                {
                    "group": e.group, "task_id": e.task_id, "name": e.name,
                    "worker": e.worker, "start": e.ts, "end": None,
                    "parent": e.attrs.get("parent"),
                }
            )
        elif e.phase == "E":
            stack = open_stacks.get((e.group, e.task_id))
            if stack:
                span = stack.pop()
                span["end"] = e.ts
                raw.append(span)
    unclosed = sum(len(s) for s in open_stacks.values())
    spans = _with_exclusive_time(raw)
    return spans, unclosed


def _with_exclusive_time(raw: list[dict[str, Any]]) -> list[TaskSpan]:
    """Compute each span's self time by subtracting directly-nested spans
    on the same worker lane, then freeze them into :class:`TaskSpan`."""
    for r in raw:
        r["exclusive"] = r["end"] - r["start"]
    lanes: dict[tuple[int, Any], list[dict[str, Any]]] = {}
    for r in raw:
        lanes.setdefault((r["group"], r["worker"]), []).append(r)
    for lane in lanes.values():
        lane.sort(key=lambda r: (r["start"], -r["end"]))
        stack: list[dict[str, Any]] = []
        for r in lane:
            while stack and stack[-1]["end"] <= r["start"] + _EPS:
                stack.pop()
            if stack:  # r is nested in stack[-1]: charge only the parent
                stack[-1]["exclusive"] -= r["end"] - r["start"]
            stack.append(r)
    return [
        TaskSpan(
            group=r["group"], task_id=r["task_id"], name=r["name"], worker=r["worker"],
            start=r["start"], end=r["end"], exclusive=max(0.0, r["exclusive"]),
            parent=r["parent"],
        )
        for r in sorted(raw, key=lambda r: (r["group"], r["start"], r["task_id"]))
    ]


def _union_length(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    total = 0.0
    current_start: float | None = None
    current_end = 0.0
    for start, end in sorted(intervals):
        if current_start is None or start > current_end + _EPS:
            if current_start is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_start is not None:
        total += current_end - current_start
    return total


def _critical_path(durations: Mapping[int, float], preds: Mapping[int, set[int]]) -> float:
    """Longest duration-weighted path through the task DAG (Kahn order;
    edges into unknown tasks are ignored, cycles degrade to node-local
    spans rather than raising — bad attrs must not kill an analysis)."""
    nodes = set(durations)
    indeg = {t: 0 for t in nodes}
    succs: dict[int, list[int]] = {t: [] for t in nodes}
    for t, ps in preds.items():
        for p in ps:
            if p in nodes and t in indeg and p != t:
                indeg[t] += 1
                succs[p].append(t)
    ready = sorted(t for t, d in indeg.items() if d == 0)
    longest = {t: durations[t] for t in nodes}
    seen = 0
    while ready:
        t = ready.pop()
        seen += 1
        for s in succs[t]:
            longest[s] = max(longest[s], longest[t] + durations[s])
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    # Nodes left unprocessed sit on a (malformed) cycle; their node-local
    # duration already seeds ``longest``, which is a sound lower bound.
    return max(longest.values(), default=0.0)


# -- speedup-model fitting ---------------------------------------------------


def fit_speedup_models(cores: Sequence[int], times: Sequence[float]) -> SpeedupFit:
    """Fit Amdahl and Gustafson serial fractions to measured run times.

    ``cores``/``times`` are parallel sequences of a core-count sweep that
    must include a 1-core measurement (the speedup denominator).  Both
    models are fitted by least squares over the serial fraction on a
    dense grid (deterministic, no SciPy dependency), and the Karp–Flatt
    experimentally-determined serial fraction is computed per point with
    ``p > 1`` and summarised so callers get a mean ± CI.
    """
    if len(cores) != len(times):
        raise ValueError(f"cores and times disagree: {len(cores)} vs {len(times)}")
    pairs = sorted(zip((int(c) for c in cores), (float(t) for t in times)))
    if len({c for c, _ in pairs}) != len(pairs):
        raise ValueError("duplicate core counts in speedup sweep")
    if not pairs or pairs[0][0] != 1:
        raise ValueError("speedup fitting requires a 1-core measurement")
    if any(t <= 0 for _, t in pairs):
        raise ValueError("run times must be positive")
    if len(pairs) < 2:
        raise ValueError("need at least two core counts to fit a model")
    t1 = pairs[0][1]
    p_arr = np.array([c for c, _ in pairs], dtype=float)
    s_arr = np.array([t1 / t for _, t in pairs], dtype=float)

    grid = np.linspace(0.0, 1.0, 2001)[:, None]
    amdahl_pred = 1.0 / (grid + (1.0 - grid) / p_arr[None, :])
    gustafson_pred = p_arr[None, :] - grid * (p_arr[None, :] - 1.0)
    amdahl_rmse = np.sqrt(np.mean((amdahl_pred - s_arr[None, :]) ** 2, axis=1))
    gustafson_rmse = np.sqrt(np.mean((gustafson_pred - s_arr[None, :]) ** 2, axis=1))
    a_idx = int(np.argmin(amdahl_rmse))
    g_idx = int(np.argmin(gustafson_rmse))

    kf = [
        karp_flatt(s, c)
        for c, s in zip(p_arr.astype(int), s_arr)
        if c > 1 and s > 0
    ]
    return SpeedupFit(
        cores=tuple(int(c) for c in p_arr),
        speedups=tuple(float(s) for s in s_arr),
        amdahl_fraction=float(grid[a_idx, 0]),
        amdahl_rmse=float(amdahl_rmse[a_idx]),
        gustafson_fraction=float(grid[g_idx, 0]),
        gustafson_rmse=float(gustafson_rmse[g_idx]),
        serial_fraction=summarize(kf) if kf else None,
    )


def _fit_from_summaries(summaries: list[dict[str, Any]]) -> SpeedupFit | None:
    """Try to fit speedup models from per-schedule summary events.

    Schedules of the *same recording* share total work exactly, so group
    by (rounded) work, keep the cluster with the most distinct core
    counts, and fit when it holds a 1-core run plus at least two more
    core counts.  Several schedules at the same core count (e.g. policy
    ablations) contribute their best (minimum) makespan.
    """
    clusters: dict[float, dict[int, float]] = {}
    for s in summaries:
        cores, makespan, work = s.get("cores"), s.get("makespan"), s.get("work")
        if not cores or makespan is None or work is None or makespan <= 0:
            continue
        key = round(float(work), 9)
        best = clusters.setdefault(key, {})
        c = int(cores)
        best[c] = min(best.get(c, float("inf")), float(makespan))
    if not clusters:
        return None
    best_cluster = max(clusters.values(), key=len)
    if len(best_cluster) < 3 or 1 not in best_cluster:
        return None
    cores = sorted(best_cluster)
    return fit_speedup_models(cores, [best_cluster[c] for c in cores])


# -- the analyzer ------------------------------------------------------------


def _analyze_group(
    group: int,
    label: str,
    spans: list[TaskSpan],
    summary: dict[str, Any] | None,
    preds: Mapping[int, set[int]],
) -> GroupAnalysis:
    """Produce one group's work/span/utilization figures (exact numbers
    from a schedule summary when available, reconstruction otherwise)."""
    makespan = 0.0
    workers: list[WorkerUtilization] = []
    if spans:
        start = min(s.start for s in spans)
        end = max(s.end for s in spans)
        makespan = end - start
        by_worker: dict[int, list[TaskSpan]] = {}
        for s in spans:
            if s.worker is not None:
                by_worker.setdefault(s.worker, []).append(s)
        for wid in sorted(by_worker):
            ws = by_worker[wid]
            busy = _union_length((s.start, s.end) for s in ws)
            busy = min(busy, makespan) if makespan else busy
            workers.append(
                WorkerUtilization(
                    worker=wid,
                    busy=busy,
                    tasks=len({s.task_id for s in ws}),
                    utilization=(busy / makespan) if makespan > 0 else 0.0,
                )
            )
    task_ids = {s.task_id for s in spans}

    if summary is not None:
        work = float(summary.get("work", 0.0))
        span = float(summary.get("span", 0.0))
        makespan = float(summary.get("makespan", makespan))
        utilization = float(summary.get("utilization", 0.0))
        cores = int(summary["cores"]) if summary.get("cores") else None
        exact = True
    else:
        durations: dict[int, float] = {}
        for s in spans:
            durations[s.task_id] = durations.get(s.task_id, 0.0) + s.exclusive
        work = sum(durations.values())
        span = _critical_path(durations, preds)
        cores = len(workers) or None
        utilization = (
            sum(w.busy for w in workers) / (makespan * len(workers))
            if workers and makespan > 0
            else 0.0
        )
        exact = False
    parallelism = (work / span) if span > 0 else 1.0
    return GroupAnalysis(
        group=group,
        label=label,
        cores=cores,
        tasks=len(task_ids),
        work=work,
        span=span,
        makespan=makespan,
        parallelism=max(1.0, parallelism),
        utilization=min(1.0, max(0.0, utilization)),
        workers=tuple(workers),
        exact=exact,
        spans=tuple(spans),
    )


def analyze_trace(
    events: Sequence[TraceEvent],
    metrics: Mapping[str, Any] | None = None,
) -> TraceAnalysis:
    """Interpret a recorded event stream into a :class:`TraceAnalysis`.

    ``metrics`` is an optional (flat) metrics snapshot captured alongside
    the trace; numeric entries ride into the baseline dict and the steal
    attempt counter is read from ``pool.steal_attempts`` when present.
    """
    labels: dict[int, str] = {}
    group_cores: dict[int, int] = {}
    summaries: dict[int, dict[str, Any]] = {}
    all_summaries: list[dict[str, Any]] = []
    lock_waits: dict[str, list[float]] = {}
    barrier_waits: dict[str, list[float]] = {}
    edt_samples: list[float] = []
    pending_locks: dict[tuple[int, str], float] = {}
    pending_barriers: dict[tuple[int, str], float] = {}
    steals = 0
    helps = 0
    cancelled = 0
    retries = 0
    faults = 0
    drained = 0

    for e in events:
        if e.phase == "M" and e.name == "process_name":
            labels[e.group] = str(e.attrs.get("name", ""))
            if "cores" in e.attrs:
                group_cores[e.group] = int(e.attrs["cores"])
        elif e.kind == "sched" and e.name == "schedule_summary":
            summaries[e.group] = dict(e.attrs)
            all_summaries.append(dict(e.attrs))
        elif e.kind == "steal":
            steals += 1
        elif e.kind == "help":
            helps += 1
        elif e.kind == "cancel":
            cancelled += 1
        elif e.kind == "retry":
            retries += 1
        elif e.kind == "fault":
            faults += 1
        elif e.kind == "drain":
            drained += 1
        elif e.kind == "critical":
            if e.phase == "B":
                lock = str(e.attrs.get("lock", e.name))
                pending_locks[(e.task_id, lock)] = e.ts
            elif e.phase == "i" and e.name.endswith(":acquired"):
                lock = e.name.rsplit(":", 1)[0]
                requested = pending_locks.pop((e.task_id, lock), None)
                if requested is not None:
                    lock_waits.setdefault(lock, []).append(max(0.0, e.ts - requested))
        elif e.kind == "barrier" and e.phase == "i":
            if e.name.endswith(":arrive"):
                key = e.name.rsplit(":", 1)[0]
                pending_barriers[(e.task_id, key)] = e.ts
            elif e.name.endswith(":pass"):
                key = e.name.rsplit(":", 1)[0]
                arrived = pending_barriers.pop((e.task_id, key), None)
                if arrived is not None:
                    barrier_waits.setdefault(key, []).append(max(0.0, e.ts - arrived))
        elif e.kind == "edt" and e.phase == "B" and "queue_latency" in e.attrs:
            edt_samples.append(float(e.attrs["queue_latency"]))

    spans, unclosed = _close_spans(events)
    spans_by_group: dict[int, list[TaskSpan]] = {}
    for s in spans:
        spans_by_group.setdefault(s.group, []).append(s)

    # Spawn/dependence edges, per group, from every attr that names them.
    preds_by_group: dict[int, dict[int, set[int]]] = {}
    for e in events:
        if e.kind in ("submit", "spawn", "task") and e.task_id:
            preds = preds_by_group.setdefault(e.group, {}).setdefault(e.task_id, set())
            parent = e.attrs.get("parent")
            if parent:
                preds.add(int(parent))
            for dep in e.attrs.get("dep_tasks", ()):
                preds.add(int(dep))
    for s in spans:
        if s.parent:
            preds_by_group.setdefault(s.group, {}).setdefault(s.task_id, set()).add(int(s.parent))

    group_ids = sorted(set(spans_by_group) | set(summaries))
    groups = tuple(
        _analyze_group(
            gid,
            labels.get(gid, "wall clock" if gid == 0 else f"group {gid}"),
            spans_by_group.get(gid, []),
            summaries.get(gid),
            preds_by_group.get(gid, {}),
        )
        for gid in group_ids
    )

    locks = tuple(
        LockContention(
            name=name, acquisitions=len(ws), total_wait=float(sum(ws)), max_wait=float(max(ws))
        )
        for name, ws in sorted(lock_waits.items())
    )
    barriers = tuple(
        BarrierWait(
            key=key, passes=len(ws), total_wait=float(sum(ws)), max_wait=float(max(ws))
        )
        for key, ws in sorted(barrier_waits.items())
    )

    snapshot = dict(metrics) if metrics else {}
    attempts = snapshot.get("pool.steal_attempts")
    return TraceAnalysis(
        groups=groups,
        locks=locks,
        barriers=barriers,
        edt_latency=LatencyStats.from_samples(edt_samples) if edt_samples else None,
        steals=steals,
        steal_attempts=int(attempts) if attempts is not None else None,
        helps=helps,
        fit=_fit_from_summaries(all_summaries),
        n_events=len(events),
        unclosed_spans=unclosed,
        metrics={k: v for k, v in snapshot.items() if isinstance(v, (int, float))},
        cancelled=cancelled,
        retries=retries,
        faults=faults,
        drained=drained,
    )
