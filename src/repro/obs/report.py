"""Render a :class:`~repro.obs.analyze.TraceAnalysis` for humans.

Two renderers share one data source:

* :func:`render_text` — a deterministic terminal summary built on
  :class:`repro.util.tables.Table`, the same formatting path the bench
  reports use, so ``python -m repro analyze`` output diffs cleanly and
  can be golden-tested;
* :func:`render_html` — a self-contained HTML page (inline CSS + SVG,
  no JavaScript, no external assets) with stat tiles, a Gantt timeline
  of the primary group's task spans per worker lane, per-worker
  utilization bars, and the scheduler-health tables.  It works offline
  and follows ``prefers-color-scheme`` for dark mode.

Both renderers are pure functions of the analysis: same input, same
bytes out — the property the golden tests and CI artifacts rely on.
"""

from __future__ import annotations

import html
from typing import Iterable, Sequence

from repro.obs.analyze import GroupAnalysis, TraceAnalysis, decompose_stages
from repro.obs.rtrace import RequestSummary
from repro.util.tables import Table

__all__ = ["render_text", "render_html", "render_waterfall"]

#: Gantt charts above this many spans draw only the longest ones and say so.
MAX_GANTT_SPANS = 600


def _fmt_seconds(value: float) -> str:
    """Adaptive time formatting for labels: ``1.5 s``, ``230 µs``, …"""
    magnitude = abs(value)
    if magnitude >= 1.0 or magnitude == 0.0:
        return f"{value:.3g} s"
    if magnitude >= 1e-3:
        return f"{value * 1e3:.3g} ms"
    if magnitude >= 1e-6:
        return f"{value * 1e6:.3g} µs"
    return f"{value * 1e9:.3g} ns"


# -- terminal ----------------------------------------------------------------


def _groups_table(groups: Sequence[GroupAnalysis]) -> Table:
    """The per-group work/span table shared by both renderers."""
    t = Table(
        ["group", "label", "cores", "tasks", "work", "span", "parallelism", "makespan", "util", "source"],
        title="work/span per group",
        precision=6,
    )
    for g in groups:
        t.add_row(
            [
                g.group,
                g.label,
                g.cores if g.cores is not None else "-",
                g.tasks,
                g.work,
                g.span,
                round(g.parallelism, 3),
                g.makespan,
                round(g.utilization, 3),
                "exact" if g.exact else "reconstructed",
            ]
        )
    return t


def render_text(analysis: TraceAnalysis) -> str:
    """Deterministic plain-text summary of a trace analysis.

    Sections appear only when the trace produced them (no empty lock
    table for a lock-free run), so small traces stay small; ordering and
    formatting are fixed so the output is golden-testable.
    """
    out: list[str] = []
    total_tasks = sum(g.tasks for g in analysis.groups)
    out.append(
        f"trace analysis: {analysis.n_events} events, "
        f"{len(analysis.groups)} group(s), {total_tasks} task(s)"
    )
    if analysis.unclosed_spans:
        out.append(f"warning: {analysis.unclosed_spans} span(s) never closed (truncated trace?)")

    p = analysis.primary
    if p is not None:
        out.append(
            f"primary group {p.group} ({p.label}): "
            f"work {p.work:.6f}  span {p.span:.6f}  "
            f"parallelism {p.parallelism:.3f}  utilization {p.utilization:.3f}"
        )
    out.append("")

    if analysis.groups:
        out.append(_groups_table(analysis.groups).render())
        out.append("")

    if p is not None and p.workers:
        t = Table(["worker", "busy", "tasks", "utilization"], title=f"workers (group {p.group})", precision=6)
        for w in p.workers:
            t.add_row([w.worker, w.busy, w.tasks, round(w.utilization, 3)])
        out.append(t.render())
        out.append("")

    health = f"scheduler: steals {analysis.steals}"
    if analysis.steal_attempts is not None:
        rate = analysis.steal_success_rate
        health += f" / {analysis.steal_attempts} attempts"
        if rate is not None:
            health += f" ({rate:.1%} success)"
    health += f", helps {analysis.helps}"
    out.append(health)
    out.append("")

    if analysis.cancelled or analysis.retries or analysis.faults or analysis.drained:
        out.append(
            f"resilience: cancelled {analysis.cancelled}, retries {analysis.retries}, "
            f"faults injected {analysis.faults}, drained {analysis.drained}"
        )
        out.append("")

    if analysis.locks:
        t = Table(
            ["lock", "acquisitions", "mean wait", "max wait", "total wait"],
            title="critical-section contention",
            precision=6,
        )
        for c in analysis.locks:
            t.add_row([c.name, c.acquisitions, c.mean_wait, c.max_wait, c.total_wait])
        out.append(t.render())
        out.append("")

    if analysis.barriers:
        t = Table(
            ["barrier", "passes", "mean wait", "max wait", "total wait"],
            title="barrier waits",
            precision=6,
        )
        for b in analysis.barriers:
            t.add_row([b.key, b.passes, b.mean_wait, b.max_wait, b.total_wait])
        out.append(t.render())
        out.append("")

    if analysis.edt_latency is not None:
        lat = analysis.edt_latency
        t = Table(["n", "mean", "p50", "p90", "p99", "max"], title="EDT queue latency (s)", precision=6)
        t.add_row([lat.n, lat.mean, lat.p50, lat.p90, lat.p99, lat.maximum])
        out.append(t.render())
        out.append("")

    if analysis.fit is not None:
        fit = analysis.fit
        t = Table(["cores", "speedup"], title="measured speedup", precision=3)
        for c, s in zip(fit.cores, fit.speedups):
            t.add_row([c, s])
        out.append(t.render())
        out.append(
            f"amdahl serial fraction {fit.amdahl_fraction:.4f} (rmse {fit.amdahl_rmse:.4f}); "
            f"gustafson {fit.gustafson_fraction:.4f} (rmse {fit.gustafson_rmse:.4f}); "
            f"preferred {fit.preferred}"
        )
        if fit.serial_fraction is not None:
            sf = fit.serial_fraction
            out.append(
                f"karp-flatt serial fraction {sf.mean:.4f} ± {sf.ci95_halfwidth:.4f} "
                f"(95% CI, n={sf.n})"
            )
        out.append("")

    return "\n".join(out).rstrip() + "\n"


# -- HTML --------------------------------------------------------------------

_CSS = """\
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255, 255, 255, 0.10);
  --series-1: #3987e5;
}
.viz-root {
  margin: 0;
  background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px;
  line-height: 1.5;
}
main { max-width: 1040px; margin: 0 auto; padding: 24px 20px 48px; }
h1 { font-size: 22px; font-weight: 650; margin: 0 0 2px; }
h2 { font-size: 15px; font-weight: 600; margin: 28px 0 10px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.note { color: var(--text-muted); font-size: 12px; margin: 6px 0 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 10px 16px; min-width: 118px;
}
.tile .v { font-size: 22px; font-weight: 650; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 14px 16px; overflow-x: auto;
}
svg text { font-family: inherit; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 5px 12px 5px 0; border-bottom: 1px solid var(--gridline); }
th { color: var(--text-secondary); font-weight: 600; font-size: 12px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
tr:last-child td { border-bottom: none; }
.bar-row { display: grid; grid-template-columns: 64px 1fr 86px; gap: 10px; align-items: center; margin: 5px 0; }
.bar-label { color: var(--text-secondary); font-size: 12px; text-align: right; }
.bar-track { background: var(--gridline); border-radius: 4px; height: 10px; position: relative; }
.bar-fill { background: var(--series-1); border-radius: 4px; height: 10px; min-width: 1px; }
.bar-value { color: var(--text-secondary); font-size: 12px; font-variant-numeric: tabular-nums; }
details summary { cursor: pointer; color: var(--text-secondary); font-weight: 600; font-size: 15px; margin: 28px 0 10px; }
"""


def _tile(value: str, label: str) -> str:
    """One stat tile (hero number + caption)."""
    return (
        f'<div class="tile"><div class="v">{html.escape(value)}</div>'
        f'<div class="k">{html.escape(label)}</div></div>'
    )


def _html_table(headers: Sequence[str], rows: Iterable[Sequence[object]], numeric_from: int = 1) -> str:
    """An HTML table; columns from ``numeric_from`` on are right-aligned."""

    def cell(tag: str, i: int, value: object) -> str:
        cls = ' class="num"' if i >= numeric_from else ""
        return f"<{tag}{cls}>{html.escape(str(value))}</{tag}>"

    head = "".join(cell("th", i, h) for i, h in enumerate(headers))
    body = "".join(
        "<tr>" + "".join(cell("td", i, v) for i, v in enumerate(row)) + "</tr>" for row in rows
    )
    return f'<div class="panel"><table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table></div>'


def _gantt_svg(group: GroupAnalysis) -> str:
    """Inline SVG Gantt of one group's spans, one lane per worker.

    Bars are thin rounded rects in the single series hue; identity and
    exact times ride in ``<title>`` tooltips, text stays in ink tokens.
    Spans beyond :data:`MAX_GANTT_SPANS` are dropped longest-first with
    a visible truncation note.
    """
    spans = list(group.spans)
    if not spans:
        return '<p class="note">no closed task spans in this group.</p>'
    truncated = len(spans) > MAX_GANTT_SPANS
    if truncated:
        spans = sorted(spans, key=lambda s: -s.duration)[:MAX_GANTT_SPANS]
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = max(t1 - t0, 1e-12)

    lanes = sorted({(-1 if s.worker is None else s.worker) for s in spans})
    lane_y = {w: i for i, w in enumerate(lanes)}
    left, right, top, lane_h, bar_h = 64, 16, 20, 22, 13
    plot_w = 880
    width = left + plot_w + right
    height = top + lane_h * len(lanes) + 26

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'aria-label="Gantt timeline of task spans per worker" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    # Lane labels and hairline separators.
    for w, i in lane_y.items():
        y = top + i * lane_h
        label = "?" if w < 0 else f"w{w}"
        parts.append(
            f'<text x="{left - 8}" y="{y + lane_h / 2 + 4:.1f}" text-anchor="end" '
            f'font-size="11" fill="var(--text-secondary)">{html.escape(label)}</text>'
        )
        parts.append(
            f'<line x1="{left}" y1="{y + lane_h:.1f}" x2="{left + plot_w}" y2="{y + lane_h:.1f}" '
            f'stroke="var(--gridline)" stroke-width="1"/>'
        )
    # Time axis: baseline plus five labelled ticks.
    axis_y = top + lane_h * len(lanes)
    parts.append(
        f'<line x1="{left}" y1="{axis_y}" x2="{left + plot_w}" y2="{axis_y}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
    )
    for k in range(5):
        frac = k / 4
        x = left + plot_w * frac
        label = _fmt_seconds(extent * frac)
        anchor = "start" if k == 0 else ("end" if k == 4 else "middle")
        parts.append(
            f'<text x="{x:.1f}" y="{axis_y + 16}" text-anchor="{anchor}" '
            f'font-size="11" fill="var(--text-muted)">{html.escape(label)}</text>'
        )
    # The spans themselves.
    for s in spans:
        w = -1 if s.worker is None else s.worker
        x = left + (s.start - t0) / extent * plot_w
        bw = max((s.end - s.start) / extent * plot_w, 1.0)
        y = top + lane_y[w] * lane_h + (lane_h - bar_h) / 2
        tip = (
            f"{s.name} (task {s.task_id})\n"
            f"{_fmt_seconds(s.start - t0)} → {_fmt_seconds(s.end - t0)} "
            f"({_fmt_seconds(s.duration)})"
        )
        parts.append(
            f'<rect x="{x:.2f}" y="{y:.1f}" width="{bw:.2f}" height="{bar_h}" rx="2" '
            f'fill="var(--series-1)"><title>{html.escape(tip)}</title></rect>'
        )
    parts.append("</svg>")
    note = ""
    if truncated:
        note = (
            f'<p class="note">showing the {MAX_GANTT_SPANS} longest of '
            f"{group.tasks} task spans (shorter spans omitted).</p>"
        )
    return f'<div class="panel">{"".join(parts)}</div>{note}'


def _utilization_bars(group: GroupAnalysis) -> str:
    """Per-worker utilization as labelled horizontal bars."""
    if not group.workers:
        return '<p class="note">no per-worker spans recorded for this group.</p>'
    rows = []
    for w in group.workers:
        pct = max(0.0, min(1.0, w.utilization))
        rows.append(
            '<div class="bar-row">'
            f'<span class="bar-label">w{w.worker}</span>'
            f'<div class="bar-track"><div class="bar-fill" style="width:{pct * 100:.1f}%"></div></div>'
            f'<span class="bar-value">{pct:.1%} · {w.tasks} tasks</span>'
            "</div>"
        )
    return f'<div class="panel">{"".join(rows)}</div>'


def render_html(analysis: TraceAnalysis, title: str = "trace analysis") -> str:
    """Self-contained HTML report for a trace analysis.

    Inline CSS and SVG only — no JavaScript, no external fonts or
    libraries — so the file opens offline and survives artifact stores.
    Light/dark follow ``prefers-color-scheme`` via CSS custom
    properties; a ``data-theme`` attribute on ``<html>`` overrides.
    """
    p = analysis.primary
    total_tasks = sum(g.tasks for g in analysis.groups)

    tiles = [_tile(str(total_tasks), "tasks"), _tile(str(analysis.n_events), "trace events")]
    if p is not None:
        tiles = [
            _tile(_fmt_seconds(p.work), "work T1"),
            _tile(_fmt_seconds(p.span), "span T∞"),
            _tile(f"{p.parallelism:.2f}×", "parallelism T1/T∞"),
            _tile(f"{p.utilization:.1%}", "utilization"),
            *tiles,
        ]
    if analysis.steals:
        tiles.append(_tile(str(analysis.steals), "steals"))
    if analysis.fit is not None:
        tiles.append(_tile(f"{analysis.fit.amdahl_fraction:.3f}", "amdahl serial fraction"))

    sections: list[str] = [f'<section class="tiles">{"".join(tiles)}</section>']

    if p is not None:
        source = "exact (simulated schedule)" if p.exact else "reconstructed from spans"
        sections.append(
            f"<h2>Task timeline — group {p.group}: {html.escape(p.label)}</h2>"
            f'<p class="note">{html.escape(source)}</p>'
            + _gantt_svg(p)
        )
        sections.append(f"<h2>Worker utilization — group {p.group}</h2>" + _utilization_bars(p))

    if analysis.groups:
        sections.append(
            "<h2>Work/span per group</h2>"
            + _html_table(
                ["group", "label", "cores", "tasks", "work", "span", "parallelism", "makespan",
                 "utilization", "source"],
                [
                    [g.group, g.label, g.cores if g.cores is not None else "-", g.tasks,
                     _fmt_seconds(g.work), _fmt_seconds(g.span), f"{g.parallelism:.2f}",
                     _fmt_seconds(g.makespan), f"{g.utilization:.1%}",
                     "exact" if g.exact else "reconstructed"]
                    for g in analysis.groups
                ],
                numeric_from=2,
            )
        )

    health_rows = [["steals", analysis.steals]]
    if analysis.steal_attempts is not None:
        health_rows.append(["steal attempts", analysis.steal_attempts])
        rate = analysis.steal_success_rate
        if rate is not None:
            health_rows.append(["steal success rate", f"{rate:.1%}"])
    health_rows.append(["blocked-join helps", analysis.helps])
    if analysis.unclosed_spans:
        health_rows.append(["unclosed spans", analysis.unclosed_spans])
    sections.append("<h2>Scheduler health</h2>" + _html_table(["metric", "value"], health_rows))

    if analysis.locks:
        sections.append(
            "<h2>Critical-section contention</h2>"
            + _html_table(
                ["lock", "acquisitions", "mean wait", "max wait", "total wait"],
                [
                    [c.name, c.acquisitions, _fmt_seconds(c.mean_wait), _fmt_seconds(c.max_wait),
                     _fmt_seconds(c.total_wait)]
                    for c in analysis.locks
                ],
            )
        )
    if analysis.barriers:
        sections.append(
            "<h2>Barrier waits</h2>"
            + _html_table(
                ["barrier", "passes", "mean wait", "max wait", "total wait"],
                [
                    [b.key, b.passes, _fmt_seconds(b.mean_wait), _fmt_seconds(b.max_wait),
                     _fmt_seconds(b.total_wait)]
                    for b in analysis.barriers
                ],
            )
        )
    if analysis.edt_latency is not None:
        lat = analysis.edt_latency
        sections.append(
            "<h2>EDT queue latency</h2>"
            + _html_table(
                ["n", "mean", "p50", "p90", "p99", "max"],
                [[lat.n, _fmt_seconds(lat.mean), _fmt_seconds(lat.p50), _fmt_seconds(lat.p90),
                  _fmt_seconds(lat.p99), _fmt_seconds(lat.maximum)]],
                numeric_from=0,
            )
        )

    if analysis.fit is not None:
        fit = analysis.fit
        fit_rows = [[c, f"{s:.3f}"] for c, s in zip(fit.cores, fit.speedups)]
        note = (
            f"amdahl serial fraction {fit.amdahl_fraction:.4f} (rmse {fit.amdahl_rmse:.4f}) · "
            f"gustafson {fit.gustafson_fraction:.4f} (rmse {fit.gustafson_rmse:.4f}) · "
            f"preferred: {fit.preferred}"
        )
        if fit.serial_fraction is not None:
            sf = fit.serial_fraction
            note += f" · karp–flatt {sf.mean:.4f} ± {sf.ci95_halfwidth:.4f} (95% CI, n={sf.n})"
        sections.append(
            "<h2>Speedup-model fit</h2>"
            + _html_table(["cores", "speedup"], fit_rows, numeric_from=0)
            + f'<p class="note">{html.escape(note)}</p>'
        )

    if analysis.metrics:
        metrics_table = _html_table(
            ["metric", "value"],
            [[k, f"{v:g}"] for k, v in sorted(analysis.metrics.items())],
        )
        sections.append(
            f"<details><summary>Metrics snapshot ({len(analysis.metrics)})</summary>"
            f"{metrics_table}</details>"
        )

    subtitle = f"{analysis.n_events} trace events · {len(analysis.groups)} group(s) · {total_tasks} task(s)"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8"/>\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>\n{_CSS}</style>\n</head>\n"
        '<body class="viz-root">\n<main>\n'
        f"<h1>{html.escape(title)}</h1>\n"
        f'<p class="sub">{html.escape(subtitle)}</p>\n'
        + "\n".join(sections)
        + "\n</main>\n</body>\n</html>\n"
    )


# -- request waterfall -------------------------------------------------------

#: fixed per-stage palette: hot-path stages get the saturated hues,
#: bookkeeping stages stay muted (keys follow ``repro.obs.rtrace.STAGES``)
STAGE_COLORS = {
    "admit": "#8a8a85",
    "cache": "#caa53d",
    "batch": "#7a63c9",
    "queue": "#d0712e",
    "execute": "#2a78d6",
    "retry": "#c94f4f",
    "resolve": "#4f9c6b",
}


def _waterfall_svg(summary: RequestSummary) -> str:
    """Stacked per-stage bars for the N slowest requests, slowest first.

    Each lane is one request; segment widths are the stage durations from
    its mark chain, so lanes visually telescope to the request's reported
    latency.  Identity and exact durations ride in ``<title>`` tooltips.
    """
    exemplars = summary.exemplars
    if not exemplars:
        return '<p class="note">no finished request traces to draw.</p>'
    extent = max(max(rt.total() for rt in exemplars), 1e-12)

    left, right, top, lane_h, bar_h = 150, 16, 8, 24, 14
    plot_w = 790
    width = left + plot_w + right
    height = top + lane_h * len(exemplars) + 26

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'aria-label="Per-stage waterfall of the slowest requests" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for i, rt in enumerate(exemplars):
        y = top + i * lane_h
        by = y + (lane_h - bar_h) / 2
        where = f" pid {rt.pid}" if rt.pid is not None else ""
        label = f"#{rt.request_id} {rt.task} · {_fmt_seconds(rt.total())}"
        parts.append(
            f'<text x="{left - 8}" y="{by + bar_h - 3:.1f}" text-anchor="end" '
            f'font-size="11" fill="var(--text-secondary)">{html.escape(label)}</text>'
        )
        prev = rt.arrival
        for stage, ts in rt.marks:
            dur = ts - prev
            prev = ts
            if dur <= 0.0:
                continue
            x = left + (prev - dur - rt.arrival) / extent * plot_w
            bw = max(dur / extent * plot_w, 0.5)
            color = STAGE_COLORS.get(stage, "var(--series-1)")
            tip = (
                f"request {rt.request_id} ({rt.task}, {rt.status}{where})\n"
                f"{stage}: {_fmt_seconds(dur)} of {_fmt_seconds(rt.total())}"
            )
            parts.append(
                f'<rect x="{x:.2f}" y="{by:.1f}" width="{bw:.2f}" height="{bar_h}" rx="2" '
                f'fill="{color}"><title>{html.escape(tip)}</title></rect>'
            )
    axis_y = top + lane_h * len(exemplars)
    parts.append(
        f'<line x1="{left}" y1="{axis_y}" x2="{left + plot_w}" y2="{axis_y}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
    )
    for k in range(5):
        frac = k / 4
        x = left + plot_w * frac
        anchor = "start" if k == 0 else ("end" if k == 4 else "middle")
        parts.append(
            f'<text x="{x:.1f}" y="{axis_y + 16}" text-anchor="{anchor}" '
            f'font-size="11" fill="var(--text-muted)">'
            f"{html.escape(_fmt_seconds(extent * frac))}</text>"
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span style="white-space:nowrap"><svg width="10" height="10" '
        f'viewBox="0 0 10 10" xmlns="http://www.w3.org/2000/svg">'
        f'<rect width="10" height="10" rx="2" fill="{color}"/></svg> '
        f"{html.escape(stage)}</span>"
        for stage, color in STAGE_COLORS.items()
        if summary.stage_samples.get(stage)
    )
    return (
        f'<div class="panel">{"".join(parts)}</div>'
        f'<p class="note" style="display:flex;gap:14px;flex-wrap:wrap">{legend}</p>'
    )


def render_waterfall(summary: RequestSummary, title: str = "request waterfall") -> str:
    """Self-contained HTML waterfall of a traced serve run.

    Same contract as :func:`render_html`: inline CSS + SVG, no
    JavaScript, pure function of the summary (same bytes for the same
    traced run, which under sim means byte-stable across invocations).
    Shows stat tiles, the per-stage latency decomposition, and stacked
    per-stage bars for the N slowest requests.
    """
    finished = summary.latencies
    slowest = max(finished) if finished else 0.0
    tiles = [
        _tile(str(summary.requests), "traced requests"),
        _tile(str(summary.completed), "completed"),
        _tile(str(summary.failed), "failed"),
        _tile(str(summary.rejected), "rejected late"),
        _tile(str(len(summary.sheds)), "shed at admission"),
        _tile(f"{summary.cached}", "cache hits"),
        _tile(_fmt_seconds(slowest), "slowest request"),
    ]
    sections = [f'<section class="tiles">{"".join(tiles)}</section>']

    stages = decompose_stages(summary.stage_samples)
    if stages:
        sections.append(
            "<h2>Latency decomposition</h2>"
            + _html_table(
                ["stage", "count", "total", "share", "p50", "p99", "p999"],
                [
                    [s.stage, s.count, _fmt_seconds(s.total), f"{s.share:.1%}",
                     _fmt_seconds(s.p50), _fmt_seconds(s.p99), _fmt_seconds(s.p999)]
                    for s in stages
                ],
            )
        )

    sections.append(
        f"<h2>Slowest {len(summary.exemplars)} requests</h2>" + _waterfall_svg(summary)
    )

    subtitle = (
        f"{summary.requests} traced request(s) · {summary.completed} completed · "
        f"{summary.failed} failed · {summary.rejected} rejected · "
        f"{len(summary.sheds)} shed"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8"/>\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>\n{_CSS}</style>\n</head>\n"
        '<body class="viz-root">\n<main>\n'
        f"<h1>{html.escape(title)}</h1>\n"
        f'<p class="sub">{html.escape(subtitle)}</p>\n'
        + "\n".join(sections)
        + "\n</main>\n</body>\n</html>\n"
    )
