"""Cross-run trajectories over the run-history store.

:mod:`repro.obs.store` remembers every run; this module reads that
history back as **per-metric timelines** for one experiment and asks the
longitudinal question the single-run tools cannot: *which run is the one
where this metric turned bad?*

The change-point detector is deliberately simple and deterministic —
walk the series in time order, keep a running baseline (the median of
the segment since the last change-point), and flag a point when it moves
in the **bad** direction beyond a relative threshold.  Direction comes
from :func:`repro.obs.baseline.metric_direction`, the same token table
the CI regression gate uses: throughput falling is a change-point,
throughput rising is just a better run; latency is the mirror image;
``info`` metrics never flag.  Flagging resets the baseline, so a
regression is attributed to the run that introduced it rather than
re-flagging every run after it.

Two renderers share the computed series: :func:`render_timeline_text`
for the terminal, and :func:`render_timeline_html` — one sparkline lane
per metric in the ``obs.report`` SVG style (no JavaScript, inline CSS,
light/dark via ``prefers-color-scheme``), with change-points drawn as
red markers carrying ``<title>`` tooltips.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.baseline import DEFAULT_THRESHOLD, metric_direction
from repro.obs.report import _CSS, _html_table, _tile
from repro.obs.store import RunRecord
from repro.util.tables import Table

__all__ = [
    "TimelinePoint",
    "Changepoint",
    "MetricSeries",
    "build_timeline",
    "detect_changepoints",
    "render_timeline_text",
    "render_timeline_html",
]

#: Change-point marker hue — the report palette's alarm red.
_FLAG_COLOR = "#c94f4f"


@dataclass(frozen=True)
class TimelinePoint:
    """One run's value for one metric, in trajectory order."""

    index: int
    timestamp: float
    value: float
    kind: str
    revision: str


@dataclass(frozen=True)
class Changepoint:
    """A run where a metric moved the bad way past the threshold."""

    metric: str
    index: int
    baseline: float
    value: float
    direction: str

    @property
    def rel_change(self) -> float:
        """Relative movement vs the segment baseline at the flag."""
        if self.baseline == 0:
            return float("inf") if self.value != 0 else 0.0
        return (self.value - self.baseline) / abs(self.baseline)


@dataclass(frozen=True)
class MetricSeries:
    """One metric's trajectory plus its detected change-points."""

    metric: str
    direction: str
    points: tuple[TimelinePoint, ...]
    changepoints: tuple[Changepoint, ...]

    @property
    def values(self) -> tuple[float, ...]:
        return tuple(p.value for p in self.points)


def _median(values: Sequence[float]) -> float:
    xs = sorted(values)
    mid = len(xs) // 2
    if len(xs) % 2:
        return xs[mid]
    return (xs[mid - 1] + xs[mid]) / 2.0


def detect_changepoints(
    metric: str,
    points: Sequence[TimelinePoint],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[Changepoint, ...]:
    """Flag the points where ``metric`` turns bad, direction-aware.

    The baseline for each point is the median of the segment since the
    last change-point (the first point only seeds the segment).  A point
    flags when its relative movement vs that baseline exceeds
    ``threshold`` **in the metric's bad direction** — lower-is-better
    metrics flag on rises, higher-is-better on falls, ``info`` never.
    A flag starts a new segment, so a step change is attributed to
    exactly one run.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    direction = metric_direction(metric)
    if direction == "info" or len(points) < 2:
        return ()
    flags: list[Changepoint] = []
    segment: list[float] = [points[0].value]
    for point in points[1:]:
        baseline = _median(segment)
        scale = abs(baseline)
        if scale > 0:
            rel = (point.value - baseline) / scale
        else:
            # a zero baseline: any bad-direction move counts as total
            rel = 0.0 if point.value == 0 else (1.0 if point.value > 0 else -1.0)
        bad = rel > threshold if direction == "lower" else rel < -threshold
        if bad:
            flags.append(
                Changepoint(
                    metric=metric,
                    index=point.index,
                    baseline=baseline,
                    value=point.value,
                    direction=direction,
                )
            )
            segment = [point.value]
        else:
            segment.append(point.value)
    return tuple(flags)


def build_timeline(
    records: Iterable[RunRecord],
    metrics: Sequence[str] | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[MetricSeries]:
    """Per-metric trajectories over time-ordered records of one experiment.

    ``records`` should already be time-ordered (what
    :meth:`RunStore.query` returns); point indices are positions in that
    record list, so a flagged index names the run.  ``metrics`` narrows
    the report; by default every metric observed at least twice gets a
    series.  Series come back sorted by metric name.
    """
    ordered = list(records)
    by_metric: dict[str, list[TimelinePoint]] = {}
    for index, rec in enumerate(ordered):
        for name, value in rec.metrics.items():
            if metrics is not None and name not in metrics:
                continue
            by_metric.setdefault(name, []).append(
                TimelinePoint(
                    index=index,
                    timestamp=rec.timestamp,
                    value=value,
                    kind=rec.kind,
                    revision=rec.revision,
                )
            )
    out = []
    for name in sorted(by_metric):
        points = by_metric[name]
        if metrics is None and len(points) < 2:
            continue
        out.append(
            MetricSeries(
                metric=name,
                direction=metric_direction(name),
                points=tuple(points),
                changepoints=detect_changepoints(name, points, threshold),
            )
        )
    return out


# -- terminal rendering ------------------------------------------------------


def render_timeline_text(exp_id: str, series: list[MetricSeries]) -> str:
    """The terminal timeline: one row per metric, flags called out."""
    table = Table(
        ["metric", "dir", "runs", "first", "last", "min", "max", "flagged at"],
        title=f"timeline {exp_id}",
        precision=4,
    )
    for s in series:
        vals = s.values
        table.add_row(
            [
                s.metric,
                s.direction,
                len(vals),
                vals[0],
                vals[-1],
                min(vals),
                max(vals),
                ",".join(str(cp.index) for cp in s.changepoints) or "-",
            ]
        )
    lines = [table.render()]
    for s in series:
        for cp in s.changepoints:
            point = next(p for p in s.points if p.index == cp.index)
            lines.append(
                f"change-point: {s.metric} at run {cp.index} ({point.kind}, {point.revision}): "
                f"{cp.baseline:g} -> {cp.value:g} ({cp.rel_change:+.1%}, {s.direction} is better)"
            )
    return "\n".join(lines)


# -- HTML rendering ----------------------------------------------------------


def _sparkline_svg(s: MetricSeries, width: int = 640, height: int = 56) -> str:
    """One metric lane: a polyline through the runs, flags as red dots.

    Values are normalized into the lane; identity (run index, kind,
    revision, exact value) rides in ``<title>`` tooltips per marker, in
    the ``obs.report`` Gantt idiom.
    """
    pts = s.points
    pad, r = 8, 3.5
    lo, hi = min(s.values), max(s.values)
    extent = max(hi - lo, 1e-12)
    span_x = max(pts[-1].index - pts[0].index, 1)

    def xy(p: TimelinePoint) -> tuple[float, float]:
        x = pad + (width - 2 * pad) * (p.index - pts[0].index) / span_x
        y = height - pad - (height - 2 * pad) * (p.value - lo) / extent
        return x, y

    coords = [xy(p) for p in pts]
    polyline = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    flagged = {cp.index for cp in s.changepoints}
    dots = []
    for p, (x, y) in zip(pts, coords):
        hot = p.index in flagged
        fill = _FLAG_COLOR if hot else "var(--series-1)"
        tip = f"run {p.index} · {p.kind} · {p.revision} · {s.metric} = {p.value:g}"
        if hot:
            tip += " · CHANGE-POINT"
        dots.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r + 1.5 if hot else r}" fill="{fill}">'
            f"<title>{html.escape(tip)}</title></circle>"
        )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" aria-label="{html.escape(s.metric)} trajectory">'
        f'<polyline points="{polyline}" fill="none" stroke="var(--series-1)" '
        'stroke-width="1.5" stroke-linejoin="round"/>' + "".join(dots) + "</svg>"
    )


def render_timeline_html(
    exp_id: str,
    series: list[MetricSeries],
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """The self-contained HTML timeline: sparkline lanes, no JS."""
    n_runs = max((len(s.points) for s in series), default=0)
    n_flags = sum(len(s.changepoints) for s in series)
    tiles = (
        '<div class="tiles">'
        + _tile(str(len(series)), "metrics")
        + _tile(str(n_runs), "runs (longest series)")
        + _tile(str(n_flags), "change-points")
        + _tile(f"{threshold:.0%}", "flag threshold")
        + "</div>"
    )
    lanes = []
    for s in series:
        vals = s.values
        flag_note = (
            f' · <span style="color:{_FLAG_COLOR};font-weight:600">'
            f"{len(s.changepoints)} change-point(s) at run "
            f'{", ".join(str(cp.index) for cp in s.changepoints)}</span>'
            if s.changepoints
            else ""
        )
        lanes.append(
            '<div class="panel">'
            f"<h3>{html.escape(s.metric)}</h3>"
            f'<p class="note">{s.direction} is better · {len(vals)} run(s) · '
            f"range {min(vals):g} – {max(vals):g}{flag_note}</p>"
            + _sparkline_svg(s)
            + "</div>"
        )
    sections = [tiles, "<h2>Metric trajectories</h2>"] + lanes
    flag_rows = [
        [cp.metric, cp.index, f"{cp.baseline:g}", f"{cp.value:g}", f"{cp.rel_change:+.1%}"]
        for s in series
        for cp in s.changepoints
    ]
    if flag_rows:
        sections.append(
            "<h2>Change-points</h2>"
            + _html_table(["metric", "run", "baseline", "value", "change"], flag_rows)
        )
    title = f"run timeline · {exp_id}"
    subtitle = f"{len(series)} metric(s) · {n_runs} run(s) · {n_flags} change-point(s)"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8"/>\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>\n{_CSS}</style>\n</head>\n"
        '<body class="viz-root">\n<main>\n'
        f"<h1>{html.escape(title)}</h1>\n"
        f'<p class="sub">{html.escape(subtitle)}</p>\n'
        + "\n".join(sections)
        + "\n</main>\n</body>\n</html>\n"
    )
