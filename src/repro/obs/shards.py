"""Cross-process trace shards: per-worker JSONL files merged post hoc.

A worker process cannot emit into the parent's :class:`TraceRecorder`
(the recorder, its sink and its locks live in the parent), so each
worker writes its own *shard* — a JSONL file of :class:`TraceEvent`
records via :class:`~repro.obs.sinks.JsonlSink`, timestamped on the
parent recorder's timeline (the parent ships its wall-clock epoch to the
worker at spawn).  At pool shutdown the parent reads every shard back
(:func:`read_shard`), interleaves them in time order
(:func:`merge_shards`) and replays them into its own recorder
(:func:`replay_into`), after which the merged stream is
indistinguishable from single-process recording: ``obs.analyze`` sees
one coherent timeline with per-worker (and, via the ``pid`` attr on task
spans, per-process) attribution.

Shard files may end mid-line when a worker is killed; malformed lines
are skipped and counted rather than failing the merge — a crashed
worker's partial trace is still worth reading.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.obs.trace import TraceEvent, TraceRecorder

__all__ = ["merge_shards", "read_shard", "replay_into", "shard_path"]


def shard_path(directory: str, worker: int, prefix: str = "shard") -> str:
    """Canonical shard file name for one worker of a pool."""
    return os.path.join(directory, f"{prefix}-w{worker}.jsonl")


def read_shard(path: str) -> tuple[list[TraceEvent], int]:
    """Parse one shard file; returns ``(events, malformed_line_count)``.

    A missing file reads as empty (a worker that died before opening its
    sink, or was never traced, is not an error at merge time).
    """
    events: list[TraceEvent] = []
    malformed = 0
    try:
        handle = open(path, encoding="utf-8")
    except FileNotFoundError:
        return events, 0
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_json(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                malformed += 1  # truncated tail of a killed worker
    return events, malformed


def merge_shards(paths: Iterable[str]) -> tuple[list[TraceEvent], int]:
    """Read every shard and interleave the events into one timeline.

    Events sort by timestamp with metadata (phase ``M``) first — the
    analyzer and the Chrome viewer both want a group named before its
    events.  The sort is stable, so same-timestamp events keep their
    shard-relative order.  Task ids are assigned by the parent before
    tasks are shipped, so no renumbering is needed: overlapping spans
    from different shards are genuinely different tasks.

    Returns ``(events, malformed_line_count)``.
    """
    events: list[TraceEvent] = []
    malformed = 0
    for path in paths:
        shard_events, bad = read_shard(path)
        events.extend(shard_events)
        malformed += bad
    events.sort(key=lambda e: (e.phase != "M", e.ts))
    return events, malformed


def replay_into(recorder: TraceRecorder, events: Sequence[TraceEvent]) -> int:
    """Splice ``events`` (verbatim) into ``recorder``; returns the count.

    The recorder's ``max_events`` cap still applies — a merged shard
    cannot grow a bounded recorder without bound any more than live
    emission can.
    """
    for event in events:
        recorder.record(event)
    return len(events)
