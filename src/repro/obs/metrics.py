"""Counters, gauges and histograms with percentile summaries.

A :class:`Metrics` instance is a flat, thread-safe registry keyed by
dotted names (``"pool.steals"``, ``"edt.queue_latency"``).  Instruments
are created on first use, so instrumented code never has to declare
anything up front; a histogram's :meth:`Histogram.summary` reuses
:func:`repro.util.stats.summarize` for the mean/CI/percentile fields the
bench tables already report.

:class:`NullMetrics` is the disabled twin: every method is a no-op and
allocates nothing, so instrumentation left in hot paths costs one
attribute lookup and one call when observability is off.
"""

from __future__ import annotations

import random
import threading
from typing import Iterator

import numpy as np

from repro.util.stats import Summary, summarize

__all__ = ["Counter", "Gauge", "Histogram", "Metrics", "NullMetrics"]


class Counter:
    """Monotonically increasing count (events, tasks, steals)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """Last-written value (makespan, utilisation, queue depth)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self._value:.6g})"


class Histogram:
    """Sample accumulator summarised on demand (durations, latencies).

    By default every observation is kept (exact percentiles, unbounded
    memory — fine for bounded experiments).  For long *live* runs pass
    ``max_samples``: observations beyond it maintain a uniform random
    reservoir of that size (Vitter's algorithm R, seeded so runs are
    reproducible) and percentiles become estimates over the reservoir,
    while :attr:`count` and the ``.n`` snapshot field keep reporting the
    true total observed.
    """

    __slots__ = ("name", "_samples", "_lock", "_count", "_max_samples", "_rng")

    def __init__(self, name: str, max_samples: int | None = None, seed: int = 0) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self._samples: list[float] = []
        self._lock = threading.Lock()
        self._count = 0
        self._max_samples = max_samples
        self._rng = random.Random(seed) if max_samples is not None else None

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            if self._max_samples is None or len(self._samples) < self._max_samples:
                self._samples.append(float(value))
            else:
                j = self._rng.randrange(self._count)
                if j < self._max_samples:
                    self._samples[j] = float(value)

    @property
    def count(self) -> int:
        """Total observations (not the retained-reservoir size)."""
        return self._count

    @property
    def max_samples(self) -> int | None:
        return self._max_samples

    def samples(self) -> list[float]:
        with self._lock:
            return list(self._samples)

    def summary(self) -> Summary:
        """Five-number-plus summary; raises ``ValueError`` when empty."""
        return summarize(self.samples())

    def flat_summary(self) -> dict[str, float]:
        """Deterministic flat fields (``<name>.n/.mean/.p50/.p90/.p99/.p999/.max``).

        This is the snapshot/baseline form: plain floats with stable key
        names, so two snapshots of the same run diff cleanly.  An empty
        histogram contributes only ``<name>.n = 0``.
        """
        samples = self.samples()
        out: dict[str, float] = {f"{self.name}.n": float(self._count)}
        if not samples:
            return out
        arr = np.asarray(samples, dtype=float)
        p50, p90, p99, p999 = np.percentile(arr, [50, 90, 99, 99.9])
        out[f"{self.name}.mean"] = float(arr.mean())
        out[f"{self.name}.p50"] = float(p50)
        out[f"{self.name}.p90"] = float(p90)
        out[f"{self.name}.p99"] = float(p99)
        out[f"{self.name}.p999"] = float(p999)
        out[f"{self.name}.max"] = float(arr.max())
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class Metrics:
    """Thread-safe registry of named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    #: real registries record; the null twin overrides this to False
    enabled = True

    # -- instrument access (create on first use) ----------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, max_samples: int | None = None) -> Histogram:
        """Get-or-create a histogram; ``max_samples`` only applies at creation."""
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, max_samples=max_samples)
            return inst

    # -- one-call recording shorthand ---------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- introspection ------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted({*self._counters, *self._gauges, *self._histograms})

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        with self._lock:
            instruments = [*self._counters.values(), *self._gauges.values(), *self._histograms.values()]
        return iter(sorted(instruments, key=lambda i: i.name))

    def snapshot(self) -> dict[str, float]:
        """Deterministic point-in-time view: a flat ``name -> number`` dict.

        Counters and gauges appear under their own name; each histogram is
        expanded to flat ``<name>.n/.mean/.p50/.p90/.p99/.max`` fields (an
        empty histogram contributes only ``<name>.n = 0``).  Keys are
        sorted, so two snapshots of equivalent runs diff cleanly — this is
        the form the baseline store persists and compares.
        """
        out: dict[str, float] = {}
        for inst in self:
            if isinstance(inst, Histogram):
                out.update(inst.flat_summary())
            else:
                out[inst.name] = inst.value
        return dict(sorted(out.items()))

    def render(self) -> str:
        """Human-readable dump, one instrument per line, sorted by name."""
        lines = []
        for inst in self:
            if isinstance(inst, Counter):
                lines.append(f"{inst.name:40s} count={inst.value}")
            elif isinstance(inst, Gauge):
                lines.append(f"{inst.name:40s} gauge={inst.value:.6g}")
            else:
                body = str(inst.summary()) if inst.count else "n=0"
                lines.append(f"{inst.name:40s} {body}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Metrics(instruments={len(self.names())})"


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


# Shared singletons: NullMetrics hands these out so repeated instrument
# lookups on a disabled registry allocate nothing.
_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullMetrics(Metrics):
    """Disabled registry: records nothing, allocates nothing.

    Both the one-call shorthands (``count``/``set_gauge``/``observe``)
    and *direct instrument access* are no-ops: ``counter()``, ``gauge()``
    and ``histogram()`` return shared inert instruments whose mutators do
    nothing, so code that caches ``metrics.counter("x")`` and calls
    ``.inc()`` in a hot loop stays free when observability is off.
    Nothing is ever registered, so ``names()``/``snapshot()`` stay empty.
    """

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, max_samples: int | None = None) -> Histogram:
        return _NULL_HISTOGRAM

    def count(self, name: str, n: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass
