"""Baseline store and regression gating for analyzed benchmark runs.

The analyzer (:mod:`repro.obs.analyze`) reduces a traced experiment to a
flat metric dict (:meth:`~repro.obs.analyze.TraceAnalysis.baseline_metrics`).
This module persists those dicts per experiment in a small JSON file —
``benchmarks/reports/baselines.json`` by default — and compares a fresh
run against the stored numbers so CI (``python -m repro compare``) can
flag drift beyond a noise threshold.

Comparison is **direction-aware**: time-like metrics (seconds, makespan,
span, waits, latencies, the fitted serial fraction) regress when they
grow, efficiency-like metrics (parallelism, utilization, speedup) when
they shrink, and pure counts (tasks, events, steals) are reported but
never gated — they describe the workload, not its performance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "MetricDelta",
    "Comparison",
    "metric_direction",
    "load_baselines",
    "save_baselines",
    "update_baseline",
    "compare_to_baseline",
]

#: Where ``python -m repro analyze --update-baseline`` persists metrics.
DEFAULT_BASELINE_PATH = Path("benchmarks/reports/baselines.json")

#: Relative drift tolerated before a gated metric counts as a regression.
DEFAULT_THRESHOLD = 0.25

_LOWER_BETTER = (
    "seconds",
    "latency",
    "wait",
    "makespan",
    "span",
    "work",
    "serial_fraction",
    "dropped",
    "unclosed",
    "shed",
    "burn",
    "breach",
)
_HIGHER_BETTER = (
    "parallelism",
    "utilization",
    "speedup",
    "success",
    "throughput",
    "hit_rate",
    "availability",
)


def metric_direction(name: str) -> str:
    """Classify a metric name as ``lower``, ``higher``, or ``info``.

    ``lower``/``higher`` say which direction is *better*; ``info``
    metrics (counts, ids) are reported but never gate a comparison.
    The match is substring-based on the flat metric name, checking the
    higher-better vocabulary first so ``steal success rate`` does not
    trip on a time-like fragment.
    """
    lowered = name.lower()
    if any(tok in lowered for tok in _HIGHER_BETTER):
        return "higher"
    if any(tok in lowered for tok in _LOWER_BETTER):
        return "lower"
    return "info"


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current movement."""

    name: str
    baseline: float
    current: float
    direction: str
    regressed: bool

    @property
    def rel_change(self) -> float | None:
        """(current - baseline) / baseline, or ``None`` off a zero base."""
        if self.baseline == 0:
            return None
        return (self.current - self.baseline) / abs(self.baseline)


@dataclass(frozen=True)
class Comparison:
    """The full result of comparing a run against its stored baseline."""

    exp_id: str
    threshold: float
    deltas: tuple[MetricDelta, ...]
    missing: tuple[str, ...]  # in baseline, absent from the current run
    new: tuple[str, ...]  # in the current run, absent from baseline

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        """The gated metrics that moved the wrong way past the threshold."""
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        """True when nothing regressed (the CI gate condition)."""
        return not self.regressions

    def render(self) -> str:
        """Deterministic text report: one line per compared metric."""
        lines = [
            f"baseline comparison for {self.exp_id} "
            f"(threshold ±{self.threshold:.0%}, {len(self.deltas)} metric(s))"
        ]
        for d in self.deltas:
            rel = d.rel_change
            move = f"{rel:+.1%}" if rel is not None else "n/a"
            status = "REGRESSED" if d.regressed else "ok"
            gate = {"lower": "lower=better", "higher": "higher=better", "info": "info"}[d.direction]
            lines.append(
                f"  {d.name:40s} {d.baseline:>14.6g} -> {d.current:>14.6g}  {move:>8s}  [{gate}] {status}"
            )
        if self.new:
            lines.append(f"  new metrics (no baseline): {', '.join(self.new)}")
        if self.missing:
            lines.append(f"  missing metrics (in baseline only): {', '.join(self.missing)}")
        lines.append(
            f"result: {len(self.regressions)} regression(s)"
            if self.regressions
            else "result: no regressions"
        )
        return "\n".join(lines)


def load_baselines(path: Path | str = DEFAULT_BASELINE_PATH) -> dict[str, dict[str, float]]:
    """Read the baseline store; a missing file is an empty store."""
    p = Path(path)
    if not p.exists():
        return {}
    doc = json.loads(p.read_text())
    experiments = doc.get("experiments", {}) if isinstance(doc, dict) else {}
    return {
        exp: {k: float(v) for k, v in metrics.items()}
        for exp, metrics in experiments.items()
    }


def save_baselines(
    baselines: Mapping[str, Mapping[str, float]],
    path: Path | str = DEFAULT_BASELINE_PATH,
) -> Path:
    """Write the store as sorted, indented JSON (clean diffs in review)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "version": 1,
        "experiments": {
            exp: dict(sorted((k, float(v)) for k, v in metrics.items()))
            for exp, metrics in sorted(baselines.items())
        },
    }
    p.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return p


def update_baseline(
    exp_id: str,
    metrics: Mapping[str, float],
    path: Path | str = DEFAULT_BASELINE_PATH,
) -> Path:
    """Insert/replace one experiment's baseline metrics and persist."""
    store = load_baselines(path)
    store[exp_id] = dict(metrics)
    return save_baselines(store, path)


def compare_to_baseline(
    exp_id: str,
    current: Mapping[str, float],
    baseline: Mapping[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Compare a fresh run's metrics against its stored baseline.

    A gated metric regresses when it moves in its *bad* direction by
    more than ``threshold`` relative to the baseline value.  Metrics
    with a zero baseline, ``info``-direction metrics, and metrics
    present on only one side never gate — they are surfaced in the
    report instead, so a vanished instrument reads as a diff, not a
    pass.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    deltas: list[MetricDelta] = []
    for name in sorted(set(baseline) & set(current)):
        base, cur = float(baseline[name]), float(current[name])
        direction = metric_direction(name)
        regressed = False
        if base > 0:
            if direction == "lower":
                regressed = cur > base * (1.0 + threshold)
            elif direction == "higher":
                regressed = cur < base * (1.0 - threshold)
        deltas.append(
            MetricDelta(name=name, baseline=base, current=cur, direction=direction, regressed=regressed)
        )
    return Comparison(
        exp_id=exp_id,
        threshold=threshold,
        deltas=tuple(deltas),
        missing=tuple(sorted(set(baseline) - set(current))),
        new=tuple(sorted(set(current) - set(baseline))),
    )
