"""Observability: structured tracing and metrics for every execution layer.

The paper's pedagogy rests on students *seeing* parallel behaviour —
speedup shapes, steal counts, GUI latency under load (paper §III-B,
§IV-B/C) — so the runtime layers emit what they actually did:

* :class:`TraceRecorder` collects :class:`TraceEvent` records (task
  submit/start/end with task ids, work-steal events, critical-section
  spans, barrier rendezvous, EDT service latency) into a pluggable
  :class:`Sink` — in-memory for tests, JSONL for logs, or Chrome
  ``trace_event`` JSON loadable in ``chrome://tracing`` / Perfetto;
* :class:`Metrics` is a registry of counters, gauges and histograms
  (percentile summaries reuse :func:`repro.util.stats.summarize`);
* :data:`NULL_RECORDER` is the zero-overhead default — every
  instrumentation point is a no-op until a real recorder is installed,
  either explicitly (``trace=`` on any executor or the
  :func:`repro.executor.create` factory) or ambiently via :func:`use`.

Typical use::

    from repro import obs
    from repro.executor import create

    rec = obs.TraceRecorder()
    ex = create("threads", cores=4, trace=rec)
    ...
    obs.ChromeTraceSink.write_events(rec.events(), "trace.json")

or ambiently, which is what ``python -m repro trace <experiment>`` does::

    with obs.use(obs.TraceRecorder()) as rec:
        run_experiment()
    print(rec.metrics.render())

On top of recording sits the *analytics* layer (this package's other
half, used by ``python -m repro analyze`` / ``compare``):

* :func:`analyze_trace` (:mod:`repro.obs.analyze`) reconstructs the
  task timeline from an event stream and computes work/span/parallelism,
  per-worker utilization, steal and contention statistics, and
  Amdahl/Gustafson speedup-model fits (:func:`fit_speedup_models`);
* :func:`render_text` / :func:`render_html` (:mod:`repro.obs.report`)
  turn an analysis into a terminal summary or a self-contained HTML
  report with an SVG Gantt timeline;
* :mod:`repro.obs.baseline` persists analyzed metrics per experiment
  and gates regressions (:func:`compare_to_baseline`);
* :mod:`repro.obs.rtrace` traces individual served requests through
  the gateway's stage chain and :mod:`repro.obs.slo` evaluates
  declarative objectives (with burn-rate windows) over the result —
  :func:`render_waterfall` draws the slowest requests stage by stage;
* :mod:`repro.obs.store` keeps every analyzed/benchmarked/served run
  as a :class:`RunRecord` in a sharded append-only JSONL store with a
  query/aggregate API, and :mod:`repro.obs.timeline` reads that
  history back as per-metric trajectories with direction-aware
  change-point detection (``python -m repro runs ...``).
"""

from repro.obs.analyze import (
    BarrierWait,
    GroupAnalysis,
    LatencyStats,
    LockContention,
    SpeedupFit,
    StageLatency,
    TaskSpan,
    TraceAnalysis,
    WorkerUtilization,
    analyze_trace,
    decompose_stages,
    dominant_stage,
    fit_speedup_models,
)
from repro.obs.baseline import (
    DEFAULT_BASELINE_PATH,
    Comparison,
    MetricDelta,
    compare_to_baseline,
    load_baselines,
    metric_direction,
    save_baselines,
    update_baseline,
)
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics, NullMetrics
from repro.obs.report import render_html, render_text, render_waterfall
from repro.obs.rtrace import (
    STAGES,
    RequestSummary,
    RequestTrace,
    RequestTraceCollector,
    use_rtrace,
)
from repro.obs.shards import merge_shards, read_shard, replay_into, shard_path
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    Objective,
    ObjectiveResult,
    SLOVerdict,
    evaluate_slo,
    parse_objective,
)
from repro.obs.sinks import ChromeTraceSink, JsonlSink, MemorySink, Sink
from repro.obs.store import (
    RUN_KINDS,
    Aggregate,
    RunRecord,
    RunStore,
    aggregate,
    current_stamp,
    emit_metrics,
    ingest_snapshots,
    use_clock,
)
from repro.obs.timeline import (
    Changepoint,
    MetricSeries,
    TimelinePoint,
    build_timeline,
    detect_changepoints,
    render_timeline_html,
    render_timeline_text,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    current_recorder,
    resolve_recorder,
    use,
)

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "resolve_recorder",
    "use",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "Metrics",
    "NullMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    # analytics
    "TaskSpan",
    "WorkerUtilization",
    "LockContention",
    "BarrierWait",
    "LatencyStats",
    "GroupAnalysis",
    "SpeedupFit",
    "TraceAnalysis",
    "analyze_trace",
    "fit_speedup_models",
    # cross-process shards
    "merge_shards",
    "read_shard",
    "replay_into",
    "shard_path",
    "render_text",
    "render_html",
    "render_waterfall",
    # request tracing + SLOs
    "STAGES",
    "RequestTrace",
    "RequestSummary",
    "RequestTraceCollector",
    "use_rtrace",
    "StageLatency",
    "decompose_stages",
    "dominant_stage",
    "DEFAULT_OBJECTIVES",
    "Objective",
    "ObjectiveResult",
    "SLOVerdict",
    "evaluate_slo",
    "parse_objective",
    "DEFAULT_BASELINE_PATH",
    "MetricDelta",
    "Comparison",
    "metric_direction",
    "load_baselines",
    "save_baselines",
    "update_baseline",
    "compare_to_baseline",
    # run-history store + cross-run timelines
    "RUN_KINDS",
    "RunRecord",
    "RunStore",
    "Aggregate",
    "aggregate",
    "use_clock",
    "current_stamp",
    "ingest_snapshots",
    "emit_metrics",
    "TimelinePoint",
    "Changepoint",
    "MetricSeries",
    "build_timeline",
    "detect_changepoints",
    "render_timeline_text",
    "render_timeline_html",
]
