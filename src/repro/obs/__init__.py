"""Observability: structured tracing and metrics for every execution layer.

The paper's pedagogy rests on students *seeing* parallel behaviour —
speedup shapes, steal counts, GUI latency under load (paper §III-B,
§IV-B/C) — so the runtime layers emit what they actually did:

* :class:`TraceRecorder` collects :class:`TraceEvent` records (task
  submit/start/end with task ids, work-steal events, critical-section
  spans, barrier rendezvous, EDT service latency) into a pluggable
  :class:`Sink` — in-memory for tests, JSONL for logs, or Chrome
  ``trace_event`` JSON loadable in ``chrome://tracing`` / Perfetto;
* :class:`Metrics` is a registry of counters, gauges and histograms
  (percentile summaries reuse :func:`repro.util.stats.summarize`);
* :data:`NULL_RECORDER` is the zero-overhead default — every
  instrumentation point is a no-op until a real recorder is installed,
  either explicitly (``trace=`` on any executor or the
  :func:`repro.executor.create` factory) or ambiently via :func:`use`.

Typical use::

    from repro import obs
    from repro.executor import create

    rec = obs.TraceRecorder()
    ex = create("threads", cores=4, trace=rec)
    ...
    obs.ChromeTraceSink.write_events(rec.events(), "trace.json")

or ambiently, which is what ``python -m repro trace <experiment>`` does::

    with obs.use(obs.TraceRecorder()) as rec:
        run_experiment()
    print(rec.metrics.render())
"""

from repro.obs.metrics import Counter, Gauge, Histogram, Metrics, NullMetrics
from repro.obs.sinks import ChromeTraceSink, JsonlSink, MemorySink, Sink
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    current_recorder,
    resolve_recorder,
    use,
)

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "resolve_recorder",
    "use",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "Metrics",
    "NullMetrics",
    "Counter",
    "Gauge",
    "Histogram",
]
