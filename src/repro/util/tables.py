"""Plain-text table rendering for benchmark reports.

Benchmarks regenerate the paper's figures as text tables; this renderer is
the single formatting path so every bench target prints a consistent,
diff-able report.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Table"]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """Accumulate rows, render as an aligned ASCII (or Markdown) table.

    >>> t = Table(["cores", "speedup"], title="quicksort")
    >>> t.add_row([1, 1.0]); t.add_row([4, 3.2])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None, precision: int = 3) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.precision = precision
        self.rows: list[list[object]] = []

    def add_row(self, row: Sequence[object]) -> "Table":
        if len(row) != len(self.columns):
            raise ValueError(f"row has {len(row)} cells, table has {len(self.columns)} columns")
        self.rows.append(list(row))
        return self

    def extend(self, rows: Iterable[Sequence[object]]) -> "Table":
        for row in rows:
            self.add_row(row)
        return self

    def _cells(self) -> list[list[str]]:
        return [[_fmt(c, self.precision) for c in row] for row in self.rows]

    def render(self) -> str:
        """Aligned plain-text table (the bench report format)."""
        cells = self._cells()
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        lines.append(header)
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """The same table as GitHub-flavoured Markdown."""
        cells = self._cells()
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in cells:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name (raw values)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return self.render()
