"""Clock abstractions shared by real and simulated execution.

The library runs the same code under wall-clock time (real threads) and
virtual time (the discrete-event simulator).  Components that need "now"
take a :class:`Clock` so they work under either regime.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "WallClock", "ManualClock", "Stopwatch"]


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now()`` returning seconds as ``float``."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class WallClock:
    """Monotonic wall-clock time."""

    def now(self) -> float:
        return time.monotonic()

    def __repr__(self) -> str:
        return "WallClock()"


class ManualClock:
    """A clock advanced explicitly; the simulator owns one of these.

    Time never goes backwards: :meth:`advance_to` with an earlier time
    raises ``ValueError`` — this guards the simulator's core invariant.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds (must be >= 0); return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt!r}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` (must be >= now)."""
        if t < self._now:
            raise ValueError(f"cannot move clock backwards: now={self._now}, requested={t}")
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:
        return f"ManualClock(now={self._now!r})"


class Stopwatch:
    """Accumulating stopwatch over any :class:`Clock`.

    >>> clock = ManualClock()
    >>> sw = Stopwatch(clock)
    >>> sw.start(); _ = clock.advance(2.0); sw.stop()
    >>> sw.elapsed
    2.0
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        self.elapsed: float = 0.0
        self._started_at: float | None = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = self.clock.now()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += self.clock.now() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
