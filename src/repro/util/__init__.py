"""Shared infrastructure: seeded randomness, clocks, statistics, tables.

Everything in :mod:`repro` that needs randomness derives it from
:func:`repro.util.rng.derive` so that experiments are reproducible from a
single seed, as the benchmark harness requires.
"""

from repro.util.rng import derive, spawn_seeds
from repro.util.stats import (
    Summary,
    amdahl_speedup,
    efficiency,
    gustafson_speedup,
    karp_flatt,
    speedup,
    summarize,
)
from repro.util.stopwatch import ManualClock, Stopwatch, WallClock
from repro.util.tables import Table

__all__ = [
    "derive",
    "spawn_seeds",
    "Summary",
    "summarize",
    "speedup",
    "efficiency",
    "amdahl_speedup",
    "gustafson_speedup",
    "karp_flatt",
    "WallClock",
    "ManualClock",
    "Stopwatch",
    "Table",
]
