"""Summary statistics and parallel-performance metrics.

The benchmark harness reports speedup/efficiency series for every project
experiment; the analytical models (Amdahl, Gustafson, Karp–Flatt) are
provided as overlays so bench output can show measured-vs-model shape, as
taught in weeks 1–5 of SoftEng 751.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Summary",
    "summarize",
    "speedup",
    "efficiency",
    "amdahl_speedup",
    "gustafson_speedup",
    "karp_flatt",
]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95% CI on the mean."""
        if self.n <= 1:
            return math.inf if self.n == 0 else 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g}±{self.ci95_halfwidth:.2g} "
            f"median={self.median:.4g} p95={self.p95:.4g} "
            f"range=[{self.minimum:.4g}, {self.maximum:.4g}]"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Summarize a sample; raises ``ValueError`` on an empty sample."""
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(samples, dtype=float)
    q = np.percentile(arr, [25, 50, 75, 95])
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p25=float(q[0]),
        median=float(q[1]),
        p75=float(q[2]),
        p95=float(q[3]),
        maximum=float(arr.max()),
    )


def speedup(t_serial: float, t_parallel: float) -> float:
    """Classic speedup S = T1 / Tp."""
    if t_parallel <= 0:
        raise ValueError(f"parallel time must be positive, got {t_parallel!r}")
    if t_serial < 0:
        raise ValueError(f"serial time must be non-negative, got {t_serial!r}")
    return t_serial / t_parallel


def efficiency(t_serial: float, t_parallel: float, cores: int) -> float:
    """Parallel efficiency E = S / p."""
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores!r}")
    return speedup(t_serial, t_parallel) / cores


def amdahl_speedup(serial_fraction: float, cores: int) -> float:
    """Amdahl's law: S(p) = 1 / (f + (1-f)/p) for serial fraction ``f``."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial fraction must be in [0,1], got {serial_fraction!r}")
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores!r}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / cores)


def gustafson_speedup(serial_fraction: float, cores: int) -> float:
    """Gustafson's law: S(p) = p - f * (p - 1), scaled-workload speedup."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial fraction must be in [0,1], got {serial_fraction!r}")
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores!r}")
    return cores - serial_fraction * (cores - 1)


def karp_flatt(measured_speedup: float, cores: int) -> float:
    """Karp–Flatt experimentally determined serial fraction.

    e = (1/S - 1/p) / (1 - 1/p).  Undefined for p == 1.
    """
    if cores <= 1:
        raise ValueError("Karp-Flatt metric requires cores > 1")
    if measured_speedup <= 0:
        raise ValueError(f"speedup must be positive, got {measured_speedup!r}")
    return (1.0 / measured_speedup - 1.0 / cores) / (1.0 - 1.0 / cores)
