"""Deterministic random-stream derivation.

Every stochastic component in the library (workload generators, the course
simulation, the network model) takes an explicit seed or
:class:`numpy.random.Generator`.  To keep independent components
*independently* reproducible we derive named substreams from a root seed
rather than sharing one generator: changing how many draws one component
makes must not perturb another component's stream.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

__all__ = ["derive", "spawn_seeds", "stable_hash"]


def stable_hash(*parts: object) -> int:
    """Hash ``parts`` to a 64-bit integer, stably across processes.

    Python's builtin :func:`hash` is salted per-process for strings, so it
    cannot be used to derive reproducible seeds.  This uses BLAKE2b over the
    ``repr`` of each part.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(h.digest(), "big")


def derive(seed: int, *names: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for substream ``names``.

    ``derive(seed, "images")`` and ``derive(seed, "network")`` are
    statistically independent streams, and each is a pure function of
    ``(seed, names)``.

    Parameters
    ----------
    seed:
        Root experiment seed.
    names:
        Arbitrary hashable labels identifying the substream, e.g.
        ``derive(seed, "student", 17)``.
    """
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, stable_hash(*names) & 0xFFFFFFFF]))


def spawn_seeds(seed: int, n: int, *names: object) -> Iterator[int]:
    """Yield ``n`` independent integer seeds derived from ``seed``.

    Useful when handing seeds across an API boundary that takes ``int``
    seeds (e.g. per-worker or per-trial seeds).
    """
    rng = derive(seed, "spawn_seeds", *names)
    for _ in range(n):
        yield int(rng.integers(0, 2**63 - 1))
