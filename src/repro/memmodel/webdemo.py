"""Interactive web pages explaining race conditions (paper §V-B).

Among the course's research outcomes the paper lists "pedagogical
contributions in the form of interactive webpages that helped explain
typical race conditions and other parallel programming pitfalls".  This
module regenerates that artefact: for any snippet it renders a single
self-contained HTML file (inline CSS + vanilla JS, no network) where a
student can step through interleavings instruction by instruction,
watch registers/memory/store-buffers evolve, and compare the outcome
set across memory models.

The interleavings embedded in the page are produced by the same
interpreter the tests use, so the web demo can never drift from the
model's semantics.
"""

from __future__ import annotations

import html
import json
from pathlib import Path

from repro.memmodel.interpreter import Interpreter, _initial_state, explore
from repro.memmodel.program import Program
from repro.memmodel.snippets import SNIPPETS, Snippet

__all__ = ["render_snippet_page", "render_index", "write_demo_site"]

_MODELS = ("sc", "tso", "relaxed")


def _trace_schedule(program: Program, model: str, choose) -> list[dict]:
    """Run one schedule, emitting a JSON-able step log for the widget."""
    interp = Interpreter(program, model)
    state = _initial_state(program)
    steps: list[dict] = []
    while True:
        moves = list(interp.transitions(state))
        if not moves:
            break
        label, state, _event = moves[choose(len(moves), steps)]
        pcs, regs, buffers, mem, _locks = state
        steps.append(
            {
                "label": label,
                "pcs": list(pcs),
                "regs": [dict(r) for r in regs],
                "buffers": [[list(p) for p in b] for b in buffers],
                "mem": dict(mem),
            }
        )
        if len(steps) > 500:  # hard stop; snippets are tiny
            break
    return steps


def _schedules_for(program: Program, model: str) -> dict[str, list[dict]]:
    """A handful of named schedules: round-robin, each-thread-first."""
    n = program.n_threads

    def round_robin(k: int, steps: list[dict]) -> int:
        return len(steps) % k if k else 0

    out = {"round-robin": _trace_schedule(program, model, round_robin)}
    for t in range(n):
        out[f"thread-{t}-first"] = _trace_thread_first(program, model, t)
    return out


def _trace_thread_first(program: Program, model: str, prefer: int) -> list[dict]:
    interp = Interpreter(program, model)
    state = _initial_state(program)
    steps: list[dict] = []
    while True:
        moves = list(interp.transitions(state))
        if not moves:
            break
        preferred = [m for m in moves if m[0].startswith(f"t{prefer}:")]
        label, state, _event = (preferred or moves)[0]
        pcs, regs, buffers, mem, _locks = state
        steps.append(
            {
                "label": label,
                "pcs": list(pcs),
                "regs": [dict(r) for r in regs],
                "buffers": [[list(p) for p in b] for b in buffers],
                "mem": dict(mem),
            }
        )
        if len(steps) > 500:
            break
    return steps


_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font-family: system-ui, sans-serif; margin: 2rem; max-width: 60rem; }}
  h1 {{ font-size: 1.4rem; }}
  .lesson {{ background: #fdf6e3; border-left: 4px solid #b58900; padding: .6rem 1rem; }}
  .threads {{ display: flex; gap: 2rem; margin: 1rem 0; }}
  .thread {{ border: 1px solid #ccc; border-radius: 6px; padding: .5rem 1rem; }}
  .thread ol {{ margin: .3rem 0; padding-left: 1.4rem; }}
  .thread li.done {{ color: #999; text-decoration: line-through; }}
  .thread li.next {{ font-weight: bold; color: #268bd2; }}
  table.state {{ border-collapse: collapse; margin: .6rem 0; }}
  table.state td, table.state th {{ border: 1px solid #bbb; padding: .2rem .6rem; }}
  .controls button {{ font-size: 1rem; margin-right: .5rem; }}
  .outcomes {{ margin-top: 1.5rem; }}
  .bad {{ color: #dc322f; font-weight: bold; }}
  .ok {{ color: #859900; }}
  .log {{ font-family: monospace; font-size: .85rem; background: #f4f4f4;
         padding: .5rem; max-height: 10rem; overflow: auto; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p class="lesson">{lesson}</p>
<p><b>buggy:</b> {buggy} &nbsp; <b>racy (by happens-before):</b> {racy}</p>

<h2>The program</h2>
<div class="threads">{threads_html}</div>
<p>initial shared memory: <code>{shared}</code></p>

<h2>Step through an interleaving</h2>
<p>
  memory model:
  <select id="model">{model_options}</select>
  schedule:
  <select id="schedule"></select>
</p>
<div class="controls">
  <button id="step">step</button>
  <button id="run">run to end</button>
  <button id="reset">reset</button>
</div>
<table class="state">
  <tr><th>virtual machine</th><th>value</th></tr>
  <tr><td>shared memory</td><td id="mem"></td></tr>
  <tr><td>registers</td><td id="regs"></td></tr>
  <tr><td>store buffers</td><td id="bufs"></td></tr>
</table>
<div class="log" id="log"></div>

<div class="outcomes">
<h2>All possible outcomes (exhaustive)</h2>
{outcomes_html}
</div>

<script>
const SCHEDULES = {schedules_json};
const PROGRAM_LENGTHS = {lengths_json};
let cursor = 0;

function currentTrace() {{
  const model = document.getElementById('model').value;
  const sched = document.getElementById('schedule').value;
  return SCHEDULES[model][sched] || [];
}}
function refreshScheduleOptions() {{
  const model = document.getElementById('model').value;
  const sel = document.getElementById('schedule');
  const keep = sel.value;
  sel.innerHTML = '';
  for (const name of Object.keys(SCHEDULES[model])) {{
    const opt = document.createElement('option');
    opt.value = name; opt.textContent = name;
    sel.appendChild(opt);
  }}
  if (keep && SCHEDULES[model][keep]) sel.value = keep;
  reset();
}}
function render() {{
  const trace = currentTrace();
  const state = cursor > 0 ? trace[cursor - 1] : null;
  document.getElementById('mem').textContent =
      state ? JSON.stringify(state.mem) : '(initial)';
  document.getElementById('regs').textContent =
      state ? JSON.stringify(state.regs) : '{{}}';
  document.getElementById('bufs').textContent =
      state ? JSON.stringify(state.buffers) : '[]';
  const log = document.getElementById('log');
  log.innerHTML = trace.slice(0, cursor).map(s => s.label).join('<br>');
  log.scrollTop = log.scrollHeight;
  const pcs = state ? state.pcs : PROGRAM_LENGTHS.map(() => 0);
  document.querySelectorAll('.thread').forEach((div, t) => {{
    div.querySelectorAll('li').forEach((li, i) => {{
      li.className = i < pcs[t] ? 'done' : (i === pcs[t] ? 'next' : '');
    }});
  }});
}}
function step() {{
  if (cursor < currentTrace().length) cursor++;
  render();
}}
function reset() {{ cursor = 0; render(); }}
document.getElementById('step').onclick = step;
document.getElementById('run').onclick = () => {{ cursor = currentTrace().length; render(); }};
document.getElementById('reset').onclick = reset;
document.getElementById('model').onchange = refreshScheduleOptions;
document.getElementById('schedule').onchange = reset;
refreshScheduleOptions();
</script>
</body>
</html>
"""


def render_snippet_page(snippet: Snippet) -> str:
    """The full HTML for one snippet's interactive page."""
    program = snippet.program

    threads_html = "".join(
        '<div class="thread"><b>thread {t}</b><ol>{items}</ol></div>'.format(
            t=t,
            items="".join(f"<li><code>{html.escape(str(ins))}</code></li>" for ins in instrs),
        )
        for t, instrs in enumerate(program.threads)
    )

    schedules = {model: _schedules_for(program, model) for model in _MODELS}
    model_options = "".join(f'<option value="{m}">{m}</option>' for m in _MODELS)

    outcome_blocks = []
    for model in _MODELS:
        result = explore(program, model)
        items = "".join(
            f'<li class="{"bad" if o.deadlocked else "ok"}">{html.escape(str(o))}</li>'
            for o in sorted(result.outcomes, key=str)
        )
        outcome_blocks.append(
            f"<h3>{model} ({len(result.outcomes)} outcomes)</h3><ul>{items}</ul>"
        )

    return _PAGE_TEMPLATE.format(
        title=f"parallel pitfall: {html.escape(snippet.name)}",
        lesson=html.escape(snippet.lesson),
        buggy="yes" if snippet.buggy else "no",
        racy="yes" if snippet.racy else "no",
        threads_html=threads_html,
        shared=html.escape(json.dumps(program.shared)),
        model_options=model_options,
        schedules_json=json.dumps(schedules),
        lengths_json=json.dumps([len(t) for t in program.threads]),
        outcomes_html="".join(outcome_blocks),
    )


def render_index(snippet_names: list[str]) -> str:
    """An index page linking every generated snippet page."""
    items = []
    for name in snippet_names:
        snippet = SNIPPETS[name]
        fix = f" (fixes: {snippet.fix_of})" if snippet.fix_of else ""
        items.append(
            f'<li><a href="{name}.html">{html.escape(name)}</a> - '
            f"{html.escape(snippet.lesson)}{fix}</li>"
        )
    body = "".join(items)
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>parallel programming pitfalls</title></head><body>"
        "<h1>Parallel programming pitfalls, interactively</h1>"
        "<p>Generated from the repro.memmodel snippets "
        "(the SIV-C project 8 / SV-B pedagogical outcome).</p>"
        f"<ul>{body}</ul></body></html>"
    )


def write_demo_site(out_dir: str | Path, names: list[str] | None = None) -> list[Path]:
    """Write the pages (+ index.html) to ``out_dir``; returns paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    names = list(names if names is not None else SNIPPETS)
    written: list[Path] = []
    for name in names:
        if name not in SNIPPETS:
            raise KeyError(f"unknown snippet {name!r}; known: {sorted(SNIPPETS)}")
        path = out / f"{name}.html"
        path.write_text(render_snippet_page(SNIPPETS[name]), encoding="utf-8")
        written.append(path)
    index = out / "index.html"
    index.write_text(render_index(names), encoding="utf-8")
    written.append(index)
    return written
