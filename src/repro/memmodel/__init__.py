"""Memory-model exploration: project 8 made executable.

Project 8 ("Understanding and coping with the Java memory model") had
students build code snippets that *demonstrate* typical parallelisation
problems — races, lost updates, visibility stalls — and write up how to
avoid them.  This package is that artefact as a library:

* a tiny thread-program DSL (:mod:`repro.memmodel.program`);
* an exhaustive interleaving explorer (:mod:`repro.memmodel.interpreter`)
  under three memory models — ``sc`` (sequential consistency), ``tso``
  (FIFO store buffers, x86-like) and ``relaxed`` (out-of-order flushes,
  JMM-without-synchronisation-like) — so "can this outcome happen?"
  gets a definitive answer;
* a vector-clock happens-before race detector (:mod:`repro.memmodel.races`);
* the classic snippets, buggy and fixed (:mod:`repro.memmodel.snippets`).
"""

from repro.memmodel.interpreter import ExplorationResult, Interpreter, explore, random_runs
from repro.memmodel.program import (
    Program,
    add,
    atomic_add,
    exit_unless,
    fence,
    load,
    lock,
    store,
    unlock,
    volatile_load,
    volatile_store,
)
from repro.memmodel.races import Race, RaceDetector, detect_races
from repro.memmodel.snippets import SNIPPETS, Snippet
from repro.memmodel.webdemo import render_snippet_page, write_demo_site

__all__ = [
    "Program",
    "load",
    "store",
    "add",
    "atomic_add",
    "exit_unless",
    "fence",
    "lock",
    "unlock",
    "volatile_load",
    "volatile_store",
    "Interpreter",
    "explore",
    "random_runs",
    "ExplorationResult",
    "RaceDetector",
    "detect_races",
    "Race",
    "SNIPPETS",
    "Snippet",
    "render_snippet_page",
    "write_demo_site",
]
