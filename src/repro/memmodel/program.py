"""The thread-program DSL.

A program is a set of threads, each a straight-line list of instructions
over *shared variables* (by name) and *thread-private registers* (by
name).  Straight-line is deliberate: the litmus tests that teach memory
models (store buffering, message passing, lost update, double-checked
publication) all fit, and exhaustive exploration stays tractable.

>>> p = Program(
...     shared={"x": 0, "y": 0},
...     threads=[
...         [store("x", 1), load("r0", "y")],
...         [store("y", 1), load("r1", "x")],
...     ],
... )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

__all__ = [
    "Instruction",
    "Program",
    "load",
    "store",
    "add",
    "fence",
    "lock",
    "unlock",
    "volatile_load",
    "volatile_store",
]

Value = Union[int, str]  # int literal or register name


@dataclass(frozen=True)
class Instruction:
    """One step of a thread.  ``op`` selects semantics (see interpreter)."""

    op: str
    var: str | None = None  # shared variable (load/store/volatile)
    reg: str | None = None  # destination register (loads) / none
    src: Value | None = None  # store source: int literal or register name
    name: str | None = None  # lock name

    def __str__(self) -> str:
        if self.op in ("load", "volatile_load"):
            v = "v" if self.op.startswith("volatile") else ""
            return f"{self.reg} = {v}read({self.var})"
        if self.op in ("store", "volatile_store"):
            v = "v" if self.op.startswith("volatile") else ""
            return f"{v}write({self.var}, {self.src})"
        if self.op == "add":
            return f"{self.reg} += {self.src}"
        if self.op in ("lock", "unlock"):
            return f"{self.op}({self.name})"
        if self.op == "exit_unless":
            return f"exit unless {self.reg} == {self.src}"
        if self.op == "atomic_add":
            return f"atomic {self.var} += {self.src}"
        return self.op


def load(reg: str, var: str) -> Instruction:
    """``reg = var`` (ordinary read; may see stale values under relaxation)."""
    return Instruction(op="load", var=var, reg=reg)


def store(var: str, src: Value) -> Instruction:
    """``var = src`` (ordinary write; may sit in a store buffer)."""
    return Instruction(op="store", var=var, src=src)


def volatile_load(reg: str, var: str) -> Instruction:
    """Volatile read: drains the reader's store buffer first (acquire-ish)."""
    return Instruction(op="volatile_load", var=var, reg=reg)


def volatile_store(var: str, src: Value) -> Instruction:
    """Volatile write: goes straight to memory and drains the buffer."""
    return Instruction(op="volatile_store", var=var, src=src)


def add(reg: str, amount: Value) -> Instruction:
    """``reg += amount`` (register-only arithmetic)."""
    return Instruction(op="add", reg=reg, src=amount)


def fence() -> Instruction:
    """Full fence: drains this thread's store buffer."""
    return Instruction(op="fence")


def atomic_add(var: str, delta: Value) -> Instruction:
    """``var += delta`` as one indivisible step (AtomicInteger-style).

    Like a volatile RMW in Java: it drains the store buffer, reads and
    writes memory atomically, and synchronises-with other atomic
    accesses of the same variable — the "atomic variables" fix option
    from the project-8 write-up.
    """
    return Instruction(op="atomic_add", var=var, src=delta)


def exit_unless(reg: str, value: Value) -> Instruction:
    """Guard: if ``reg != value`` the thread stops here (skips the rest).

    The DSL's one control-flow construct — enough to express the guarded
    reads that make the "fixed" snippets genuinely race-free (reading
    data only after observing the flag), without general loops that
    would blow up exhaustive exploration.
    """
    return Instruction(op="exit_unless", reg=reg, src=value)


def lock(name: str = "m") -> Instruction:
    """Acquire monitor ``name`` (blocks; drains buffer, like Java entry)."""
    return Instruction(op="lock", name=name)


def unlock(name: str = "m") -> Instruction:
    """Release monitor ``name`` (drains buffer, like Java exit)."""
    return Instruction(op="unlock", name=name)


@dataclass(frozen=True)
class Program:
    """Threads plus initial shared-variable values."""

    shared: dict[str, int]
    threads: tuple[tuple[Instruction, ...], ...]
    name: str = "program"

    def __init__(
        self,
        shared: dict[str, int],
        threads: Sequence[Sequence[Instruction]],
        name: str = "program",
    ) -> None:
        object.__setattr__(self, "shared", dict(shared))
        object.__setattr__(self, "threads", tuple(tuple(t) for t in threads))
        object.__setattr__(self, "name", name)
        self._validate()

    def _validate(self) -> None:
        if not self.threads:
            raise ValueError("program needs at least one thread")
        for t, instrs in enumerate(self.threads):
            held: set[str] = set()
            for ins in instrs:
                if ins.op in ("load", "store", "volatile_load", "volatile_store"):
                    if ins.var not in self.shared:
                        raise ValueError(
                            f"thread {t}: unknown shared variable {ins.var!r} "
                            f"(declare it in shared=)"
                        )
                if ins.op == "lock":
                    if ins.name in held:
                        raise ValueError(f"thread {t}: relock of held {ins.name!r}")
                    held.add(ins.name)  # type: ignore[arg-type]
                if ins.op == "unlock":
                    if ins.name not in held:
                        raise ValueError(f"thread {t}: unlock of unheld {ins.name!r}")
                    held.discard(ins.name)  # type: ignore[arg-type]
            if held:
                raise ValueError(f"thread {t}: locks never released: {sorted(held)}")

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def total_instructions(self) -> int:
        return sum(len(t) for t in self.threads)

    def __str__(self) -> str:
        lines = [f"program {self.name!r}: shared={self.shared}"]
        for t, instrs in enumerate(self.threads):
            lines.append(f"  thread {t}: " + "; ".join(str(i) for i in instrs))
        return "\n".join(lines)
