"""Exhaustive and randomised execution of thread programs.

Three memory models, ordered by weakness:

* ``sc`` — stores hit memory immediately (the intuition students start
  with);
* ``tso`` — each thread has a FIFO store buffer; loads snoop their own
  buffer; buffered stores drain to memory at nondeterministic points
  (x86-like; allows the store-buffering litmus outcome);
* ``relaxed`` — the buffer drains *out of order* (per-variable
  reordering, PSO/JMM-without-sync-like; additionally allows the
  message-passing litmus outcome).

Synchronisation (``lock``/``unlock``/``volatile_*``/``fence``) drains
the executing thread's buffer, which is exactly why it fixes the bugs.

:func:`explore` enumerates every reachable interleaving (DFS with state
memoisation) and returns the set of terminal outcomes — the definitive
"can x==0 happen?" answer.  :func:`random_runs` samples schedules for
outcome *frequencies*, the demo students actually watch, and can record
access traces for the race detector.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterator


from repro.memmodel.program import Instruction, Program
from repro.util.rng import derive

__all__ = ["Outcome", "ExplorationResult", "Interpreter", "explore", "random_runs", "TraceEvent"]

_MODELS = ("sc", "tso", "relaxed")


@dataclass(frozen=True)
class Outcome:
    """Terminal state of one complete execution."""

    shared: tuple[tuple[str, int], ...]
    registers: tuple[tuple[tuple[str, int], ...], ...]
    deadlocked: bool = False

    def get(self, var: str) -> int:
        for k, v in self.shared:
            if k == var:
                return v
        raise KeyError(var)

    def reg(self, tid: int, name: str) -> int:
        for k, v in self.registers[tid]:
            if k == name:
                return v
        return 0

    def __str__(self) -> str:
        mem = ", ".join(f"{k}={v}" for k, v in self.shared)
        regs = "; ".join(
            f"t{t}:" + ",".join(f"{k}={v}" for k, v in r) for t, r in enumerate(self.registers) if r
        )
        tag = " DEADLOCK" if self.deadlocked else ""
        return f"<{mem} | {regs}{tag}>"


@dataclass(frozen=True)
class TraceEvent:
    """One memory/sync event of an execution, for the race detector."""

    tid: int
    kind: str  # read | write | vread | vwrite | lock | unlock
    target: str


@dataclass
class ExplorationResult:
    model: str
    outcomes: set[Outcome]
    states_explored: int

    def shared_values(self, var: str) -> set[int]:
        return {o.get(var) for o in self.outcomes if not o.deadlocked}

    def register_values(self, tid: int, reg: str) -> set[int]:
        return {o.reg(tid, reg) for o in self.outcomes if not o.deadlocked}

    @property
    def has_deadlock(self) -> bool:
        return any(o.deadlocked for o in self.outcomes)

    def allows(self, **shared_values: int) -> bool:
        """True if some non-deadlocked outcome has all the given values."""
        return any(
            not o.deadlocked and all(o.get(k) == v for k, v in shared_values.items())
            for o in self.outcomes
        )


# -- machine state ----------------------------------------------------------------

_State = tuple  # (pcs, regs, buffers, mem, locks)


def _initial_state(program: Program) -> _State:
    pcs = tuple(0 for _ in program.threads)
    regs = tuple(() for _ in program.threads)
    buffers = tuple(() for _ in program.threads)
    mem = tuple(sorted(program.shared.items()))
    locks: tuple = ()
    return (pcs, regs, buffers, mem, locks)


def _mem_get(mem: tuple, var: str) -> int:
    for k, v in mem:
        if k == var:
            return v
    raise KeyError(var)


def _mem_set(mem: tuple, var: str, value: int) -> tuple:
    return tuple((k, value if k == var else v) for k, v in mem)


def _reg_get(regs: tuple, name: str) -> int:
    for k, v in regs:
        if k == name:
            return v
    return 0


def _reg_set(regs: tuple, name: str, value: int) -> tuple:
    out = [(k, v) for k, v in regs if k != name]
    out.append((name, value))
    return tuple(sorted(out))


def _resolve(src: Any, regs: tuple) -> int:
    if isinstance(src, str):
        return _reg_get(regs, src)
    return int(src)


def _buffer_lookup(buffer: tuple, var: str) -> int | None:
    """Latest buffered value for ``var`` (program order), else None."""
    for k, v in reversed(buffer):
        if k == var:
            return v
    return None


def _flush_all(mem: tuple, buffer: tuple) -> tuple:
    for var, value in buffer:
        mem = _mem_set(mem, var, value)
    return mem


class Interpreter:
    """Stepper over program states under one memory model."""

    def __init__(self, program: Program, model: str = "sc") -> None:
        if model not in _MODELS:
            raise ValueError(f"unknown model {model!r}; expected one of {_MODELS}")
        self.program = program
        self.model = model

    # -- transitions ---------------------------------------------------------------

    def transitions(self, state: _State) -> Iterator[tuple[str, _State, TraceEvent | None]]:
        """All enabled (label, next_state, trace_event) moves from ``state``."""
        pcs, regs, buffers, mem, locks = state
        held = dict(locks)
        for t, instrs in enumerate(self.program.threads):
            pc = pcs[t]
            # instruction step
            if pc < len(instrs):
                ins = instrs[pc]
                stepped = self._step_instruction(state, t, ins)
                if stepped is not None:
                    yield (f"t{t}:{ins}", stepped[0], stepped[1])
            # flush steps (buffered models only)
            if self.model != "sc" and buffers[t]:
                if self.model == "tso":
                    flush_indices = [0]  # FIFO: head only
                else:  # relaxed: any buffered store may drain next
                    flush_indices = list(range(len(buffers[t])))
                for i in flush_indices:
                    var, value = buffers[t][i]
                    new_buf = buffers[t][:i] + buffers[t][i + 1 :]
                    new_state = (
                        pcs,
                        regs,
                        buffers[:t] + (new_buf,) + buffers[t + 1 :],
                        _mem_set(mem, var, value),
                        locks,
                    )
                    yield (f"t{t}:flush({var})", new_state, None)

    def _step_instruction(
        self, state: _State, t: int, ins: Instruction
    ) -> tuple[_State, TraceEvent | None] | None:
        pcs, regs, buffers, mem, locks = state
        my_regs = regs[t]
        my_buf = buffers[t]
        new_mem = mem
        new_locks = locks
        event: TraceEvent | None = None

        if ins.op == "load":
            buffered = _buffer_lookup(my_buf, ins.var) if self.model != "sc" else None
            value = buffered if buffered is not None else _mem_get(mem, ins.var)
            my_regs = _reg_set(my_regs, ins.reg, value)
            event = TraceEvent(t, "read", ins.var)
        elif ins.op == "store":
            value = _resolve(ins.src, my_regs)
            if self.model == "sc":
                new_mem = _mem_set(mem, ins.var, value)
            else:
                my_buf = my_buf + ((ins.var, value),)
            event = TraceEvent(t, "write", ins.var)
        elif ins.op == "volatile_load":
            new_mem = _flush_all(mem, my_buf)
            my_buf = ()
            value = _mem_get(new_mem, ins.var)
            my_regs = _reg_set(my_regs, ins.reg, value)
            event = TraceEvent(t, "vread", ins.var)
        elif ins.op == "volatile_store":
            new_mem = _flush_all(mem, my_buf)
            my_buf = ()
            new_mem = _mem_set(new_mem, ins.var, _resolve(ins.src, my_regs))
            event = TraceEvent(t, "vwrite", ins.var)
        elif ins.op == "add":
            value = _reg_get(my_regs, ins.reg) + _resolve(ins.src, my_regs)
            my_regs = _reg_set(my_regs, ins.reg, value)
        elif ins.op == "fence":
            new_mem = _flush_all(mem, my_buf)
            my_buf = ()
        elif ins.op == "atomic_add":
            new_mem = _flush_all(mem, my_buf)
            my_buf = ()
            value = _mem_get(new_mem, ins.var) + _resolve(ins.src, my_regs)
            new_mem = _mem_set(new_mem, ins.var, value)
            event = TraceEvent(t, "atomic", ins.var)
        elif ins.op == "exit_unless":
            if _reg_get(my_regs, ins.reg) != _resolve(ins.src, my_regs):
                # guard failed: thread exits (pc jumps past the end)
                exit_pc = len(self.program.threads[t])
                new_state = (
                    pcs[:t] + (exit_pc,) + pcs[t + 1 :],
                    regs,
                    buffers,
                    mem,
                    locks,
                )
                return new_state, None
        elif ins.op == "lock":
            held = dict(locks)
            if held.get(ins.name) is not None:
                return None  # blocked
            held[ins.name] = t
            new_locks = tuple(sorted(held.items()))
            new_mem = _flush_all(mem, my_buf)
            my_buf = ()
            event = TraceEvent(t, "lock", ins.name)
        elif ins.op == "unlock":
            held = dict(locks)
            if held.get(ins.name) != t:
                return None  # not the holder: blocked forever (bug)
            held[ins.name] = None
            new_locks = tuple(sorted(held.items()))
            new_mem = _flush_all(mem, my_buf)
            my_buf = ()
            event = TraceEvent(t, "unlock", ins.name)
        else:  # pragma: no cover - validated at construction
            raise ValueError(f"unknown op {ins.op!r}")

        new_state = (
            pcs[:t] + (pcs[t] + 1,) + pcs[t + 1 :],
            regs[:t] + (my_regs,) + regs[t + 1 :],
            buffers[:t] + (my_buf,) + buffers[t + 1 :],
            new_mem,
            new_locks,
        )
        return new_state, event

    # -- terminal handling -----------------------------------------------------------

    def is_terminal(self, state: _State) -> bool:
        pcs, _regs, buffers, _mem, _locks = state
        done = all(pc >= len(t) for pc, t in zip(pcs, self.program.threads))
        return done and all(not b for b in buffers)

    def outcome(self, state: _State, deadlocked: bool = False) -> Outcome:
        _pcs, regs, _buffers, mem, _locks = state
        return Outcome(shared=mem, registers=regs, deadlocked=deadlocked)


def explore(program: Program, model: str = "sc", max_states: int = 200_000) -> ExplorationResult:
    """Enumerate all reachable interleavings; return the outcome set."""
    interp = Interpreter(program, model)
    start = _initial_state(program)
    seen: set[_State] = {start}
    stack = [start]
    outcomes: set[Outcome] = set()
    while stack:
        state = stack.pop()
        moves = list(interp.transitions(state))
        if not moves:
            outcomes.add(interp.outcome(state, deadlocked=not interp.is_terminal(state)))
            continue
        for _label, nxt, _event in moves:
            if nxt not in seen:
                if len(seen) >= max_states:
                    raise RuntimeError(
                        f"state-space exceeds max_states={max_states} "
                        "(program too large for exhaustive exploration)"
                    )
                seen.add(nxt)
                stack.append(nxt)
    return ExplorationResult(model=model, outcomes=outcomes, states_explored=len(seen))


def random_runs(
    program: Program,
    model: str = "sc",
    runs: int = 200,
    seed: int = 0,
    collect_traces: bool = False,
) -> tuple[Counter, list[list[TraceEvent]]]:
    """Sample ``runs`` random schedules; outcome frequencies (+ traces).

    This is the form of the demo students run: "how often do we *see*
    the bad outcome?" — complementary to :func:`explore`'s "is it
    possible at all?".
    """
    interp = Interpreter(program, model)
    counts: Counter = Counter()
    traces: list[list[TraceEvent]] = []
    for run in range(runs):
        rng = derive(seed, "memmodel", program.name, model, run)
        state = _initial_state(program)
        trace: list[TraceEvent] = []
        while True:
            moves = list(interp.transitions(state))
            if not moves:
                counts[interp.outcome(state, deadlocked=not interp.is_terminal(state))] += 1
                break
            _label, state, event = moves[int(rng.integers(0, len(moves)))]
            if collect_traces and event is not None:
                trace.append(event)
        if collect_traces:
            traces.append(trace)
    return counts, traces
