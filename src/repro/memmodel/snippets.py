"""The classic teaching snippets, buggy and fixed.

These are the "code snippets that demonstrate how typical parallelisation
problems can occur" from project 8's brief, each paired with the
documented fix and the claims the tests/benches verify:

==========================  ===========================================
snippet                      claim
==========================  ===========================================
lost_update                  x can end at 1 (even under SC)
lost_update_locked           x always 2
store_buffering              r0=r1=0 impossible under SC, possible TSO
store_buffering_fenced       r0=r1=0 impossible again
message_passing              stale read impossible SC/TSO, possible relaxed
message_passing_volatile     stale read impossible everywhere
dirty_publication            reader can see half-built object (relaxed)
dirty_publication_volatile   reader sees all or nothing
deadlock_abba                AB-BA lock order deadlocks
deadlock_ordered             consistent order never deadlocks
==========================  ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memmodel.program import (
    Program,
    add,
    atomic_add,
    exit_unless,
    fence,
    load,
    lock,
    store,
    unlock,
    volatile_load,
    volatile_store,
)

__all__ = ["Snippet", "SNIPPETS"]


@dataclass(frozen=True)
class Snippet:
    """A teaching program plus its pedagogical metadata.

    ``buggy`` — wrong *outcomes* are possible (lost updates, stale reads,
    deadlock).  ``racy`` — the program has a *data race* by
    happens-before.  The two are distinct, and the distinction is itself
    a lesson: ``store_buffering_fenced`` has correct outcomes (the fence
    kills the reordering) yet remains formally racy — only the volatile
    variant removes the race.
    """

    name: str
    program: Program
    buggy: bool
    racy: bool
    lesson: str
    fix_of: str | None = None


def _lost_update() -> Program:
    """Two unsynchronised increments of a shared counter."""
    inc = [load("r", "x"), add("r", 1), store("x", "r")]
    return Program(shared={"x": 0}, threads=[inc, inc], name="lost_update")


def _lost_update_locked() -> Program:
    inc = [lock("m"), load("r", "x"), add("r", 1), store("x", "r"), unlock("m")]
    return Program(shared={"x": 0}, threads=[inc, inc], name="lost_update_locked")


def _lost_update_atomic() -> Program:
    inc = [atomic_add("x", 1)]
    return Program(shared={"x": 0}, threads=[inc, inc], name="lost_update_atomic")


def _store_buffering() -> Program:
    """Dekker's core: each thread stores its flag then reads the other's."""
    return Program(
        shared={"x": 0, "y": 0},
        threads=[
            [store("x", 1), load("r0", "y")],
            [store("y", 1), load("r1", "x")],
        ],
        name="store_buffering",
    )


def _store_buffering_fenced() -> Program:
    return Program(
        shared={"x": 0, "y": 0},
        threads=[
            [store("x", 1), fence(), load("r0", "y")],
            [store("y", 1), fence(), load("r1", "x")],
        ],
        name="store_buffering_fenced",
    )


def _store_buffering_volatile() -> Program:
    return Program(
        shared={"x": 0, "y": 0},
        threads=[
            [volatile_store("x", 1), volatile_load("r0", "y")],
            [volatile_store("y", 1), volatile_load("r1", "x")],
        ],
        name="store_buffering_volatile",
    )


def _message_passing() -> Program:
    """Producer writes data then flag; consumer reads flag then data."""
    return Program(
        shared={"data": 0, "flag": 0},
        threads=[
            [store("data", 42), store("flag", 1)],
            [load("rf", "flag"), exit_unless("rf", 1), load("rd", "data")],
        ],
        name="message_passing",
    )


def _message_passing_volatile() -> Program:
    return Program(
        shared={"data": 0, "flag": 0},
        threads=[
            [store("data", 42), volatile_store("flag", 1)],
            [volatile_load("rf", "flag"), exit_unless("rf", 1), load("rd", "data")],
        ],
        name="message_passing_volatile",
    )


def _dirty_publication() -> Program:
    """Object publication: constructor writes two fields, then publishes
    the reference; the reader may see the reference but stale fields."""
    return Program(
        shared={"f1": 0, "f2": 0, "ref": 0},
        threads=[
            [store("f1", 1), store("f2", 1), store("ref", 1)],
            [load("rref", "ref"), exit_unless("rref", 1), load("ra", "f1"), load("rb", "f2")],
        ],
        name="dirty_publication",
    )


def _dirty_publication_volatile() -> Program:
    return Program(
        shared={"f1": 0, "f2": 0, "ref": 0},
        threads=[
            [store("f1", 1), store("f2", 1), volatile_store("ref", 1)],
            [
                volatile_load("rref", "ref"),
                exit_unless("rref", 1),
                load("ra", "f1"),
                load("rb", "f2"),
            ],
        ],
        name="dirty_publication_volatile",
    )


def _deadlock_abba() -> Program:
    return Program(
        shared={"x": 0},
        threads=[
            [lock("a"), lock("b"), store("x", 1), unlock("b"), unlock("a")],
            [lock("b"), lock("a"), store("x", 2), unlock("a"), unlock("b")],
        ],
        name="deadlock_abba",
    )


def _deadlock_ordered() -> Program:
    safe = [lock("a"), lock("b"), load("r", "x"), add("r", 1), store("x", "r"), unlock("b"), unlock("a")]
    return Program(shared={"x": 0}, threads=[safe, safe], name="deadlock_ordered")


SNIPPETS: dict[str, Snippet] = {
    s.name: s
    for s in [
        Snippet(
            "lost_update",
            _lost_update(),
            buggy=True,
            racy=True,
            lesson="read-modify-write without mutual exclusion loses updates",
        ),
        Snippet(
            "lost_update_locked",
            _lost_update_locked(),
            buggy=False,
            racy=False,
            lesson="a lock around the whole RMW makes the counter exact",
            fix_of="lost_update",
        ),
        Snippet(
            "lost_update_atomic",
            _lost_update_atomic(),
            buggy=False,
            racy=False,
            lesson=(
                "an atomic RMW (AtomicInteger-style) also fixes the counter - "
                "cheaper than a lock, but only for single-variable updates"
            ),
            fix_of="lost_update",
        ),
        Snippet(
            "store_buffering",
            _store_buffering(),
            buggy=True,
            racy=True,
            lesson="store buffers let both threads read 0 — impossible under SC",
        ),
        Snippet(
            "store_buffering_fenced",
            _store_buffering_fenced(),
            buggy=False,
            racy=True,
            lesson=(
                "a full fence restores the SC outcomes — but the program still "
                "contains data races by happens-before; fences order, they do "
                "not synchronise"
            ),
            fix_of="store_buffering",
        ),
        Snippet(
            "store_buffering_volatile",
            _store_buffering_volatile(),
            buggy=False,
            racy=False,
            lesson="volatile x and y both restore SC outcomes and remove the race",
            fix_of="store_buffering",
        ),
        Snippet(
            "message_passing",
            _message_passing(),
            buggy=True,
            racy=True,
            lesson="without ordering, the consumer can see the flag but stale data",
        ),
        Snippet(
            "message_passing_volatile",
            _message_passing_volatile(),
            buggy=False,
            racy=False,
            lesson="volatile flag gives release/acquire: flag seen implies data seen",
            fix_of="message_passing",
        ),
        Snippet(
            "dirty_publication",
            _dirty_publication(),
            buggy=True,
            racy=True,
            lesson="publishing a reference via a plain write can expose a half-built object",
        ),
        Snippet(
            "dirty_publication_volatile",
            _dirty_publication_volatile(),
            buggy=False,
            racy=False,
            lesson="volatile publication makes construction visible-before-reference",
            fix_of="dirty_publication",
        ),
        Snippet(
            "deadlock_abba",
            _deadlock_abba(),
            buggy=True,
            racy=False,
            lesson="acquiring locks in opposite orders can deadlock",
        ),
        Snippet(
            "deadlock_ordered",
            _deadlock_ordered(),
            buggy=False,
            racy=False,
            lesson="a global lock order removes the deadlock",
            fix_of="deadlock_abba",
        ),
    ]
}
