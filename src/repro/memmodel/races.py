"""Vector-clock happens-before race detection.

The detector consumes a :class:`~repro.memmodel.interpreter.TraceEvent`
stream and reports every pair of conflicting accesses (two accesses to
the same variable, at least one a write) unordered by happens-before.
Happens-before here is program order + lock release→acquire +
volatile write→read — the Java memory model's synchronises-with edges
restricted to the DSL's primitives.

This is the standard FastTrack-style scheme kept deliberately readable
(full vector clocks, no epoch optimisation): it is a teaching artefact
first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.memmodel.interpreter import TraceEvent

__all__ = ["VectorClock", "Race", "RaceDetector", "detect_races"]


class VectorClock:
    """A mapping tid -> logical time, with join and happens-before."""

    __slots__ = ("_clock",)

    def __init__(self, clock: dict[int, int] | None = None) -> None:
        self._clock: dict[int, int] = dict(clock or {})

    def get(self, tid: int) -> int:
        return self._clock.get(tid, 0)

    def tick(self, tid: int) -> None:
        self._clock[tid] = self.get(tid) + 1

    def join(self, other: "VectorClock") -> None:
        for tid, t in other._clock.items():
            if t > self.get(tid):
                self._clock[tid] = t

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    def happens_before(self, other: "VectorClock") -> bool:
        """self <= other componentwise (self 'is visible to' other)."""
        return all(t <= other.get(tid) for tid, t in self._clock.items())

    def __repr__(self) -> str:
        inner = ", ".join(f"t{t}:{v}" for t, v in sorted(self._clock.items()))
        return f"VC({inner})"


@dataclass(frozen=True)
class Race:
    """Two unordered conflicting accesses to one variable."""

    var: str
    first_tid: int
    first_kind: str
    second_tid: int
    second_kind: str

    def __str__(self) -> str:
        return (
            f"race on {self.var!r}: t{self.first_tid} {self.first_kind} vs "
            f"t{self.second_tid} {self.second_kind}"
        )


class RaceDetector:
    """Streaming happens-before detector over trace events."""

    def __init__(self) -> None:
        self._thread_vc: dict[int, VectorClock] = {}
        self._lock_vc: dict[str, VectorClock] = {}
        self._volatile_vc: dict[str, VectorClock] = {}
        self._last_write: dict[str, tuple[int, VectorClock]] = {}
        self._reads: dict[str, list[tuple[int, VectorClock]]] = {}
        self.races: list[Race] = []

    def _vc(self, tid: int) -> VectorClock:
        vc = self._thread_vc.get(tid)
        if vc is None:
            vc = self._thread_vc[tid] = VectorClock({tid: 1})
        return vc

    def observe(self, event: TraceEvent) -> None:
        """Advance the happens-before state by one event; record races."""
        tid, kind, target = event.tid, event.kind, event.target
        vc = self._vc(tid)

        if kind == "lock":
            held = self._lock_vc.get(target)
            if held is not None:
                vc.join(held)
        elif kind == "unlock":
            self._lock_vc[target] = vc.copy()
            vc.tick(tid)
        elif kind == "vwrite":
            # release: publish my clock on the volatile variable
            self._volatile_vc[target] = vc.copy()
            vc.tick(tid)
        elif kind == "vread":
            # acquire: join the last volatile writer's clock
            published = self._volatile_vc.get(target)
            if published is not None:
                vc.join(published)
        elif kind == "atomic":
            # atomic RMW: acquire (join) then release (publish) — and the
            # access itself cannot race, by definition
            published = self._volatile_vc.get(target)
            if published is not None:
                vc.join(published)
            self._volatile_vc[target] = vc.copy()
            vc.tick(tid)
        elif kind == "read":
            last_w = self._last_write.get(target)
            if last_w is not None:
                w_tid, w_vc = last_w
                if w_tid != tid and not w_vc.happens_before(vc):
                    self.races.append(Race(target, w_tid, "write", tid, "read"))
            self._reads.setdefault(target, []).append((tid, vc.copy()))
        elif kind == "write":
            last_w = self._last_write.get(target)
            if last_w is not None:
                w_tid, w_vc = last_w
                if w_tid != tid and not w_vc.happens_before(vc):
                    self.races.append(Race(target, w_tid, "write", tid, "write"))
            for r_tid, r_vc in self._reads.get(target, []):
                if r_tid != tid and not r_vc.happens_before(vc):
                    self.races.append(Race(target, r_tid, "read", tid, "write"))
            self._last_write[target] = (tid, vc.copy())
            self._reads[target] = []  # ordered reads are subsumed by this write
        else:
            raise ValueError(f"unknown event kind {kind!r}")

    def observe_all(self, events: Iterable[TraceEvent]) -> "RaceDetector":
        for e in events:
            self.observe(e)
        return self

    @property
    def racy(self) -> bool:
        return bool(self.races)

    def racy_variables(self) -> set[str]:
        return {r.var for r in self.races}


def detect_races(traces: Sequence[Sequence[TraceEvent]]) -> list[Race]:
    """Run the detector over several traces; union of distinct races.

    Happens-before detection is per-trace (it only sees orderings that
    occurred), so callers pass several sampled schedules — e.g. from
    :func:`repro.memmodel.interpreter.random_runs` — to improve coverage.
    """
    seen: set[tuple] = set()
    out: list[Race] = []
    for trace in traces:
        det = RaceDetector().observe_all(trace)
        for race in det.races:
            key = (race.var, frozenset([(race.first_tid, race.first_kind), (race.second_tid, race.second_kind)]))
            if key not in seen:
                seen.add(key)
                out.append(race)
    return out
