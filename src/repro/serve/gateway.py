"""The submission gateway: one front door over any executor backend.

``Gateway.submit()`` is the serving analogue of ``Executor.submit()``:
it admits (or sheds), consults the memoizing cache, micro-batches, and
dispatches to the wrapped executor, resolving each request's
:class:`~repro.serve.requests.Ticket` with a typed response.  The same
client code runs identically over every backend; what changes is the
*clock discipline*:

* **driven** mode (inline/sim, virtual time) — the gateway owns a
  :class:`~repro.util.stopwatch.ManualClock` and a service-time model
  (``executor.cores`` servers, earliest-free assignment), so a seeded
  arrival trace yields byte-identical latency/shed/hit numbers on every
  run.  Work still *executes* eagerly at dispatch (real values come
  back); only time is modeled.
* **thread** mode (threads/processes, wall time) — a dispatcher thread
  ages out open batches on the real clock and completions arrive via
  future callbacks; latency is measured wall time.

Overload can only shed, never block: ``submit`` returns a resolved
``Rejected`` ticket instead of queueing past the admission limits, and
``shutdown(drain=False)`` resolves every queued-but-undispatched
request with ``Rejected("shutdown")`` — the serving mirror of the
executor's ``ExecutorShutdown`` stranded-future guarantee.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.executor.base import Executor, ExecutorShutdown
from repro.executor.future import Future
from repro.executor.inline import InlineExecutor
from repro.executor.simulated import SimExecutor
from repro.obs.rtrace import RequestTrace, RequestTraceCollector
from repro.obs.trace import TraceRecorder, resolve_recorder
from repro.resilience.cancel import CancelToken
from repro.resilience.retry import RetryPolicy
from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.batching import (
    Batch,
    BatchPolicy,
    MicroBatcher,
    run_batch,
    run_batch_timed,
)
from repro.serve.cache import LRUTTLCache, ModeledCache
from repro.serve.requests import (
    Completed,
    Failed,
    Rejected,
    Response,
    Ticket,
    Uncacheable,
    canonical_key,
)
from repro.util.stopwatch import Clock, ManualClock, WallClock

__all__ = ["Gateway", "GatewayStats"]

_AUTO = object()  # sentinel: derive the cache key from (task, args, kwargs)

#: no backoff sleeps inside the gateway — retries are immediate, so the
#: driven mode stays a pure function of the arrival trace
_DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0, jitter=0.0)


@dataclass
class GatewayStats:
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    batches: int = 0
    shed: dict[str, int] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())


@dataclass
class _Request:
    ticket: Ticket
    fn: Callable[..., Any]
    args: tuple
    kwargs: dict
    task: str
    cost: float
    key: str | None
    arrival: float
    deadline: float | None
    cancel: CancelToken | None
    #: per-request stage clock; None when request tracing is off
    rt: RequestTrace | None = None


class Gateway:
    """Serving front door over an :class:`~repro.executor.base.Executor`.

    The gateway *uses* the executor but does not own it: ``shutdown()``
    releases gateway resources only, and the caller remains responsible
    for ``executor.shutdown()``.  ``mode="auto"`` picks driven for the
    eager virtual-time backends (inline, sim) and thread otherwise;
    custom eager backends should pass ``mode="driven"`` explicitly.
    """

    def __init__(
        self,
        executor: Executor,
        *,
        admission: AdmissionPolicy | None = None,
        batching: BatchPolicy | None = None,
        cache: LRUTTLCache | ModeledCache | None = None,
        retry: RetryPolicy | None = None,
        mode: str = "auto",
        clock: Clock | None = None,
        dispatch_overhead: float = 0.0,
        trace: TraceRecorder | None = None,
        rtrace: RequestTraceCollector | None = None,
        name: str = "serve",
    ) -> None:
        if mode == "auto":
            mode = (
                "driven"
                if isinstance(executor, (InlineExecutor, SimExecutor))
                else "thread"
            )
        if mode not in ("driven", "thread"):
            raise ValueError(f"mode must be 'driven', 'thread' or 'auto', got {mode!r}")
        self.executor = executor
        self.mode = mode
        self.clock: Clock = clock or (ManualClock() if mode == "driven" else WallClock())
        self.cache = cache
        self.retry = retry or _DEFAULT_RETRY
        self.dispatch_overhead = dispatch_overhead
        self.trace = resolve_recorder(trace)
        self.rtrace = rtrace
        # thread mode measures execution where it runs: batches go
        # through run_batch_timed and workers are told to emit
        # per-request shard spans (no-op on backends without pipes)
        self._timed = rtrace is not None and mode == "thread"
        self.name = name
        self.stats = GatewayStats()
        self._admission = AdmissionController(admission, now=self.clock.now())
        self._batcher = MicroBatcher(batching)
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._next_id = 0
        self._depth = 0  # admitted-but-unresolved requests
        self._shut = False
        # driven mode: per-core earliest-free times + pending completions;
        # a completion payload is ("ok", value, batch_size) or
        # ("err", exception, batch_size)
        self._core_free = [self.clock.now()] * max(1, executor.cores)
        heapq.heapify(self._core_free)
        self._completions: list[tuple[float, int, _Request, tuple]] = []
        self._seq = 0
        # key -> coalesced followers waiting on an in-flight leader (driven)
        self._waiters: dict[str, list[_Request]] = {}
        # unresolved admitted requests (drain waits on these)
        self._live: dict[int, _Request] = {}
        self._dispatcher: threading.Thread | None = None
        if self._timed:
            self.executor.signal("serve.rtrace", True)
        if mode == "thread":
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name=f"{name}-dispatcher", daemon=True
            )
            self._dispatcher.start()

    # ------------------------------------------------------------------ API

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        task: str | None = None,
        cost: float = 0.0,
        key: Any = _AUTO,
        deadline: float | None = None,
        cancel: CancelToken | None = None,
        **kwargs: Any,
    ) -> Ticket:
        """Submit one request; never blocks, never raises for overload.

        ``task`` names the request kind (batching groups by it; defaults
        to the function name).  ``cost`` is the declared service cost in
        reference-seconds — it drives the latency model in driven mode
        and is ignored on real backends.  ``key`` controls memoization:
        the default derives a canonical key from the arguments, ``None``
        bypasses the cache, a string is used verbatim.  ``deadline`` is
        seconds from arrival the request must be *dispatched* within
        (the same start-by contract as ``Executor.submit``).
        """
        kind = task or getattr(fn, "__name__", "request")
        with self._lock:
            now = self.clock.now()
            if self.mode == "driven":
                self._advance_locked(now)
            self._next_id += 1
            ticket = Ticket(self._next_id, kind)
            self.stats.submitted += 1
            self.trace.count("serve.submitted")
            if self._shut:
                return self._shed(ticket, "shutdown", "gateway is shut down", now)
            reason = self._admission.decide(now, self._depth)
            if reason is not None:
                detail = (
                    f"queue depth {self._depth} at limit"
                    if reason == "queue"
                    else "rate limit exceeded"
                )
                return self._shed(ticket, reason, detail, now)
            self.stats.admitted += 1
            self.trace.count("serve.admitted")
            rt = None
            if self.rtrace is not None:
                # admitted requests get a stage clock; admission itself
                # is instantaneous from the request's point of view
                rt = self.rtrace.begin(self._next_id, kind, now)
                rt.mark("admit", now)
            if key is _AUTO:
                if self.cache is None:
                    key = None
                else:
                    try:
                        key = canonical_key(kind, args, kwargs)
                    except Uncacheable:
                        key = None
            ticket.key = key
            req = _Request(
                ticket, fn, args, dict(kwargs), kind, cost, key, now, deadline, cancel,
                rt=rt,
            )
            if key is not None and self.cache is not None:
                if self._try_cache_locked(req, now):
                    return ticket
            elif rt is not None:
                # no cacheable key: the lookup segment is zero-width
                rt.mark("cache", now)
            self._enqueue_locked(req, now)
        return ticket

    def result(self, ticket: Ticket, timeout: float | None = None) -> Response:
        """Resolve ``ticket`` to its :class:`Response`.

        In driven mode an unresolved ticket means its batch has not been
        dispatched or its virtual completion time not reached — the
        gateway drains to resolve it.  In thread mode this blocks (up to
        ``timeout``) like ``Future.result``.
        """
        if not ticket.done() and self.mode == "driven":
            self.drain()
        return ticket.response(timeout)

    def pump(self, now: float | None = None) -> None:
        """Driven mode: advance to ``now`` (default: current clock),
        dispatching due batches and delivering due completions."""
        with self._lock:
            clk = self.clock
            if now is not None and isinstance(clk, ManualClock) and now > clk.now():
                clk.advance_to(now)
            self._advance_locked(self.clock.now())

    def drain(self) -> float:
        """Flush open batches and deliver everything in flight.

        Driven mode advances the virtual clock to the last completion
        and returns it; thread mode blocks until live requests resolve
        and returns the wall clock.  The gateway stays open.
        """
        if self.mode == "driven":
            with self._lock:
                now = self.clock.now()
                self._advance_locked(now)
                for batch in sorted(self._batcher.flush(), key=lambda b: b.opened_at):
                    self._dispatch_driven_locked(batch, now)
                end = max(
                    (finish for finish, _, _, _ in self._completions), default=now
                )
                clk = self.clock
                if isinstance(clk, ManualClock) and end > now:
                    clk.advance_to(end)
                self._advance_locked(end)
                return end
        with self._wake:
            batches = self._batcher.flush()
            self._wake.notify_all()
        for batch in batches:
            self._dispatch_thread(batch)
        while True:
            with self._lock:
                live = list(self._live.values())
            if not live:
                return self.clock.now()
            for req in live:
                req.ticket.response(timeout=30.0)

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting requests; idempotent.

        ``drain=True`` flushes and delivers queued work first.
        ``drain=False`` resolves every queued-but-undispatched request
        (and any coalesced follower of one) with ``Rejected("shutdown")``
        so no client waits forever — batches already handed to the
        executor still complete via their callbacks.
        """
        with self._lock:
            if self._shut:
                return
            self._shut = True
            if not drain:
                now = self.clock.now()
                for batch in self._batcher.flush():
                    for req in batch.requests:
                        self._abort_keyed_locked(
                            req,
                            ExecutorShutdown("gateway shut down before dispatch"),
                            now,
                        )
                        if req.rt is not None:
                            req.rt.mark("resolve", now)
                        self._resolve_locked(
                            req,
                            Rejected("shutdown", "gateway shut down before dispatch"),
                        )
                # driven mode: completed-but-undelivered work is real
                # results — deliver it rather than discarding
                while self._completions:
                    finish, _, req, payload = heapq.heappop(self._completions)
                    self._finalize_driven_locked(req, payload, finish)
            self._wake.notify_all()
        if drain:
            self.drain()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
            self._dispatcher = None

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._depth

    # -------------------------------------------------------- shared internals

    def _shed(self, ticket: Ticket, reason: str, detail: str, now: float) -> Ticket:
        self.stats.shed[reason] = self.stats.shed.get(reason, 0) + 1
        self.trace.count("serve.shed")
        if self.rtrace is not None:
            self.rtrace.shed(now)
        ticket._resolve(Rejected(reason, detail))
        return ticket

    def _rt_finish(self, req: _Request, response: Response) -> None:
        """Fold a resolved request's stage trace into the collector."""
        if req.rt is not None:
            assert self.rtrace is not None
            self.rtrace.finish(req.rt, response)
            req.rt = None

    def _resolve_locked(self, req: _Request, response: Response) -> None:
        if not req.ticket._resolve(response):
            return
        self._rt_finish(req, response)
        self._depth -= 1
        self._live.pop(req.ticket.request_id, None)
        self.trace.set_gauge("serve.queue_depth", self._depth)
        if isinstance(response, Completed):
            self.stats.completed += 1
            self.trace.observe("serve.latency_seconds", response.latency)
        elif isinstance(response, Failed):
            self.stats.failed += 1
            self.trace.count("serve.failures")
        elif isinstance(response, Rejected):
            self.stats.shed[response.reason] = (
                self.stats.shed.get(response.reason, 0) + 1
            )
            self.trace.count("serve.shed")

    def _abort_keyed_locked(
        self, req: _Request, error: BaseException, now: float
    ) -> None:
        """A queued cache *leader* is not going to run: fail the key so
        thread-mode followers unblock, and fail driven-mode waiters."""
        if req.key is None or self.cache is None:
            return
        self.cache.fail(req.key, error)
        for waiter in self._waiters.pop(req.key, []):
            if waiter.rt is not None:
                # the whole coalesced wait was spent on the cache leader
                waiter.rt.mark("cache", now)
                waiter.rt.mark("resolve", now)
            self._resolve_locked(
                waiter, Failed(error, latency=now - waiter.arrival)
            )

    def _try_cache_locked(self, req: _Request, now: float) -> bool:
        """Consult the cache; True if the request is fully handled here
        (hit, coalesced wait, or modeled warm execute-at-zero-cost)."""
        assert self.cache is not None and req.key is not None
        decision = self.cache.begin(req.key, now)
        if decision.status == "hit":
            self.trace.count("serve.cache_hits")
            self.stats.completed += 1
            self.trace.observe("serve.latency_seconds", 0.0)
            if req.rt is not None:
                req.rt.mark("cache", now)
                req.rt.mark("resolve", now)
            response = Completed(decision.value, latency=0.0, cached=True)
            req.ticket._resolve(response)
            self._rt_finish(req, response)
            return True
        if decision.status == "wait":
            self.trace.count("serve.cache_coalesced")
            self._depth += 1
            self._live[req.ticket.request_id] = req
            if self.mode == "driven":
                self._waiters.setdefault(req.key, []).append(req)
            else:
                leader = decision.leader
                assert leader is not None
                leader.add_done_callback(
                    lambda fut, r=req: self._on_leader_done(r, fut)
                )
            return True
        # status == "lead"
        if not decision.charge:
            # Modeled warm key (sim): served as a hit.  The body still
            # runs once so the client gets a real value, but at zero
            # service cost and without occupying the queue.
            self.trace.count("serve.cache_hits")
            if req.rt is not None:
                req.rt.mark("cache", now)
                req.rt.mark("resolve", now)
            try:
                value = req.fn(*req.args, **req.kwargs)
            except Exception as exc:  # noqa: BLE001 — failures become responses
                self.cache.fail(req.key, exc)
                self.stats.failed += 1
                self.trace.count("serve.failures")
                response: Response = Failed(exc, latency=now - req.arrival)
                req.ticket._resolve(response)
                self._rt_finish(req, response)
                return True
            self.cache.complete(req.key, value, now)
            self.stats.completed += 1
            self.trace.observe("serve.latency_seconds", 0.0)
            response = Completed(value, latency=0.0, cached=True)
            req.ticket._resolve(response)
            self._rt_finish(req, response)
            return True
        self.trace.count("serve.cache_misses")
        if req.rt is not None:
            # miss: the lookup itself is instantaneous on the stage clock
            req.rt.mark("cache", now)
        return False

    def _enqueue_locked(self, req: _Request, now: float) -> None:
        self._depth += 1
        self._live[req.ticket.request_id] = req
        self.trace.set_gauge("serve.queue_depth", self._depth)
        batch = self._batcher.add(req, now)
        if batch is not None:
            if self.mode == "driven":
                self._dispatch_driven_locked(batch, now)
            else:
                self._dispatch_thread(batch)
        elif self.mode == "thread":
            self._wake.notify_all()

    def _presend_locked(self, batch: Batch, now: float) -> list[_Request]:
        """Apply per-request cancellation/deadline at dispatch time."""
        survivors: list[_Request] = []
        for req in batch.requests:
            if req.cancel is not None and req.cancel.cancelled:
                self._abort_keyed_locked(
                    req, RuntimeError("coalesced leader cancelled before dispatch"), now
                )
                if req.rt is not None:
                    req.rt.mark("batch", now)
                    req.rt.mark("resolve", now)
                self._resolve_locked(
                    req, Rejected("cancelled", f"token {req.cancel.name!r} cancelled")
                )
            elif req.deadline is not None and now - req.arrival > req.deadline:
                self._abort_keyed_locked(
                    req, RuntimeError("coalesced leader missed its deadline"), now
                )
                if req.rt is not None:
                    req.rt.mark("batch", now)
                    req.rt.mark("resolve", now)
                self._resolve_locked(
                    req,
                    Rejected(
                        "deadline",
                        f"not dispatched within {req.deadline}s of arrival",
                    ),
                )
            else:
                survivors.append(req)
        return survivors

    def _emit_retry(self, name: str, attempt: int, exc: BaseException) -> None:
        self.stats.retries += 1
        self.trace.count("serve.retries")
        if self.trace.enabled:
            self.trace.event(
                "retry", name, attempt=attempt, delay=0.0, exception=type(exc).__name__
            )

    # -------------------------------------------------------- driven mode

    def _advance_locked(self, now: float) -> None:
        due = self._batcher.due(now)
        for batch in sorted(due, key=lambda b: b.opened_at):
            # dispatch at the instant the batch aged out, not at "now":
            # the latency model should not depend on how often we pump
            self._dispatch_driven_locked(
                batch, batch.opened_at + self._batcher.policy.max_delay
            )
        while self._completions and self._completions[0][0] <= now:
            finish, _, req, payload = heapq.heappop(self._completions)
            self._finalize_driven_locked(req, payload, finish)

    def _dispatch_driven_locked(self, batch: Batch, t: float) -> None:
        survivors = self._presend_locked(batch, t)
        if not survivors:
            return
        self.stats.batches += 1
        self.trace.count("serve.batches")
        self.trace.observe("serve.batch_occupancy", len(survivors))
        calls = [(r.fn, r.args, r.kwargs) for r in survivors]
        name = f"{self.name}:{batch.kind}[{len(survivors)}]"
        cost = self.dispatch_overhead + sum(r.cost for r in survivors)
        outcome, attempts = self._execute_driven(calls, cost, name)
        free = heapq.heappop(self._core_free)
        start = max(t, free)
        finish = start + cost
        heapq.heappush(self._core_free, finish)
        size = len(survivors)
        if self.rtrace is not None:
            # the whole virtual timeline of this batch is known here —
            # stage the marks now, delivery happens at `finish`
            for req in survivors:
                if req.rt is None:
                    continue
                req.rt.mark("batch", t)
                req.rt.mark("queue", start)
                req.rt.mark("execute", finish)
                if attempts > 1:
                    req.rt.mark("retry", finish)
                req.rt.mark("resolve", finish)
        if isinstance(outcome, BaseException):
            for req in survivors:
                self._schedule_completion(req, ("err", outcome, size, attempts), finish)
        else:
            for req, (status, payload) in zip(survivors, outcome):
                self._schedule_completion(
                    req, (status, payload, size, attempts), finish
                )

    def _schedule_completion(self, req: _Request, payload: tuple, finish: float) -> None:
        self._seq += 1
        heapq.heappush(self._completions, (finish, self._seq, req, payload))

    def _finalize_driven_locked(
        self, req: _Request, payload: tuple, finish: float
    ) -> None:
        status, value, size, attempts = payload
        latency = finish - req.arrival
        if status == "err":
            self._abort_keyed_locked(req, value, finish)
            self._resolve_locked(req, Failed(value, latency=latency, attempts=attempts))
            return
        if req.key is not None and self.cache is not None:
            self.cache.complete(req.key, value, finish)
            for waiter in self._waiters.pop(req.key, []):
                if waiter.rt is not None:
                    # the coalesced wait on the leader is cache time
                    waiter.rt.mark("cache", finish)
                    waiter.rt.mark("resolve", finish)
                self._resolve_locked(
                    waiter,
                    Completed(value, latency=finish - waiter.arrival, cached=True),
                )
        self._resolve_locked(
            req, Completed(value, latency=latency, batch_size=size, attempts=attempts)
        )

    def _execute_driven(self, calls: list, cost: float, name: str) -> tuple[Any, int]:
        """Run one batch on the eager executor with immediate retries.

        Returns ``(outcome, attempts)`` where the outcome is the
        ``run_batch`` result list, or the final exception if the whole
        batch kept failing (e.g. injected worker faults)."""
        attempt = 1
        while True:
            try:
                future = self.executor.submit(run_batch, calls, cost=cost, name=name)
                exc = future.exception()
            except ExecutorShutdown as shutdown_exc:
                return shutdown_exc, attempt
            if exc is None:
                return future.result(), attempt
            if not self.retry.should_retry(exc, attempt):
                return exc, attempt
            self._emit_retry(name, attempt, exc)
            attempt += 1

    # -------------------------------------------------------- thread mode

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                if self._shut:
                    return
                deadline = self._batcher.next_deadline()
                now = self.clock.now()
                if deadline is None:
                    self._wake.wait()
                elif deadline > now:
                    self._wake.wait(timeout=deadline - now)
                if self._shut:
                    return
                due = self._batcher.due(self.clock.now())
                if len(due) > 1:
                    self._dispatch_thread_many(due)
                else:
                    for batch in due:
                        self._dispatch_thread(batch)

    def _dispatch_thread(self, batch: Batch) -> None:
        with self._lock:
            now = self.clock.now()
            survivors = self._presend_locked(batch, now)
            if not survivors:
                return
            self.stats.batches += 1
            self.trace.count("serve.batches")
            self.trace.observe("serve.batch_occupancy", len(survivors))
            for req in survivors:
                if req.rt is not None:
                    req.rt.mark("batch", now)
        calls = [(r.fn, r.args, r.kwargs) for r in survivors]
        name = f"{self.name}:{batch.kind}[{len(survivors)}]"
        self._submit_thread(calls, survivors, name, attempt=1)

    def _dispatch_thread_many(self, batches: list[Batch]) -> None:
        """Dispatch several due batches through the executor's
        ``submit_many`` fast path (one pool lock round, one wake-up)."""
        prepared: list[tuple[list, list[_Request], str]] = []
        with self._lock:
            now = self.clock.now()
            for batch in batches:
                survivors = self._presend_locked(batch, now)
                if not survivors:
                    continue
                self.stats.batches += 1
                self.trace.count("serve.batches")
                self.trace.observe("serve.batch_occupancy", len(survivors))
                for req in survivors:
                    if req.rt is not None:
                        req.rt.mark("batch", now)
                prepared.append(
                    (
                        [(r.fn, r.args, r.kwargs) for r in survivors],
                        survivors,
                        f"{self.name}:{batch.kind}[{len(survivors)}]",
                    )
                )
        if not prepared:
            return
        try:
            if self._timed:
                futures = self.executor.submit_many(
                    run_batch_timed,
                    [
                        (calls, [r.ticket.request_id for r in survivors])
                        for calls, survivors, _ in prepared
                    ],
                    name=self.name,
                )
            else:
                futures = self.executor.submit_many(
                    run_batch, [(calls,) for calls, _, _ in prepared], name=self.name
                )
        except ExecutorShutdown as exc:
            fail_now = self.clock.now()
            with self._lock:
                for _, survivors, _ in prepared:
                    for req in survivors:
                        self._abort_keyed_locked(req, exc, fail_now)
                        if req.rt is not None:
                            req.rt.mark("queue", fail_now)
                            req.rt.mark("resolve", fail_now)
                        self._resolve_locked(
                            req, Failed(exc, latency=fail_now - req.arrival)
                        )
            return
        for future, (calls, survivors, name) in zip(futures, prepared):
            future.add_done_callback(
                lambda fut, c=calls, s=survivors, n=name: self._on_batch_done(
                    fut, c, s, n, 1
                )
            )

    def _submit_thread(
        self, calls: list, survivors: list[_Request], name: str, attempt: int
    ) -> None:
        try:
            if self._timed:
                rids = [r.ticket.request_id for r in survivors]
                future = self.executor.submit(run_batch_timed, calls, rids, name=name)
            else:
                future = self.executor.submit(run_batch, calls, name=name)
        except ExecutorShutdown as exc:
            fail_now = self.clock.now()
            with self._lock:
                for req in survivors:
                    self._abort_keyed_locked(req, exc, fail_now)
                    if req.rt is not None:
                        req.rt.mark("queue", fail_now)
                        req.rt.mark("resolve", fail_now)
                    self._resolve_locked(
                        req, Failed(exc, latency=fail_now - req.arrival)
                    )
            return
        future.add_done_callback(
            lambda fut: self._on_batch_done(fut, calls, survivors, name, attempt)
        )

    def _on_batch_done(
        self,
        future: Future,
        calls: list,
        survivors: list[_Request],
        name: str,
        attempt: int,
    ) -> None:
        exc = future.exception()
        if exc is not None:
            if not isinstance(exc, ExecutorShutdown) and self.retry.should_retry(
                exc, attempt
            ):
                self._emit_retry(name, attempt, exc)
                self._submit_thread(calls, survivors, name, attempt + 1)
                return
            now = self.clock.now()
            with self._lock:
                for req in survivors:
                    self._abort_keyed_locked(req, exc, now)
                    if req.rt is not None:
                        req.rt.mark("retry" if attempt > 1 else "queue", now)
                        req.rt.mark("resolve", now)
                    self._resolve_locked(
                        req, Failed(exc, latency=now - req.arrival, attempts=attempt)
                    )
            return
        raw = future.result()
        if self._timed:
            results, info = raw
        else:
            results, info = raw, None
        now = self.clock.now()
        size = len(survivors)
        # Execution-span attribution: threads/inline stamp the span on
        # the future's meta (same time.monotonic() epoch as WallClock);
        # process workers can't, so reconstruct from the measured batch
        # total — callback transit then lands in the resolve stage.
        base = wid = pid = None
        cum: list[float] = []
        if info is not None:
            pid = info["pid"]
            durs = info["durs"]
            span = getattr(future, "meta", {}).get("rt_span")
            if span is not None:
                base, _, wid = span
            else:
                base = now - info["total"]
            acc = 0.0
            for d in durs:
                cum.append(acc)
                acc += d
            if span is not None and self.trace.enabled:
                off = time.monotonic() - self.trace.now()
                for i, req in enumerate(survivors):
                    self.trace.emit_span(
                        "rexec",
                        f"req:{req.ticket.request_id}",
                        base + cum[i] - off,
                        base + cum[i] + durs[i] - off,
                        worker=wid if wid is not None else 0,
                        pid=os.getpid(),
                    )
        with self._lock:
            for i, (req, (status, payload)) in enumerate(zip(survivors, results)):
                if req.rt is not None:
                    if base is not None:
                        req.rt.mark("retry" if attempt > 1 else "queue", base + cum[i])
                        req.rt.mark("execute", base + cum[i] + info["durs"][i])
                        req.rt.worker = wid
                        req.rt.pid = pid
                    req.rt.mark("resolve", now)
                if status == "ok":
                    if req.key is not None and self.cache is not None:
                        self.cache.complete(req.key, payload, now)
                    self._resolve_locked(
                        req,
                        Completed(
                            payload,
                            latency=now - req.arrival,
                            batch_size=size,
                            attempts=attempt,
                        ),
                    )
                else:
                    if req.key is not None and self.cache is not None:
                        self.cache.fail(req.key, payload)
                    self._resolve_locked(
                        req,
                        Failed(payload, latency=now - req.arrival, attempts=attempt),
                    )

    def _on_leader_done(self, req: _Request, leader: Future) -> None:
        """Thread mode: a coalesced follower's leader resolved."""
        now = self.clock.now()
        exc = leader.exception()
        with self._lock:
            if req.rt is not None:
                # the follower spent its whole life waiting on the leader
                req.rt.mark("cache", now)
                req.rt.mark("resolve", now)
            if exc is not None:
                self._resolve_locked(req, Failed(exc, latency=now - req.arrival))
            else:
                self._resolve_locked(
                    req,
                    Completed(leader.result(), latency=now - req.arrival, cached=True),
                )
