"""Memoizing result caches for the serving gateway.

Two implementations behind one ``begin/complete/fail`` protocol:

* :class:`LRUTTLCache` — a real, thread-safe LRU with optional TTL and
  **single-flight** in-flight coalescing: the first request for a key
  becomes the *leader* and executes the body; concurrent requests for
  the same key attach to the leader's future instead of re-running the
  work, so a memoized body runs at most once per key (the hypothesis
  property in ``tests/serve/test_cache.py`` pins this).  Used under the
  threads/processes backends where wall time is real.

* :class:`ModeledCache` — the deterministic stand-in for simulated
  runs, in the spirit of Occam's hit-rate-modelled ``fsm_cache``
  (SNIPPETS.md, snippet 2): each key is declared warm or cold by a
  seeded hash draw against ``hit_rate``, as if a long-running service
  had already been serving that keyspace.  A warm key's *first* access
  is charged as a hit (zero service cost) even though the value still
  has to be computed once to be returned — golden reports stay
  byte-identical because no real cache dynamics are involved.

The protocol
------------
``begin(key, now)`` returns a :class:`CacheDecision`:

=========  ==========================================================
status     meaning for the gateway
=========  ==========================================================
``hit``    value available now; respond without executing
``wait``   another request is computing this key; attach to
           ``decision.leader`` (a :class:`~repro.executor.future.Future`)
``lead``   caller must execute the body, then ``complete``/``fail``;
           ``decision.charge=False`` means the execution is *not*
           charged service cost (ModeledCache warm-miss)
=========  ==========================================================
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.executor.future import Future
from repro.util.rng import stable_hash

__all__ = ["CacheDecision", "CacheStats", "LRUTTLCache", "ModeledCache"]

_HASH_SPACE = float(2**64)


@dataclass
class CacheStats:
    """Counters shared by both cache kinds; read by the gateway report."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        """Hits (including coalesced followers) over all lookups."""
        n = self.lookups
        return (self.hits + self.coalesced) / n if n else 0.0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
            "expirations": self.expirations,
        }


@dataclass(frozen=True)
class CacheDecision:
    status: str  # "hit" | "wait" | "lead"
    value: Any = None
    leader: Future | None = None
    #: False when the execution should not be charged service cost
    #: (ModeledCache treating a warm key's first access as a hit)
    charge: bool = True


class LRUTTLCache:
    """Thread-safe LRU with TTL and single-flight coalescing.

    ``capacity`` bounds *stored* entries (in-flight leaders are tracked
    separately and do not count).  ``ttl=None`` disables expiry; expiry
    is checked lazily at lookup time against the ``now`` the caller
    passes, so the cache works identically on wall and virtual clocks.
    """

    def __init__(self, capacity: int, ttl: float | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, tuple[Any, float]] = OrderedDict()
        self._inflight: dict[str, Future] = {}

    def begin(self, key: str, now: float) -> CacheDecision:
        """Look up ``key``: a fresh entry hits, an in-flight computation
        coalesces ("wait"), and anything else makes the caller the leader."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                value, stored_at = entry
                if self.ttl is not None and now - stored_at >= self.ttl:
                    del self._entries[key]
                    self.stats.expirations += 1
                else:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return CacheDecision("hit", value=value)
            leader = self._inflight.get(key)
            if leader is not None:
                self.stats.coalesced += 1
                return CacheDecision("wait", leader=leader)
            self.stats.misses += 1
            fut = Future(name=f"cache:{key}")
            fut.try_start()
            self._inflight[key] = fut
            return CacheDecision("lead")

    def complete(self, key: str, value: Any, now: float) -> None:
        """Store the leader's result and release any coalesced waiters."""
        with self._lock:
            self._entries[key] = (value, now)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            leader = self._inflight.pop(key, None)
        if leader is not None:
            leader.set_result(value)

    def fail(self, key: str, error: BaseException) -> None:
        """Propagate the leader's failure to waiters; nothing is cached,
        so the next request for the key leads a fresh attempt."""
        with self._lock:
            leader = self._inflight.pop(key, None)
        if leader is not None:
            leader.set_exception(error)

    # -- inspection (tests, reports) ---------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Stored keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def get(self, key: str, now: float) -> Any | None:
        """Plain lookup (counts as hit/expiry, never leads)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            value, stored_at = entry
            if self.ttl is not None and now - stored_at >= self.ttl:
                del self._entries[key]
                self.stats.expirations += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value


class ModeledCache:
    """Seeded hit-rate model: deterministic, dynamics-free (sim only).

    A key is *warm* iff a stable hash of ``(seed, key)`` maps below
    ``hit_rate``.  Warm keys are served as hits — the first access still
    computes the value (so the client sees a real result) but with
    ``charge=False`` the gateway books zero service cost for it, as if
    the entry predated the run.  Cold keys always miss.  There is no
    eviction, TTL or coalescing: the model answers "what would a warmed
    cache do", not "how does a cache converge".
    """

    def __init__(self, hit_rate: float = 0.6, seed: int = 0) -> None:
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
        self.hit_rate = hit_rate
        self.seed = seed
        self.stats = CacheStats()
        self._store: dict[str, Any] = {}

    def warm(self, key: str) -> bool:
        return stable_hash(self.seed, "serve.cache", key) / _HASH_SPACE < self.hit_rate

    def begin(self, key: str, now: float) -> CacheDecision:
        if self.warm(key):
            self.stats.hits += 1
            if key in self._store:
                return CacheDecision("hit", value=self._store[key])
            return CacheDecision("lead", charge=False)
        self.stats.misses += 1
        return CacheDecision("lead")

    def complete(self, key: str, value: Any, now: float) -> None:
        if self.warm(key):
            self._store[key] = value

    def fail(self, key: str, error: BaseException) -> None:
        """No waiters to release — the model never coalesces."""

    def __len__(self) -> int:
        return len(self._store)
