"""Micro-batching of small homogeneous requests.

Small tasks (a matmul panel, a thumbnail, a text-search shard) pay more
in per-task overhead than in work.  The batcher groups *same-kind*
requests into one executor task under a classic two-knob policy:

* ``max_size`` — a batch closes as soon as it holds this many requests;
* ``max_delay`` — an open batch closes once its oldest request has
  waited this long, bounding the latency cost of waiting for company.

``max_size=1`` (or ``max_delay=0``) degenerates to one-task-per-request,
which is how the equivalence tests pin that batching changes *when*
work runs, never *what* it computes.

:func:`run_batch` is the module-level body the gateway submits — it must
be importable by name so the processes backend can pickle it.  Failures
are per-item: one bad request in a batch yields one ``("err", exc)``
slot without poisoning its batchmates.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs import rtrace
from repro.obs.trace import current_recorder

__all__ = ["Batch", "BatchPolicy", "MicroBatcher", "run_batch", "run_batch_timed"]


@dataclass(frozen=True)
class BatchPolicy:
    max_size: int = 8
    max_delay: float = 0.002

    def __post_init__(self) -> None:
        if self.max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {self.max_size}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")


@dataclass
class Batch:
    """A closed batch, ready for dispatch."""

    kind: str
    requests: list[Any]
    opened_at: float

    @property
    def size(self) -> int:
        return len(self.requests)


@dataclass
class _Open:
    kind: str
    opened_at: float
    requests: list[Any] = field(default_factory=list)


class MicroBatcher:
    """Groups requests by kind; not locked (the gateway holds its mutex).

    Requests only need ``.task`` (the kind string); the batcher treats
    them opaquely, so the gateway can carry whatever per-request state
    it likes through a batch.
    """

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        self._open: dict[str, _Open] = {}

    def pending(self) -> int:
        """Requests sitting in open batches."""
        return sum(len(o.requests) for o in self._open.values())

    def add(self, request: Any, now: float) -> Batch | None:
        """Queue ``request``; returns the batch if this filled it."""
        kind = request.task
        open_ = self._open.get(kind)
        if open_ is None:
            open_ = self._open[kind] = _Open(kind, now)
        open_.requests.append(request)
        if len(open_.requests) >= self.policy.max_size:
            del self._open[kind]
            return Batch(kind, open_.requests, open_.opened_at)
        return None

    def due(self, now: float) -> list[Batch]:
        """Close and return batches whose oldest request has aged out.

        Deterministic order: batches come out in kind-insertion order
        (dict order), which under a seeded arrival trace is itself
        deterministic.
        """
        out: list[Batch] = []
        for kind in [
            k
            for k, o in self._open.items()
            if now - o.opened_at >= self.policy.max_delay
        ]:
            open_ = self._open.pop(kind)
            out.append(Batch(kind, open_.requests, open_.opened_at))
        return out

    def next_deadline(self) -> float | None:
        """Earliest instant a batch becomes due (dispatcher wake-up)."""
        if not self._open:
            return None
        return min(o.opened_at for o in self._open.values()) + self.policy.max_delay

    def flush(self) -> list[Batch]:
        """Close everything (drain path)."""
        out = [Batch(o.kind, o.requests, o.opened_at) for o in self._open.values()]
        self._open.clear()
        return out


def run_batch(
    calls: Sequence[tuple[Callable[..., Any], tuple, dict]],
) -> list[tuple[str, Any]]:
    """Execute a batch; one ``("ok", value)`` / ``("err", exc)`` per item."""
    out: list[tuple[str, Any]] = []
    for fn, args, kwargs in calls:
        try:
            out.append(("ok", fn(*args, **kwargs)))
        except Exception as exc:  # noqa: BLE001 — per-item isolation is the point
            out.append(("err", exc))
    return out


def run_batch_timed(
    calls: Sequence[tuple[Callable[..., Any], tuple, dict]],
    rids: Sequence[int] | None = None,
) -> tuple[list[tuple[str, Any]], dict[str, Any]]:
    """:func:`run_batch` plus measured-where-it-ran timing.

    Returns ``(pairs, info)`` where ``pairs`` matches ``run_batch``'s
    output and ``info`` carries ``pid`` (the executing process), per-call
    ``durs`` and the batch ``total`` in wall seconds — the gateway slots
    these into each request's stage trace so ``execute`` is attributed
    to the clock it actually spent, not to callback transit.

    Inside a process worker that was signalled ``serve.rtrace`` (see
    ``Executor.signal``), each call additionally lands a per-request
    ``rexec`` span in the worker's trace shard, so merged shards carry
    pid-attributed request execution.  Module-level and picklable, like
    :func:`run_batch`.
    """
    recorder = current_recorder()
    shard = recorder.enabled and rtrace.worker_signal("serve.rtrace")
    pid = os.getpid()
    out: list[tuple[str, Any]] = []
    durs: list[float] = []
    batch_t0 = time.monotonic()
    for i, (fn, args, kwargs) in enumerate(calls):
        t0 = time.monotonic()
        try:
            out.append(("ok", fn(*args, **kwargs)))
        except Exception as exc:  # noqa: BLE001 — per-item isolation is the point
            out.append(("err", exc))
        t1 = time.monotonic()
        durs.append(t1 - t0)
        if shard and rids is not None and i < len(rids):
            off = time.monotonic() - recorder.now()
            recorder.emit_span(
                "rexec", f"req:{rids[i]}", t0 - off, t1 - off, pid=pid
            )
    total = time.monotonic() - batch_t0
    return out, {"pid": pid, "durs": durs, "total": total}
