"""Micro-batching of small homogeneous requests.

Small tasks (a matmul panel, a thumbnail, a text-search shard) pay more
in per-task overhead than in work.  The batcher groups *same-kind*
requests into one executor task under a classic two-knob policy:

* ``max_size`` — a batch closes as soon as it holds this many requests;
* ``max_delay`` — an open batch closes once its oldest request has
  waited this long, bounding the latency cost of waiting for company.

``max_size=1`` (or ``max_delay=0``) degenerates to one-task-per-request,
which is how the equivalence tests pin that batching changes *when*
work runs, never *what* it computes.

:func:`run_batch` is the module-level body the gateway submits — it must
be importable by name so the processes backend can pickle it.  Failures
are per-item: one bad request in a batch yields one ``("err", exc)``
slot without poisoning its batchmates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = ["Batch", "BatchPolicy", "MicroBatcher", "run_batch"]


@dataclass(frozen=True)
class BatchPolicy:
    max_size: int = 8
    max_delay: float = 0.002

    def __post_init__(self) -> None:
        if self.max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {self.max_size}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")


@dataclass
class Batch:
    """A closed batch, ready for dispatch."""

    kind: str
    requests: list[Any]
    opened_at: float

    @property
    def size(self) -> int:
        return len(self.requests)


@dataclass
class _Open:
    kind: str
    opened_at: float
    requests: list[Any] = field(default_factory=list)


class MicroBatcher:
    """Groups requests by kind; not locked (the gateway holds its mutex).

    Requests only need ``.task`` (the kind string); the batcher treats
    them opaquely, so the gateway can carry whatever per-request state
    it likes through a batch.
    """

    def __init__(self, policy: BatchPolicy | None = None) -> None:
        self.policy = policy or BatchPolicy()
        self._open: dict[str, _Open] = {}

    def pending(self) -> int:
        """Requests sitting in open batches."""
        return sum(len(o.requests) for o in self._open.values())

    def add(self, request: Any, now: float) -> Batch | None:
        """Queue ``request``; returns the batch if this filled it."""
        kind = request.task
        open_ = self._open.get(kind)
        if open_ is None:
            open_ = self._open[kind] = _Open(kind, now)
        open_.requests.append(request)
        if len(open_.requests) >= self.policy.max_size:
            del self._open[kind]
            return Batch(kind, open_.requests, open_.opened_at)
        return None

    def due(self, now: float) -> list[Batch]:
        """Close and return batches whose oldest request has aged out.

        Deterministic order: batches come out in kind-insertion order
        (dict order), which under a seeded arrival trace is itself
        deterministic.
        """
        out: list[Batch] = []
        for kind in [
            k
            for k, o in self._open.items()
            if now - o.opened_at >= self.policy.max_delay
        ]:
            open_ = self._open.pop(kind)
            out.append(Batch(kind, open_.requests, open_.opened_at))
        return out

    def next_deadline(self) -> float | None:
        """Earliest instant a batch becomes due (dispatcher wake-up)."""
        if not self._open:
            return None
        return min(o.opened_at for o in self._open.values()) + self.policy.max_delay

    def flush(self) -> list[Batch]:
        """Close everything (drain path)."""
        out = [Batch(o.kind, o.requests, o.opened_at) for o in self._open.values()]
        self._open.clear()
        return out


def run_batch(
    calls: Sequence[tuple[Callable[..., Any], tuple, dict]],
) -> list[tuple[str, Any]]:
    """Execute a batch; one ``("ok", value)`` / ``("err", exc)`` per item."""
    out: list[tuple[str, Any]] = []
    for fn, args, kwargs in calls:
        try:
            out.append(("ok", fn(*args, **kwargs)))
        except Exception as exc:  # noqa: BLE001 — per-item isolation is the point
            out.append(("err", exc))
    return out
