"""``repro.serve`` — a serving gateway over the executor backends.

The batch experiments ask "how fast can we finish this work"; serving
asks "how does the system behave while work keeps arriving".  This
package layers a high-throughput front door over any
``repro.executor.create()`` backend:

- :class:`~repro.serve.gateway.Gateway` — bounded-queue submission with
  a typed ``submit()/result()`` API (responses, never hangs);
- :mod:`~repro.serve.admission` — token-bucket rate limiting and
  queue-depth backpressure (overload sheds with ``Rejected``);
- :mod:`~repro.serve.batching` — micro-batching of small homogeneous
  requests under a max-size/max-delay policy;
- :mod:`~repro.serve.cache` — a memoizing result cache: real
  thread-safe LRU+TTL with single-flight on the real backends, a seeded
  hit-rate model (Occam's ``fsm_cache`` direction) under sim;
- :mod:`~repro.serve.loadgen` — seeded arrival traces (steady / bursty
  / diurnal / overload) and the end-to-end :func:`run_serve` report.

``python -m repro serve overload --backend sim`` is the CLI entry; the
``serve_traffic`` bench experiment and the chaos CLI compose with it.
"""

from repro.serve.admission import AdmissionController, AdmissionPolicy, TokenBucket
from repro.serve.batching import BatchPolicy, MicroBatcher, run_batch
from repro.serve.cache import CacheStats, LRUTTLCache, ModeledCache
from repro.serve.gateway import Gateway, GatewayStats
from repro.serve.loadgen import LoadReport, LoadSpec, build_trace, run_serve
from repro.serve.requests import (
    Completed,
    Failed,
    Rejected,
    Response,
    Ticket,
    Uncacheable,
    canonical_key,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BatchPolicy",
    "CacheStats",
    "Completed",
    "Failed",
    "Gateway",
    "GatewayStats",
    "LoadReport",
    "LoadSpec",
    "LRUTTLCache",
    "MicroBatcher",
    "ModeledCache",
    "Rejected",
    "Response",
    "Ticket",
    "TokenBucket",
    "Uncacheable",
    "build_trace",
    "canonical_key",
    "run_serve",
    "run_batch",
]
