"""Request/response vocabulary of the serving gateway.

A client hands the gateway a callable plus arguments and gets back a
:class:`Ticket`.  The ticket resolves to exactly one of three *typed*
responses — :class:`Completed`, :class:`Rejected` or :class:`Failed` —
and ``Ticket.response()`` never raises: overload, shutdown, deadline
misses and task failures are all **values**, so a load generator (or a
student's client loop) can tally them without try/except pyramids.

The memoizing cache keys on ``(task identity, canonicalized inputs)``.
:func:`canonical_key` produces a process-stable 64-bit digest for the
common argument shapes (scalars, strings, bytes, (frozen)sets, dicts,
sequences, numpy arrays).  Arguments it cannot canonicalize safely —
arbitrary objects whose ``repr`` embeds ``id()`` — raise
:class:`Uncacheable`; the gateway then serves the request *without*
memoization rather than risking false cache hits.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "Completed",
    "Failed",
    "Rejected",
    "Response",
    "Ticket",
    "Uncacheable",
    "canonical_key",
]

#: admission/lifecycle reasons a request can be shed with
REJECT_REASONS = ("rate", "queue", "shutdown", "deadline", "cancelled")


class Uncacheable(TypeError):
    """An argument has no stable canonical form; the request bypasses the cache."""


@dataclass(frozen=True)
class Response:
    """Base of the closed response union; ``ok`` discriminates cheaply."""

    @property
    def ok(self) -> bool:
        return False


@dataclass(frozen=True)
class Completed(Response):
    """The request ran (or hit the cache) and produced ``value``."""

    value: Any
    #: arrival-to-completion latency in gateway seconds (virtual under sim)
    latency: float = 0.0
    #: True when served from the memoizing cache (including coalesced
    #: followers of an in-flight leader)
    cached: bool = False
    #: number of requests in the micro-batch this one rode in (1 = solo)
    batch_size: int = 1
    #: executor attempts spent (>1 means the batch was retried)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class Rejected(Response):
    """The gateway declined the request; ``reason`` is one of
    :data:`REJECT_REASONS` and the client never blocks on it."""

    reason: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.reason not in REJECT_REASONS:
            raise ValueError(
                f"reason must be one of {REJECT_REASONS}, got {self.reason!r}"
            )


@dataclass(frozen=True)
class Failed(Response):
    """The request was admitted and ran, but its body raised ``error``
    (after the gateway's retry budget was spent)."""

    error: BaseException
    latency: float = 0.0
    attempts: int = 1


@dataclass
class Ticket:
    """Client handle for one submitted request.

    ``response()`` blocks until the gateway resolves the request and
    always returns a :class:`Response` — rejection and failure are data,
    not exceptions.  Under a clock-driven gateway (sim/inline) tickets
    resolve during ``pump()``/``drain()``, so prefer
    ``Gateway.result(ticket)`` which pumps as needed.
    """

    request_id: int
    task: str
    key: str | None = None
    _event: threading.Event = field(default_factory=threading.Event, repr=False)
    _response: Response | None = field(default=None, repr=False)

    def done(self) -> bool:
        return self._event.is_set()

    def response(self, timeout: float | None = None) -> Response:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} ({self.task!r}) unresolved after {timeout}s"
            )
        assert self._response is not None
        return self._response

    # gateway-side: resolve exactly once; later calls are ignored so a
    # shutdown race between dispatcher and rejector cannot flip a result.
    def _resolve(self, response: Response) -> bool:
        if self._event.is_set():
            return False
        self._response = response
        self._event.set()
        return True


def _canon(value: Any, out: list[bytes]) -> None:
    """Append a canonical byte encoding of ``value`` to ``out``.

    The encoding is type-tagged so ``1`` / ``1.0`` / ``"1"`` / ``True``
    hash differently, and container boundaries are marked so ``("ab",)``
    and ``("a", "b")`` differ.
    """
    if value is None:
        out.append(b"N")
    elif isinstance(value, bool):
        out.append(b"b1" if value else b"b0")
    elif isinstance(value, int):
        out.append(b"i" + str(value).encode())
    elif isinstance(value, float):
        out.append(b"f" + repr(value).encode())
    elif isinstance(value, str):
        out.append(b"s" + value.encode("utf-8"))
    elif isinstance(value, bytes):
        out.append(b"y" + value)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        out.append(b"a" + str(arr.shape).encode() + arr.dtype.str.encode())
        out.append(arr.tobytes())
    elif isinstance(value, np.generic):
        _canon(value.item(), out)
    elif isinstance(value, (tuple, list)):
        out.append(b"(")
        for item in value:
            _canon(item, out)
            out.append(b",")
        out.append(b")")
    elif isinstance(value, (set, frozenset)):
        parts: list[bytes] = []
        for item in value:
            sub: list[bytes] = []
            _canon(item, sub)
            parts.append(b"".join(sub))
        out.append(b"{")
        for part in sorted(parts):
            out.append(part)
            out.append(b",")
        out.append(b"}")
    elif isinstance(value, Mapping):
        entries: list[tuple[bytes, Any]] = []
        for k, v in value.items():
            sub = []
            _canon(k, sub)
            entries.append((b"".join(sub), v))
        out.append(b"[")
        for kb, v in sorted(entries, key=lambda e: e[0]):
            out.append(kb)
            out.append(b":")
            _canon(v, out)
            out.append(b",")
        out.append(b"]")
    else:
        raise Uncacheable(
            f"cannot canonicalize {type(value).__name__!r} for cache keying"
        )


def canonical_key(
    task: str | Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Mapping[str, Any] | None = None,
) -> str:
    """Stable cache key for ``task(*args, **kwargs)``.

    ``task`` may be the task-kind string or the callable itself (its
    qualified name is used — *not* its code hash, matching how the rest
    of the repo identifies work by name).  Raises :class:`Uncacheable`
    for argument types without a stable canonical form.
    """
    name = task if isinstance(task, str) else getattr(task, "__qualname__", repr(task))
    out: list[bytes] = [b"t" + name.encode("utf-8")]
    _canon(tuple(args), out)
    _canon(dict(kwargs or {}), out)
    digest = hashlib.blake2b(b"\x00".join(out), digest_size=8).hexdigest()
    return f"{name}:{digest}"
