"""Admission control: token-bucket rate limiting + queue-depth backpressure.

Two independent guards run at submit time, before a request costs the
system anything:

* a deterministic **token bucket** — capacity ``burst`` tokens refilled
  at ``rate`` per second of *gateway time* (virtual under sim, wall time
  under threads/processes).  A request that finds the bucket empty is
  shed with ``Rejected("rate")``.
* a **queue-depth cap** — if the number of admitted-but-uncompleted
  requests already meets ``max_queue``, the request is shed with
  ``Rejected("queue")``.

Shedding is the *only* overload behaviour: the gateway never blocks the
submitting client and never grows its queue without bound, which is the
property the overload load-pattern in :mod:`repro.serve.loadgen`
exercises.  Both guards are pure functions of (time, state), so a
seeded arrival trace produces the same admit/shed sequence on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionController", "AdmissionPolicy", "TokenBucket"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tunables for the admission controller.

    ``rate=None`` disables rate limiting (infinite refill);
    ``max_queue=None`` disables the depth cap.  The defaults are
    permissive on rate and bounded on depth — a gateway should always
    have *some* backpressure.
    """

    rate: float | None = None
    burst: float = 64.0
    max_queue: int | None = 1024

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.burst <= 0:
            raise ValueError(f"burst must be > 0, got {self.burst}")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")


class TokenBucket:
    """Classic token bucket on an explicit clock value.

    The caller passes ``now`` to every operation; the bucket itself
    never reads a clock, which keeps it trivially testable and exactly
    reproducible under virtual time.
    """

    def __init__(self, rate: float, burst: float, *, now: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = float(now)

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def peek(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self._tokens

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; False means shed."""
        self._refill(now)
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False


class AdmissionController:
    """Applies an :class:`AdmissionPolicy`; returns a shed reason or None.

    Not internally locked: the gateway calls it under its own mutex, so
    the admit/shed decision and the queue-depth read are one atomic step.
    """

    def __init__(self, policy: AdmissionPolicy | None = None, *, now: float = 0.0) -> None:
        self.policy = policy or AdmissionPolicy()
        self._bucket = (
            TokenBucket(self.policy.rate, self.policy.burst, now=now)
            if self.policy.rate is not None
            else None
        )

    def decide(self, now: float, queue_depth: int) -> str | None:
        """None = admit; otherwise the ``Rejected`` reason string.

        Depth is checked before the bucket so a full queue does not also
        drain tokens — once depth recovers, the bucket reflects only the
        traffic that was actually queued.
        """
        cap = self.policy.max_queue
        if cap is not None and queue_depth >= cap:
            return "queue"
        if self._bucket is not None and not self._bucket.try_take(now):
            return "rate"
        return None
