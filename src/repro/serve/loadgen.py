"""Seeded arrival-trace load generator for the serving gateway.

The generator turns ``(pattern, seed, n)`` into a concrete arrival
trace — request times, kinds, and cache keys — and replays it through a
:class:`~repro.serve.gateway.Gateway`.  Four patterns cover the regimes
a serving system must survive (SCSFController's workload-generation
direction, SNIPPETS.md snippet 1):

=========  ============================================================
steady     homogeneous Poisson at the base rate — the happy path
bursty     square-wave: quiet valleys, 3x peaks — batching + burst
           absorption
diurnal    sinusoidal day/night swing around the base rate
overload   linear ramp from half to 4x the base rate — admission
           control must shed, latency must not collapse
=========  ============================================================

Every random draw comes from :func:`repro.util.rng.derive` substreams
and only uses ``Generator.random()`` (uniform doubles) with explicit
inverse-CDF transforms, so a given ``(pattern, seed, n)`` produces the
identical trace on any platform or numpy version — the sim golden
reports depend on this.

Request kinds model the paper's small homogeneous tasks: a matmul
*panel*, an image *thumb*nail, and a text-*search* shard.  Bodies are
module-level (picklable for the processes backend), deterministic in
their key, and cheap — the declared ``cost`` carries the service time
in driven mode, the body only has to produce a checkable value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.executor.factory import create, get_backend
from repro.obs.analyze import StageLatency, decompose_stages, dominant_stage
from repro.obs.rtrace import RequestSummary, RequestTraceCollector, use_rtrace
from repro.obs.slo import Objective, SLOVerdict, emit_metrics, evaluate_slo
from repro.obs.trace import TraceRecorder
from repro.serve.admission import AdmissionPolicy
from repro.serve.batching import BatchPolicy
from repro.serve.cache import LRUTTLCache, ModeledCache
from repro.serve.gateway import Gateway
from repro.serve.requests import Completed, Failed, Rejected
from repro.util.rng import derive
from repro.util.tables import Table

__all__ = [
    "Arrival",
    "LoadReport",
    "LoadSpec",
    "PATTERNS",
    "build_trace",
    "run_serve",
]

PATTERNS = ("steady", "bursty", "diurnal", "overload")


# -- request kind catalogue -------------------------------------------------

def panel_body(key: int) -> int:
    """Stand-in for a matmul panel: integer mixing, deterministic in key."""
    x = key & 0xFFFFFFFF
    for _ in range(8):
        x = (x * 0x9E3779B1 + 0x7F4A7C15) & 0xFFFFFFFF
        x ^= x >> 13
    return x


def thumb_body(key: int) -> int:
    """Stand-in for a thumbnail downscale."""
    x = (key * 2654435761) & 0xFFFFFFFF
    for _ in range(4):
        x = (x ^ (x << 7)) & 0xFFFFFFFF
        x = (x + 0x6D2B79F5) & 0xFFFFFFFF
    return x


def search_body(key: int) -> int:
    """Stand-in for a text-search shard probe."""
    x = key & 0xFFFFFFFF
    x = (x * 0x85EBCA6B) & 0xFFFFFFFF
    return x ^ (x >> 16)


#: kind -> (body, declared cost in reference-seconds, traffic weight)
KINDS: dict[str, tuple[Any, float, float]] = {
    "panel": (panel_body, 0.008, 0.25),
    "thumb": (thumb_body, 0.004, 0.35),
    "search": (search_body, 0.002, 0.40),
}


@dataclass(frozen=True)
class Arrival:
    t: float
    kind: str
    key: int


@dataclass(frozen=True)
class LoadSpec:
    """What traffic to generate (not how to serve it)."""

    pattern: str
    requests: int = 100_000
    seed: int = 2014
    #: mean offered rate in requests per (virtual) second
    base_rate: float = 2_000.0
    #: distinct keys per kind; smaller keyspace -> hotter cache
    keyspace: int = 512
    #: popularity skew exponent: key = floor(keyspace * u**skew)
    skew: float = 3.0

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(f"pattern must be one of {PATTERNS}, got {self.pattern!r}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {self.base_rate}")


def _rate_profile(pattern: str, base: float) -> tuple[Any, float]:
    """(rate(t) callable, peak rate) for thinning-based sampling.

    The overload ramp is defined over the *expected* run duration of the
    steady pattern at ``base``; the ramp simply keeps climbing if the
    trace runs longer.
    """
    if pattern == "steady":
        return (lambda t: base), base
    if pattern == "bursty":
        # 0.4 s valleys at 0.3x alternating with 0.4 s peaks at 3x
        return (lambda t: base * (3.0 if int(t / 0.4) % 2 else 0.3)), base * 3.0
    if pattern == "diurnal":
        period = 4.0
        return (
            lambda t: base * (1.0 + 0.8 * math.sin(2.0 * math.pi * t / period))
        ), base * 1.8
    # overload: 0.5x -> 4x over ~30 virtual seconds, then hold
    ramp = 30.0
    return (
        lambda t: base * (0.5 + 3.5 * min(t, ramp) / ramp)
    ), base * 4.0


def build_trace(spec: LoadSpec) -> list[Arrival]:
    """Materialise the seeded arrival trace (thinning for time-varying
    rates; all draws are plain uniforms for cross-platform stability)."""
    rate_fn, peak = _rate_profile(spec.pattern, spec.base_rate)
    rng = derive(spec.seed, "serve.loadgen", spec.pattern)
    kinds = list(KINDS)
    weights = [KINDS[k][2] for k in kinds]
    cum = []
    acc = 0.0
    for w in weights:
        acc += w
        cum.append(acc)
    cum[-1] = 1.0  # guard against float drift
    out: list[Arrival] = []
    t = 0.0
    while len(out) < spec.requests:
        u = rng.random()
        # exponential gap at the peak rate; inverse-CDF, no .exponential()
        t += -math.log(1.0 - u) / peak
        if rng.random() * peak > rate_fn(t):
            continue  # thinned: instantaneous rate below peak
        uk = rng.random()
        kind = next(k for k, c in zip(kinds, cum) if uk <= c)
        key = int(spec.keyspace * rng.random() ** spec.skew)
        out.append(Arrival(t, kind, min(key, spec.keyspace - 1)))
    return out


# -- replay + report --------------------------------------------------------


@dataclass
class LoadReport:
    """Everything the CLI prints and the baseline gate consumes."""

    pattern: str
    backend: str
    cores: int
    seed: int
    requests: int
    duration: float
    completed: int = 0
    failed: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    retries: int = 0
    latencies: list[float] = field(default_factory=list, repr=False)
    #: request-trace summary when the run was traced (``rtrace=True``)
    stages: RequestSummary | None = field(default=None, repr=False)
    #: SLO verdict when objectives were evaluated
    slo: SLOVerdict | None = field(default=None, repr=False)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def shed_rate(self) -> float:
        return self.shed_total / self.requests if self.requests else 0.0

    @property
    def hit_rate(self) -> float:
        n = self.cache_hits + self.cache_misses
        return self.cache_hits / n if n else 0.0

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def executed(self) -> int:
        """Requests that actually rode a batch (cache hits never do)."""
        return max(0, self.completed + self.failed - self.cache_hits)

    @property
    def mean_batch(self) -> float:
        return self.executed / self.batches if self.batches else 0.0

    def percentile(self, q: float) -> float:
        """Exact order-statistic percentile (nearest-rank) over completed
        request latencies; 0 when nothing completed."""
        if not self.latencies:
            return 0.0
        xs = sorted(self.latencies)
        rank = max(0, min(len(xs) - 1, math.ceil(q * len(xs)) - 1))
        return xs[rank]

    def metrics(self) -> dict[str, float]:
        """Flat metrics for ``obs.baseline`` (names carry direction:
        throughput/hit_rate up is good, latency/shed down is good).

        Traced runs additionally expose per-stage p99s and the SLO
        verdict metrics; untraced runs keep exactly the original key
        set, so committed baselines stay byte-comparable.
        """
        out = {
            "serve.throughput_rps": round(self.throughput, 3),
            "serve.latency_p50_seconds": round(self.percentile(0.50), 6),
            "serve.latency_p99_seconds": round(self.percentile(0.99), 6),
            "serve.latency_p999_seconds": round(self.percentile(0.999), 6),
            "serve.hit_rate": round(self.hit_rate, 6),
            "serve.shed_rate": round(self.shed_rate, 6),
            "serve.completed": float(self.completed),
            "serve.failed": float(self.failed),
        }
        if self.stages is not None:
            for s in self.stage_latencies():
                out[f"serve.stage_{s.stage}_p99_seconds"] = round(s.p99, 6)
        if self.slo is not None:
            out.update(self.slo.metrics())
        return out

    def run_record(
        self,
        exp_id: str,
        deltas: dict[str, float] | None = None,
        extra_verdicts: dict[str, str] | None = None,
        tags: tuple[str, ...] = (),
    ):
        """This run as a :class:`repro.obs.store.RunRecord` (unstamped —
        :meth:`RunStore.record` supplies timestamp and revision).

        Carries the full flat metric map, the SLO verdict when one was
        evaluated, and the dominant latency stage when the run was
        traced; ``deltas``/``extra_verdicts`` let the CLI fold in a
        baseline comparison.
        """
        from repro.obs.store import RunRecord

        verdicts = dict(extra_verdicts or {})
        if self.slo is not None:
            verdicts["slo"] = "pass" if self.slo.passed else "violation"
        dom = self.dominant_stage()
        return RunRecord(
            exp_id=exp_id,
            kind="serve",
            metrics=self.metrics(),
            backend=self.backend,
            cores=self.cores,
            seed=self.seed,
            verdicts=verdicts,
            deltas=dict(deltas or {}),
            dominant_stage=dom.stage if dom is not None else None,
            tags=tags,
        )

    def stage_latencies(self) -> tuple[StageLatency, ...]:
        """Per-stage tail decomposition (empty when the run was untraced)."""
        if self.stages is None:
            return ()
        return decompose_stages(self.stages.stage_samples)

    def dominant_stage(self) -> StageLatency | None:
        """The stage dominating the latency tail, or ``None`` untraced."""
        return dominant_stage(self.stage_latencies())

    def stage_table(self) -> Table:
        """Latency-decomposition table: where each request's time went.

        The ``total_s`` column telescopes: stage totals sum exactly to
        the ``end_to_end`` row, because each request's stage durations
        sum exactly to its reported latency (see ``RequestTrace``).
        Covers every *finished* trace — completed, failed and
        post-admission rejected — which is why ``end_to_end`` counts
        can exceed the completed-only latency percentiles above it.
        """
        if self.stages is None:
            raise ValueError("stage_table() needs a traced run (rtrace=True)")
        t = Table(
            ["stage", "count", "total_s", "share", "p50_s", "p99_s", "p999_s"],
            title=f"latency decomposition ({self.stages.requests} traced requests)",
            precision=6,
        )
        for s in self.stage_latencies():
            t.add_row(
                [
                    s.stage,
                    s.count,
                    round(s.total, 6),
                    round(s.share, 6),
                    round(s.p50, 6),
                    round(s.p99, 6),
                    round(s.p999, 6),
                ]
            )
        totals = sorted(self.stages.latencies)
        n = len(totals)

        def rank(q: float) -> int:
            return max(0, min(n - 1, math.ceil(q * n) - 1))

        t.add_row(
            [
                "end_to_end",
                n,
                round(sum(totals), 6),
                1.0,
                round(totals[rank(0.50)] if n else 0.0, 6),
                round(totals[rank(0.99)] if n else 0.0, 6),
                round(totals[rank(0.999)] if n else 0.0, 6),
            ]
        )
        return t

    def table(self) -> Table:
        """Render the report as a two-column metric table."""
        t = Table(
            ["metric", "value"],
            title=f"serve {self.pattern} on {self.backend} ({self.cores} cores, seed {self.seed})",
            precision=6,
        )
        t.add_row(["requests", self.requests])
        t.add_row(["completed", self.completed])
        t.add_row(["failed", self.failed])
        t.add_row(["shed", self.shed_total])
        for reason in sorted(self.shed):
            t.add_row([f"shed[{reason}]", self.shed[reason]])
        t.add_row(["duration_s", round(self.duration, 6)])
        t.add_row(["throughput_rps", round(self.throughput, 3)])
        t.add_row(["latency_p50_s", round(self.percentile(0.50), 6)])
        t.add_row(["latency_p99_s", round(self.percentile(0.99), 6)])
        t.add_row(["latency_p999_s", round(self.percentile(0.999), 6)])
        t.add_row(["cache_hit_rate", round(self.hit_rate, 6)])
        t.add_row(["batches", self.batches])
        t.add_row(["mean_batch_occupancy", round(self.mean_batch, 3)])
        t.add_row(["retries", self.retries])
        return t


def default_admission(base_rate: float) -> AdmissionPolicy:
    """Rate cap at 1.6x the base offered rate with a 50 ms burst
    allowance, plus a bounded queue — sheds under overload, quiet at 1x."""
    return AdmissionPolicy(
        rate=base_rate * 1.6, burst=max(8.0, base_rate * 0.05), max_queue=512
    )


def run_serve(
    pattern: str,
    *,
    backend: str = "sim",
    cores: int = 4,
    requests: int = 100_000,
    seed: int = 2014,
    base_rate: float = 2_000.0,
    keyspace: int = 512,
    admission: AdmissionPolicy | None = None,
    batching: BatchPolicy | None = None,
    hit_rate: float = 0.6,
    cache_capacity: int = 4096,
    cache_ttl: float | None = None,
    time_scale: float = 0.0,
    trace: TraceRecorder | None = None,
    executor: Any = None,
    rtrace: bool = False,
    objectives: tuple[Objective, ...] | list[Objective] | None = None,
    slo_window: float = 1.0,
) -> LoadReport:
    """Generate a seeded trace and serve it end to end; returns the report.

    ``backend`` picks the executor via :func:`repro.executor.create`.
    Virtual-time backends (sim, inline) replay in driven mode — the
    whole run is deterministic.  Real backends replay in wall time:
    ``time_scale`` compresses the trace's inter-arrival gaps (0 = submit
    as fast as possible, the overload smoke-test mode).

    The cache is a seeded hit-rate model under driven mode and a real
    LRU+TTL under thread mode — same client code, different fidelity
    (see DESIGN.md).

    ``rtrace`` turns on request-scoped stage tracing
    (:mod:`repro.obs.rtrace`); declaring ``objectives`` implies it and
    additionally evaluates an SLO verdict over ``slo_window``-second
    windows onto ``report.slo``.  Off (the default), the serve path
    keeps its null fast paths and reports stay byte-identical to
    pre-tracing goldens.
    """
    spec = LoadSpec(
        pattern, requests=requests, seed=seed, base_rate=base_rate, keyspace=keyspace
    )
    arrivals = build_trace(spec)
    own_executor = executor is None
    if own_executor:
        # single-core backends (inline) reject an explicit core count
        want_cores = None if get_backend(backend).single_core else cores
        executor = create(backend, cores=want_cores, trace=trace)
    collector = (
        RequestTraceCollector() if rtrace or objectives is not None else None
    )
    gateway = Gateway(
        executor,
        admission=admission or default_admission(base_rate),
        batching=batching or BatchPolicy(max_size=8, max_delay=0.004),
        cache=None,
        trace=trace,
        rtrace=collector,
    )
    if gateway.mode == "driven":
        gateway.cache = ModeledCache(hit_rate=hit_rate, seed=seed)
    else:
        gateway.cache = LRUTTLCache(cache_capacity, ttl=cache_ttl)
    ambient = use_rtrace(collector) if collector is not None else None
    if ambient is not None:
        ambient.__enter__()
    try:
        tickets = []
        if gateway.mode == "driven":
            clock = gateway.clock
            for a in arrivals:
                if a.t > clock.now():
                    clock.advance_to(a.t)  # type: ignore[attr-defined]
                body, cost, _ = KINDS[a.kind]
                tickets.append(
                    gateway.submit(body, a.key, task=a.kind, cost=cost)
                )
            end = gateway.drain()
            duration = end
        else:
            import time as _time

            start = gateway.clock.now()
            prev = 0.0
            for a in arrivals:
                if time_scale > 0.0 and a.t > prev:
                    _time.sleep((a.t - prev) * time_scale)
                prev = a.t
                body, cost, _ = KINDS[a.kind]
                tickets.append(
                    gateway.submit(body, a.key, task=a.kind, cost=cost)
                )
            gateway.drain()
            duration = gateway.clock.now() - start
        report = LoadReport(
            pattern=pattern,
            backend=backend,
            cores=executor.cores,
            seed=seed,
            requests=len(tickets),
            duration=duration,
        )
        for ticket in tickets:
            resp = ticket.response(timeout=30.0)
            if isinstance(resp, Completed):
                report.completed += 1
                report.latencies.append(resp.latency)
            elif isinstance(resp, Rejected):
                report.shed[resp.reason] = report.shed.get(resp.reason, 0) + 1
            elif isinstance(resp, Failed):
                report.failed += 1
        stats = gateway.cache.stats
        report.cache_hits = stats.hits + stats.coalesced
        report.cache_misses = stats.misses
        report.batches = gateway.stats.batches
        report.retries = gateway.stats.retries
        if collector is not None:
            report.stages = collector.summary()
            if objectives is not None or rtrace:
                report.slo = evaluate_slo(report, objectives, window=slo_window)
                emit_metrics(report.slo, gateway.trace)
        return report
    finally:
        gateway.shutdown(drain=False)
        if own_executor:
            executor.shutdown()
        if ambient is not None:
            ambient.__exit__(None, None, None)
