"""Machine specifications, including the paper's §III-B catalogue.

Costs in the library are expressed in seconds *on a 1.0-speed reference
core*; a machine's ``speed`` scales them (2.4 GHz Xeon ≈ speed 1.14 vs the
2.1 GHz Opteron baseline, etc.).  The absolute values only set the time
unit — what the experiments compare is shape across core counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "MachineSpec",
    "PARC64",
    "PARC16",
    "PARC8",
    "LAB_WORKSTATION",
    "ANDROID_TABLET",
    "ANDROID_PHONE",
    "PARC_MACHINES",
]


@dataclass(frozen=True)
class MachineSpec:
    """An N-core shared-memory machine.

    Parameters
    ----------
    name:
        Human-readable identifier.
    cores:
        Number of hardware cores available to the runtime.
    speed:
        Per-core speed multiplier relative to the reference core.  A
        segment of cost ``c`` takes ``c / speed`` virtual seconds.
    dispatch_overhead:
        Fixed virtual seconds charged when a task segment is started on a
        core (models task-queue/dispatch cost; makes fine-grained tasks
        genuinely more expensive, as the granularity experiments need).
    memory_bandwidth_penalty:
        Fractional slowdown applied per *additional* concurrently-running
        segment beyond the first, capped at 2x total, modelling shared
        memory-bus contention.  0 disables the effect.
    cross_core_penalty:
        Fixed virtual seconds added per dependency whose producer ran on
        a *different* core (a cold-cache transfer).  0 (the default)
        disables the effect; the policy ablation uses it to make
        locality-aware core selection measurably matter.
    """

    name: str
    cores: int
    speed: float = 1.0
    dispatch_overhead: float = 1e-4
    memory_bandwidth_penalty: float = 0.0
    cross_core_penalty: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"machine needs >= 1 core, got {self.cores}")
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed}")
        if self.dispatch_overhead < 0:
            raise ValueError("dispatch_overhead must be >= 0")
        if self.memory_bandwidth_penalty < 0:
            raise ValueError("memory_bandwidth_penalty must be >= 0")
        if self.cross_core_penalty < 0:
            raise ValueError("cross_core_penalty must be >= 0")

    def with_cores(self, cores: int) -> "MachineSpec":
        """The same machine scaled to a different core count."""
        return replace(self, name=f"{self.name}@{cores}c", cores=cores)

    def segment_duration(self, cost: float, concurrency: int = 1) -> float:
        """Virtual seconds to run a segment of ``cost`` reference-seconds.

        ``concurrency`` is how many segments run at the same time,
        including this one (for the bandwidth-contention model).
        """
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        slowdown = 1.0
        if self.memory_bandwidth_penalty > 0 and concurrency > 1:
            slowdown = min(2.0, 1.0 + self.memory_bandwidth_penalty * (concurrency - 1))
        return cost * slowdown / self.speed

    def __str__(self) -> str:
        return f"{self.name} ({self.cores} cores, speed {self.speed:g})"


# The paper, §III-B: systems made available to SoftEng 751 students.
PARC64 = MachineSpec(
    name="parc64",
    cores=64,
    speed=1.0,  # 2.1 GHz Opteron 6272 is the reference core
    description="64-core server: 4x 16-core AMD Opteron 6272 @ 2.1 GHz",
)
PARC16 = MachineSpec(
    name="parc16",
    cores=16,
    speed=2.4 / 2.1,
    description="16-core workstation: 4x quad-core Intel Xeon E7340 @ 2.4 GHz",
)
PARC8 = MachineSpec(
    name="parc8",
    cores=8,
    speed=1.86 / 2.1,
    description="8-core workstation: 2x quad-core Intel Xeon E5320 @ 1.86 GHz",
)
LAB_WORKSTATION = MachineSpec(
    name="lab-quad",
    cores=4,
    speed=1.3,
    description="departmental lab workstation (quad-core)",
)
ANDROID_TABLET = MachineSpec(
    name="android-tablet",
    cores=4,
    speed=0.55,
    dispatch_overhead=5e-4,
    description="quad-core Android tablet",
)
ANDROID_PHONE = MachineSpec(
    name="android-phone",
    cores=4,
    speed=0.45,
    dispatch_overhead=5e-4,
    description="quad-core Android smartphone",
)

PARC_MACHINES: dict[str, MachineSpec] = {
    m.name: m
    for m in (PARC64, PARC16, PARC8, LAB_WORKSTATION, ANDROID_TABLET, ANDROID_PHONE)
}
