"""Greedy list scheduling of a segment graph onto a machine model.

This is the virtual-time "execution" step: given the DAG a program run
recorded and a :class:`~repro.machine.spec.MachineSpec`, produce the
deterministic schedule a greedy runtime would achieve, and with it the
makespan, utilisation and speedup numbers the benchmarks report.

Two core-selection policies are provided for the ablation benches:

* ``"earliest"`` — pick the core that frees up first (a central queue);
* ``"affinity"`` — prefer the core that ran the segment's last dependency
  (models work-stealing's locality preference: continuations tend to stay
  on the same worker unless it is clearly behind).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.machine.graph import SegmentGraph
from repro.machine.spec import MachineSpec

__all__ = ["ScheduleResult", "simulate_schedule"]

_POLICIES = ("earliest", "affinity")


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of simulating a segment graph on a machine."""

    machine: MachineSpec
    makespan: float
    total_work: float
    critical_path: float
    n_segments: int
    core_busy: tuple[float, ...]
    starts: tuple[float, ...] = field(repr=False)
    finishes: tuple[float, ...] = field(repr=False)
    cores: tuple[int, ...] = field(repr=False)

    @property
    def utilization(self) -> float:
        """Mean fraction of core-time spent busy over the makespan."""
        if self.makespan == 0.0:
            return 0.0
        return sum(self.core_busy) / (self.makespan * self.machine.cores)

    @property
    def speedup_vs_serial(self) -> float:
        """Speedup relative to running all work on one reference core."""
        if self.makespan == 0.0:
            return 1.0
        return self.total_work / self.makespan

    def __str__(self) -> str:
        return (
            f"ScheduleResult({self.machine.name}: makespan={self.makespan:.4g}s, "
            f"T1={self.total_work:.4g}s, Tinf={self.critical_path:.4g}s, "
            f"speedup={self.speedup_vs_serial:.2f}, util={self.utilization:.0%})"
        )


def simulate_schedule(
    graph: SegmentGraph,
    machine: MachineSpec,
    policy: str = "earliest",
) -> ScheduleResult:
    """Greedy-schedule ``graph`` on ``machine``; deterministic.

    Ready segments are processed in (ready-time, creation-order) order;
    creation order is the program's spawn order, so the simulated runtime
    dispatches tasks FIFO the way a central-queue thread pool would.
    """
    if policy not in _POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {_POLICIES}")
    n = len(graph)
    if n == 0:
        return ScheduleResult(
            machine=machine,
            makespan=0.0,
            total_work=0.0,
            critical_path=0.0,
            n_segments=0,
            core_busy=tuple(0.0 for _ in range(machine.cores)),
            starts=(),
            finishes=(),
            cores=(),
        )

    graph.validate()
    ncores = machine.cores
    core_free = [0.0] * ncores
    starts = [0.0] * n
    finishes = [0.0] * n
    core_of = [-1] * n

    remaining_deps = [len(seg.deps) for seg in graph]
    dependents: list[list[int]] = [[] for _ in range(n)]
    for seg in graph:
        for d in seg.deps:
            dependents[d].append(seg.sid)

    ready: list[tuple[float, int]] = []
    for seg in graph:
        if remaining_deps[seg.sid] == 0:
            heapq.heappush(ready, (0.0, seg.sid))

    scheduled = 0
    while ready:
        ready_time, sid = heapq.heappop(ready)
        seg = graph[sid]

        # Core selection.
        best_core = min(range(ncores), key=lambda c: (core_free[c], c))
        if policy == "affinity" and seg.deps:
            # Prefer the core that produced the heaviest dependency; wait
            # for it if the wait costs no more than the transfer it saves.
            costly_deps = [d for d in seg.deps if graph[d].cost > 0]
            # No data-carrying dependency means no transfer to save:
            # stay with the earliest-free core.
            pref = core_of[costly_deps[-1]] if costly_deps else -1
            if pref >= 0:
                pref_start = max(core_free[pref], ready_time)
                best_start = max(core_free[best_core], ready_time)
                if pref_start <= best_start + machine.cross_core_penalty:
                    best_core = pref

        start_t = max(ready_time, core_free[best_core])
        concurrency = 1 + sum(1 for c in range(ncores) if c != best_core and core_free[c] > start_t)
        duration = machine.segment_duration(seg.cost, concurrency=concurrency)
        if seg.cost > 0:
            duration += machine.dispatch_overhead
        if machine.cross_core_penalty > 0:
            # a cold-cache transfer per dependency produced on another core
            duration += machine.cross_core_penalty * sum(
                1 for d in seg.deps if graph[d].cost > 0 and core_of[d] != best_core
            )
        finish_t = start_t + duration

        starts[sid] = start_t
        finishes[sid] = finish_t
        core_of[sid] = best_core
        core_free[best_core] = finish_t
        scheduled += 1

        for child in dependents[sid]:
            remaining_deps[child] -= 1
            if remaining_deps[child] == 0:
                child_ready = max(finishes[d] for d in graph[child].deps)
                heapq.heappush(ready, (child_ready, child))

    if scheduled != n:
        raise RuntimeError(f"schedule incomplete: {scheduled}/{n} segments (cycle in graph?)")

    busy = [0.0] * ncores
    for sid in range(n):
        busy[core_of[sid]] += finishes[sid] - starts[sid]

    return ScheduleResult(
        machine=machine,
        makespan=max(finishes),
        total_work=graph.total_work(),
        critical_path=graph.critical_path(),
        n_segments=n,
        core_busy=tuple(busy),
        starts=tuple(starts),
        finishes=tuple(finishes),
        cores=tuple(core_of),
    )
