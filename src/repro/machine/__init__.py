"""Machine models of the PARC lab's parallel systems (paper §III-B).

A :class:`MachineSpec` describes an N-core shared-memory machine; the
:mod:`repro.machine.listsched` scheduler executes a cost-annotated task
:class:`~repro.machine.graph.SegmentGraph` on such a machine in virtual
time.  The catalogue in :data:`repro.machine.spec.PARC_MACHINES` mirrors
the systems the paper made available to students.
"""

from repro.machine.graph import Segment, SegmentGraph
from repro.machine.listsched import ScheduleResult, simulate_schedule
from repro.machine.spec import (
    ANDROID_PHONE,
    ANDROID_TABLET,
    LAB_WORKSTATION,
    PARC8,
    PARC16,
    PARC64,
    PARC_MACHINES,
    MachineSpec,
)

__all__ = [
    "MachineSpec",
    "PARC64",
    "PARC16",
    "PARC8",
    "LAB_WORKSTATION",
    "ANDROID_TABLET",
    "ANDROID_PHONE",
    "PARC_MACHINES",
    "Segment",
    "SegmentGraph",
    "ScheduleResult",
    "simulate_schedule",
]
