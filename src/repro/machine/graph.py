"""Cost-annotated task-segment graphs.

The simulated executor records a program run as a DAG of *segments*: a
task is one segment, or several if it blocks mid-way (waiting on a future
or a barrier splits a task into before/after segments).  Edges are
precedence constraints: spawn edges (a child cannot start before the point
its parent spawned it), join edges (a continuation cannot start before the
awaited task finished), serialisation edges (critical sections of the same
lock are chained in acquisition order) and barrier edges.

Because the recorder evaluates tasks eagerly, barrier edges can point from
a later-created segment to an earlier-created one; :meth:`SegmentGraph.add_dep`
therefore accepts forward edges, and acyclicity is checked globally by
:meth:`SegmentGraph.validate` (Kahn) rather than by construction order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Segment", "SegmentGraph"]


@dataclass
class Segment:
    """One contiguous run of work with no internal blocking."""

    sid: int
    task_id: int
    name: str
    cost: float
    deps: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError(f"segment cost must be >= 0, got {self.cost}")


class SegmentGraph:
    """A DAG of segments built incrementally in program order."""

    def __init__(self) -> None:
        self._segments: list[Segment] = []

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __getitem__(self, sid: int) -> Segment:
        return self._segments[sid]

    def add(self, task_id: int, name: str, cost: float, deps: Iterable[int] = ()) -> Segment:
        sid = len(self._segments)
        deps = sorted(set(deps))
        for d in deps:
            if not 0 <= d < sid:
                raise ValueError(f"segment {sid} created with invalid dep {d}")
        seg = Segment(sid=sid, task_id=task_id, name=name, cost=cost, deps=deps)
        self._segments.append(seg)
        return seg

    def add_dep(self, sid: int, dep_sid: int) -> None:
        """Add a precedence edge after the fact (may point forward).

        Used for barrier rendezvous, where the post-barrier segments of
        early-evaluated team members depend on pre-barrier segments of
        members evaluated later.
        """
        n = len(self._segments)
        if not (0 <= sid < n and 0 <= dep_sid < n):
            raise ValueError(f"add_dep({sid}, {dep_sid}) out of range (n={n})")
        if sid == dep_sid:
            raise ValueError(f"segment {sid} cannot depend on itself")
        seg = self._segments[sid]
        if dep_sid not in seg.deps:
            seg.deps.append(dep_sid)

    def add_cost(self, sid: int, extra: float) -> None:
        """Accumulate more work onto an existing segment."""
        if extra < 0:
            raise ValueError(f"extra cost must be >= 0, got {extra}")
        self._segments[sid].cost += extra

    def total_work(self) -> float:
        """T1: sum of all segment costs (sequential execution time)."""
        return sum(s.cost for s in self._segments)

    def topological_order(self) -> list[int]:
        """Kahn topological order; raises ``ValueError`` on a cycle.

        Deterministic: among ready segments, lowest sid first.
        """
        n = len(self._segments)
        indegree = [len(s.deps) for s in self._segments]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for seg in self._segments:
            for d in seg.deps:
                dependents[d].append(seg.sid)
        # A simple FIFO over sids is deterministic because sids only enter
        # once; seeding in ascending sid order keeps ties by creation order.
        ready = deque(sid for sid in range(n) if indegree[sid] == 0)
        order: list[int] = []
        while ready:
            sid = ready.popleft()
            order.append(sid)
            for child in dependents[sid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != n:
            raise ValueError(f"segment graph has a cycle ({n - len(order)} segments unreachable)")
        return order

    def critical_path(self) -> float:
        """T-infinity: the longest cost-weighted path through the DAG.

        The lower bound on makespan with unlimited cores, per the
        work-span model taught in the course's first weeks.
        """
        finish: dict[int, float] = {}
        for sid in self.topological_order():
            seg = self._segments[sid]
            start = max((finish[d] for d in seg.deps), default=0.0)
            finish[sid] = start + seg.cost
        return max(finish.values(), default=0.0)

    def parallelism(self) -> float:
        """Average parallelism T1 / T-infinity (inf if span is zero)."""
        span = self.critical_path()
        work = self.total_work()
        if span == 0.0:
            return float("inf") if work > 0 else 1.0
        return work / span

    def copy(self) -> "SegmentGraph":
        """Independent copy (segments and dep lists are not shared)."""
        out = SegmentGraph()
        for seg in self._segments:
            out._segments.append(
                Segment(sid=seg.sid, task_id=seg.task_id, name=seg.name, cost=seg.cost, deps=list(seg.deps))
            )
        return out

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on breakage."""
        self.topological_order()  # raises on cycles / bad edges

    def __repr__(self) -> str:
        return f"SegmentGraph(segments={len(self._segments)}, work={self.total_work():.4g})"
