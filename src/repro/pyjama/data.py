"""Data-sharing clauses, and the lesson learned about ``private``.

Paper §V-B reports a concrete research outcome from running Pyjama with
students: "it was decided that the OpenMP ``private`` data clause was a
source of confusion for Java developers, and it in fact diverged from
good programming practices (e.g. not initialising variables at
declaration and reducing variable scope)."

This module therefore makes the good practice the easy path: every
per-thread variable is *initialised at creation* —

* :func:`private` takes a **factory** (each thread gets a fresh,
  initialised value — never OpenMP's uninitialised private copy);
* :func:`firstprivate` copies an initial value per thread;
* :func:`lastprivate` is a cell written by iterations, whose final value
  is the one from the logically last iteration, as in OpenMP.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, Generic, TypeVar

__all__ = ["private", "firstprivate", "lastprivate", "PerThread", "LastPrivate"]

T = TypeVar("T")


class PerThread(Generic[T]):
    """Per-team-thread values, created by a factory on first access."""

    def __init__(self, factory: Callable[[], T]) -> None:
        self._factory = factory
        self._values: dict[int, T] = {}
        self._lock = threading.Lock()

    def get(self, tid: int) -> T:
        with self._lock:
            if tid not in self._values:
                self._values[tid] = self._factory()
            return self._values[tid]

    def set(self, tid: int, value: T) -> None:
        with self._lock:
            self._values[tid] = value

    def snapshot(self) -> dict[int, T]:
        """Copy of all thread values (tid -> value), for post-region reads."""
        with self._lock:
            return dict(self._values)


def private(factory: Callable[[], T]) -> PerThread[T]:
    """A per-thread variable initialised by ``factory`` — ``private`` done
    right: no uninitialised copies, scope explicit at the declaration."""
    if not callable(factory):
        raise TypeError("private() takes a factory callable, e.g. private(list)")
    return PerThread(factory)


def firstprivate(value: T) -> PerThread[T]:
    """A per-thread variable starting as a (deep) copy of ``value``."""
    return PerThread(lambda: copy.deepcopy(value))


class LastPrivate(Generic[T]):
    """A cell whose final value comes from the logically-last write.

    Iterations call ``set(i, value)``; after the loop, :meth:`get`
    returns the value written by the highest iteration index — matching
    OpenMP ``lastprivate`` determinism regardless of execution order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._best_index: int | None = None
        self._value: T | None = None

    def set(self, iteration: int, value: T) -> None:
        with self._lock:
            if self._best_index is None or iteration >= self._best_index:
                self._best_index = iteration
                self._value = value

    def get(self) -> T:
        with self._lock:
            if self._best_index is None:
                raise LookupError("lastprivate never written")
            return self._value  # type: ignore[return-value]

    @property
    def written(self) -> bool:
        with self._lock:
            return self._best_index is not None


def lastprivate() -> LastPrivate[Any]:
    """Create a :class:`LastPrivate` cell."""
    return LastPrivate()
