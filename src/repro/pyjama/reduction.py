"""The reduction registry: built-in operators and object reductions.

Project 5 ("Reductions in Pyjama"): OpenMP specifies a handful of
reductions over scalar types; an object-oriented language invites "a
larger wealth of reductions ... on a larger amount of data types (for
example merging collections)".  This registry holds both: the OpenMP
scalar operators and the object reductions the students built, plus a
registration hook for user-defined ones.

Contract: ``combine`` must be associative (the property tests check
parallel results against sequential folds); ``identity_factory`` must
return a *fresh* identity each call, because object identities (empty
list/set/dict) are mutable and per-chunk accumulators must not alias.
``combine`` may mutate and return its first argument — every accumulator
passed as ``a`` is private to the reduction machinery.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = ["Reduction", "register_reduction", "get_reduction", "list_reductions"]


@dataclass(frozen=True)
class Reduction:
    """A named, associative combiner with an identity."""

    name: str
    combine: Callable[[Any, Any], Any]
    identity_factory: Callable[[], Any]
    commutative: bool = True
    doc: str = ""

    def identity(self) -> Any:
        return self.identity_factory()

    def fold(self, values: Sequence[Any]) -> Any:
        """Sequential left fold from identity — the reference semantics."""
        acc = self.identity()
        for v in values:
            acc = self.combine(acc, v)
        return acc

    def __repr__(self) -> str:
        return f"Reduction({self.name!r})"


_registry: dict[str, Reduction] = {}
_registry_lock = threading.Lock()


def register_reduction(
    name: str,
    combine: Callable[[Any, Any], Any],
    identity_factory: Callable[[], Any],
    commutative: bool = True,
    doc: str = "",
    overwrite: bool = False,
) -> Reduction:
    """Register a reduction under ``name``; returns the Reduction object."""
    red = Reduction(
        name=name,
        combine=combine,
        identity_factory=identity_factory,
        commutative=commutative,
        doc=doc,
    )
    with _registry_lock:
        if name in _registry and not overwrite:
            raise ValueError(f"reduction {name!r} already registered")
        _registry[name] = red
    return red


def get_reduction(spec: "str | Reduction | None") -> Reduction | None:
    """Resolve a reduction spec: a registered name, a Reduction, or None."""
    if spec is None or isinstance(spec, Reduction):
        return spec
    with _registry_lock:
        red = _registry.get(spec)
    if red is None:
        raise KeyError(f"unknown reduction {spec!r}; known: {sorted(_registry)}")
    return red


def list_reductions() -> list[str]:
    """Names of every registered reduction, sorted."""
    with _registry_lock:
        return sorted(_registry)


# -- OpenMP scalar operators ---------------------------------------------------------

register_reduction("+", lambda a, b: a + b, lambda: 0, doc="sum")
register_reduction("*", lambda a, b: a * b, lambda: 1, doc="product")
register_reduction("min", min, lambda: float("inf"), doc="minimum")
register_reduction("max", max, lambda: float("-inf"), doc="maximum")
register_reduction("&", lambda a, b: a & b, lambda: ~0, doc="bitwise and")
register_reduction("|", lambda a, b: a | b, lambda: 0, doc="bitwise or")
register_reduction("^", lambda a, b: a ^ b, lambda: 0, doc="bitwise xor")
register_reduction("&&", lambda a, b: bool(a) and bool(b), lambda: True, doc="logical and")
register_reduction("||", lambda a, b: bool(a) or bool(b), lambda: False, doc="logical or")

# -- object reductions (project 5) -----------------------------------------------------


def _list_concat(a: list, b: Any) -> list:
    if isinstance(b, list):
        a.extend(b)
    else:
        a.append(b)
    return a


def _set_union(a: set, b: Any) -> set:
    if isinstance(b, (set, frozenset)):
        a |= b
    else:
        a.add(b)
    return a


def _dict_merge(a: dict, b: dict) -> dict:
    a.update(b)
    return a


def _counter_merge(a: dict, b: Any) -> dict:
    if isinstance(b, dict):
        for k, v in b.items():
            a[k] = a.get(k, 0) + v
    else:
        a[b] = a.get(b, 0) + 1
    return a


def _merge_sorted(a: list, b: Any) -> list:
    import heapq

    if not isinstance(b, list):
        b = [b]
    return list(heapq.merge(a, b))


register_reduction(
    "list",
    _list_concat,
    list,
    commutative=False,
    doc="list concatenation (elements or sub-lists); order = reduction order",
)
register_reduction("set", _set_union, set, doc="set union (elements or sub-sets)")
register_reduction(
    "dict",
    _dict_merge,
    dict,
    commutative=False,
    doc="dict merge; later contributions win on key conflict",
)
register_reduction("counter", _counter_merge, dict, doc="multiset counting / histogram merge")
register_reduction(
    "merge_sorted",
    _merge_sorted,
    list,
    doc="sorted-list merge; input chunks must each be sorted",
)
register_reduction("str", lambda a, b: a + b, str, commutative=False, doc="string concatenation")
